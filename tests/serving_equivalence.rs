//! Serving front-end equivalence: cross-user coalescing and the
//! ingest-invalidated result cache must never change an answer.
//!
//! Three layers of pinning, all seeded (`STREACH_FAULT_SEED`, printed in
//! every assertion):
//!
//! * **Coalesced batches are bit-identical to serial queries.** A batch
//!   mixing duplicates, shared (origin, slot window) groups with distinct
//!   probability thresholds, distinct windows, an invalid query and an
//!   off-network location is answered by `try_s_query_coalesced` — every
//!   outcome must equal the serial `try_s_query` answer bit for bit, and
//!   every failure must be the same typed error. Checked on the single
//!   engine and on a two-shard scatter-gather router.
//! * **The result cache races live ingest + compaction.** A [`QueryServer`]
//!   with cache and coalescing on serves a morning query pool while other
//!   threads ingest slot-disjoint afternoon batches through the WAL and a
//!   [`MaintenanceController`] runs checkpoints + compaction — every answer
//!   (cached or computed) must equal the quiesced reference. Between
//!   rounds an **answer-changing** morning batch lands: rounds alternate
//!   between existing dates (targeted slot/segment invalidation) and a new
//!   fleet day (the day count rises — every probability's denominator
//!   changes — so the whole cache must flush). A guard asserts at least
//!   one pool answer actually changed, so a stale cache entry cannot hide.
//! * **Counter sanity.** Quiesced double-sweeps pin deterministic cache
//!   hits; the invalidation counters prove the targeted and the flush path
//!   both fired; duplicate submissions prove cross-user sharing (a shared
//!   bounding pass or a cache hit).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use streach::prelude::*;
use streach_core::MaintenanceConfig;

fn fault_seed() -> u64 {
    std::env::var("STREACH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_728)
}

/// SplitMix64 — the same deterministic mixer the fault harness uses.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-serving-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IndexConfig {
    IndexConfig {
        read_latency_us: 0,
        auto_checkpoint_bytes: 1,
        ..Default::default()
    }
}

/// Bit-comparable answer of one query.
type Answer = (Vec<SegmentId>, u64);

fn answer_of(outcome: &QueryOutcome) -> Answer {
    (
        outcome.region.segments.clone(),
        outcome.region.total_length_km.to_bits(),
    )
}

/// Base fleet-days built offline; later days arrive via live ingest.
const BASE_DAYS: u16 = 2;

fn scenario() -> (Arc<RoadNetwork>, TrajectoryDataset, Vec<Vec<TrajPoint>>) {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 10,
            num_days: BASE_DAYS + 2,
            day_start_s: 8 * 3600,
            day_end_s: 11 * 3600,
            seed: 31,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < BASE_DAYS)
            .cloned()
            .collect(),
        full.num_taxis(),
        BASE_DAYS,
    );
    let batches: Vec<Vec<TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= BASE_DAYS)
        .map(|t| points_of(t).collect())
        .collect();
    assert!(batches.len() >= 2, "scenario needs live batches");
    (network, base, batches)
}

/// The serving query pool: morning windows only, so the afternoon batches
/// of the race phase provably cannot change any answer. Mixes probability
/// thresholds sharing an (origin, window) group — the coalescable shape —
/// plus one ES query (the uncoalescable, empty-bounding cache shape).
fn pool(center: GeoPoint) -> Vec<(SQuery, Algorithm)> {
    let mut queries = Vec::new();
    for (location, start, duration) in [
        (center, 9 * 3600u32, 600u32),
        (center.offset_m(900.0, -600.0), 9 * 3600, 600),
        (center.offset_m(-700.0, 500.0), 10 * 3600, 300),
    ] {
        for prob in [0.25, 0.6] {
            queries.push((
                SQuery {
                    location,
                    start_time_s: start,
                    duration_s: duration,
                    prob,
                },
                Algorithm::SqmbTbs,
            ));
        }
    }
    queries.push((
        SQuery {
            location: center,
            start_time_s: 10 * 3600,
            duration_s: 300,
            prob: 0.25,
        },
        Algorithm::ExhaustiveSearch,
    ));
    queries
}

/// An answer-changing morning batch for round `round`: fresh trajectory
/// IDs on the **same morning slots** the pool reads. Even rounds reuse
/// existing dates (the day count cannot move → the cache must invalidate
/// by touched slot/segment); odd rounds keep the new fleet day (the day
/// count rises → the cache must flush wholesale).
fn morning_batch(batch: &[TrajPoint], round: usize) -> Vec<TrajPoint> {
    batch
        .iter()
        .map(|p| TrajPoint {
            traj_id: p.traj_id + 2_000_000 + round as u32 * 10_000,
            date: if round.is_multiple_of(2) {
                p.date % BASE_DAYS
            } else {
                p.date
            },
            segment: p.segment,
            enter_time_s: p.enter_time_s,
        })
        .collect()
}

/// A slot-disjoint afternoon batch: fresh IDs, existing dates, 13:00+ —
/// cannot change any morning-pool answer (guard-checked after the race).
fn afternoon_batch(batch: &[TrajPoint], round: usize) -> Vec<TrajPoint> {
    batch
        .iter()
        .map(|p| TrajPoint {
            traj_id: p.traj_id + 1_000_000 + round as u32 * 10_000,
            date: p.date % BASE_DAYS,
            segment: p.segment,
            enter_time_s: (p.enter_time_s + 5 * 3600).min(streach_traj::SECONDS_PER_DAY - 1),
        })
        .collect()
}

/// Coalesced answers must be bit-identical to serial answers — including
/// the typed errors — on a batch mixing every grouping shape.
#[test]
fn coalesced_batch_is_bit_identical_to_serial() {
    let seed = fault_seed();
    let (network, base, _) = scenario();
    let engine = EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .build();
    let center = network.bounds().center();

    let mut batch: Vec<SQuery> = Vec::new();
    // Two exact duplicates + a third sharing the (origin, window) group
    // with a different threshold: one bounding pass, three verifications.
    for prob in [0.25, 0.25, 0.6] {
        batch.push(SQuery {
            location: center,
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob,
        });
    }
    // Same origin, different window → its own group.
    batch.push(SQuery {
        location: center,
        start_time_s: 10 * 3600,
        duration_s: 300,
        prob: 0.25,
    });
    // Different origin → its own group.
    batch.push(SQuery {
        location: center.offset_m(900.0, -600.0),
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    });
    // Same slot window as the first group, but an unaligned start second:
    // must NOT collapse into the duplicates' verification.
    batch.push(SQuery {
        location: center,
        start_time_s: 9 * 3600 + 7,
        duration_s: 600,
        prob: 0.25,
    });
    // Invalid (probability out of range) and off-network entries: the
    // failure stays the caller's, the rest of the batch is answered.
    batch.push(SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 1.5,
    });
    batch.push(SQuery {
        location: center.offset_m(500_000.0, 500_000.0),
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    });

    let coalesced = engine.try_s_query_coalesced(&batch);
    assert_eq!(coalesced.len(), batch.len(), "[seed {seed}] answer count");
    for (i, (query, answer)) in batch.iter().zip(&coalesced).enumerate() {
        let serial = engine.try_s_query(query, Algorithm::SqmbTbs);
        match (&answer.outcome, &serial) {
            (Ok(got), Ok(want)) => {
                assert_eq!(
                    answer_of(got),
                    answer_of(want),
                    "[seed {seed}] batch entry #{i} diverged from serial"
                );
                assert_eq!(
                    (got.stats.max_bounding_size, got.stats.min_bounding_size),
                    (want.stats.max_bounding_size, want.stats.min_bounding_size),
                    "[seed {seed}] batch entry #{i}: bounding sizes diverged"
                );
            }
            (Err(got), Err(want)) => assert_eq!(
                got.to_string(),
                want.to_string(),
                "[seed {seed}] batch entry #{i}: error diverged"
            ),
            (got, want) => {
                panic!("[seed {seed}] batch entry #{i}: coalesced {got:?} vs serial {want:?}")
            }
        }
    }
    // The duplicates, the shared-threshold member and the unaligned-start
    // member (same hop-slot fingerprint → same bounds, own verifier) rode
    // one bounding pass; the other windows/origins and the failures did not.
    for (i, answer) in coalesced.iter().enumerate() {
        let want_shared = matches!(i, 0 | 1 | 2 | 5);
        assert_eq!(
            answer.shared_bounding, want_shared,
            "[seed {seed}] entry #{i}: shared_bounding should be {want_shared}"
        );
    }
}

/// Same bit-identity through the sharded scatter-gather router, plus the
/// router-backed server invalidating on `ShardedEngine::ingest`.
#[test]
fn sharded_coalescing_and_server_cache_stay_bit_identical() {
    let seed = fault_seed();
    let (network, base, batches) = scenario();
    let map = Arc::new(ShardMap::partition(&network, 2));
    let single = EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .build();
    let leaders: Vec<Arc<ReachabilityEngine>> = (0..2)
        .map(|shard_id| {
            Arc::new(
                EngineBuilder::new(network.clone(), &base)
                    .index_config(config())
                    .shard(map.clone(), shard_id)
                    .build(),
            )
        })
        .collect();
    let router = Arc::new(ShardedEngine::new(map, leaders));
    let center = network.bounds().center();
    let pool = pool(center);

    let queries: Vec<SQuery> = pool
        .iter()
        .filter(|(_, a)| *a == Algorithm::SqmbTbs)
        .map(|(q, _)| *q)
        .collect();
    for (i, (query, answer)) in queries
        .iter()
        .zip(router.try_s_query_coalesced(&queries))
        .enumerate()
    {
        let got = answer
            .outcome
            .unwrap_or_else(|e| panic!("[seed {seed}] sharded coalesced entry #{i} failed: {e}"));
        let want = single
            .try_s_query(query, Algorithm::SqmbTbs)
            .expect("single-engine reference");
        assert_eq!(
            answer_of(&got),
            answer_of(&want),
            "[seed {seed}] sharded coalesced entry #{i} diverged from the single engine"
        );
    }

    // A server over the router: populate the cache, ingest a new fleet day
    // through the router (every leader notifies; the day count rises), and
    // require post-ingest answers to match the updated single engine — a
    // stale cache entry would be caught here.
    let server = QueryServer::start(
        router.clone(),
        ServeConfig {
            workers: 2,
            cache_capacity: 64,
            ..Default::default()
        },
    );
    for (i, (query, algorithm)) in pool.iter().enumerate() {
        let got = server
            .query(*query, *algorithm)
            .unwrap_or_else(|e| panic!("[seed {seed}] warmup pool entry #{i} failed: {e}"));
        let want = single.try_s_query(query, *algorithm).expect("reference");
        assert_eq!(
            answer_of(&got),
            answer_of(&want),
            "[seed {seed}] sharded server entry #{i} diverged pre-ingest"
        );
    }
    router.ingest(&batches[0]).expect("router ingest");
    single.ingest(&batches[0]).expect("single ingest");
    for (i, (query, algorithm)) in pool.iter().enumerate() {
        let want = single.try_s_query(query, *algorithm).expect("reference");
        // First read recomputes (the ingest flushed the cache), second read
        // serves the fresh entry — both must match the updated reference.
        let got = server
            .query(*query, *algorithm)
            .unwrap_or_else(|e| panic!("[seed {seed}] post-ingest pool entry #{i} failed: {e}"));
        let served = server
            .query(*query, *algorithm)
            .unwrap_or_else(|e| panic!("[seed {seed}] re-served pool entry #{i} failed: {e}"));
        assert_eq!(
            answer_of(&got),
            answer_of(&want),
            "[seed {seed}] sharded server entry #{i} stale after router ingest"
        );
        assert_eq!(
            answer_of(&served),
            answer_of(&want),
            "[seed {seed}] sharded server entry #{i} cached answer diverged"
        );
    }
    let stats = server.stats();
    assert!(
        stats.cache_flushes >= 1,
        "[seed {seed}] a new fleet day must flush the cache ({stats:?})"
    );
    server.shutdown();
}

/// The tentpole harness: the cached server races live WAL ingest,
/// auto-checkpoints and background compaction (see the module docs).
#[test]
fn cached_server_racing_ingest_and_compaction_stays_bit_identical() {
    let seed = fault_seed();
    let dir = tmp_dir("harness");
    let (network, base, batches) = scenario();
    EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save base snapshot");

    let live = Arc::new(
        ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open live engine"),
    );
    live.attach_wal(dir.join("ingest.wal")).expect("attach WAL");
    let controller = streach_core::MaintenanceController::spawn(
        Arc::clone(&live),
        &dir,
        MaintenanceConfig {
            poll_interval: std::time::Duration::from_millis(20),
            compact_delta_ratio: Some(0.05),
            ..Default::default()
        },
    );
    let reference =
        ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open reference");

    let server = QueryServer::start(
        Arc::clone(&live),
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            coalesce: true,
            cache_capacity: 256,
            ..Default::default()
        },
    );
    let center = network.bounds().center();
    let pool = pool(center);
    let rounds = if cfg!(debug_assertions) { 2 } else { 4 };
    let queries_per_thread = if cfg!(debug_assertions) { 4 } else { 8 };
    const QUERY_THREADS: usize = 3;

    // Several taxi-days per round: one lone taxi-day may miss every pool
    // origin, and the answer-change guard below needs each round to bite.
    let round_groups: Vec<Vec<TrajPoint>> = batches
        .chunks(batches.len().div_ceil(rounds))
        .map(|chunk| chunk.iter().flatten().copied().collect())
        .collect();

    let mut previous: Option<Vec<Answer>> = None;
    for round in 0..rounds {
        // Answer-changing morning ingest (quiesced): even rounds keep the
        // day count (targeted invalidation must fire), odd rounds raise it
        // (the whole cache must flush).
        let batch = morning_batch(&round_groups[round % round_groups.len()], round);
        live.ingest(&batch)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: live ingest: {e}"));
        reference
            .ingest(&batch)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: reference ingest: {e}"));
        let expected: Vec<Answer> = pool
            .iter()
            .map(|(q, a)| answer_of(&reference.try_s_query(q, *a).expect("reference query")))
            .collect();
        if let Some(prev) = &previous {
            assert_ne!(
                prev, &expected,
                "[seed {seed}] round {round}: the morning batch must change at least \
                 one pool answer, or the staleness check is vacuous"
            );
        }

        // Quiesced sweep 1: stale entries from the previous round must have
        // been invalidated — a stale hit would diverge right here.
        let stats_before = server.stats();
        for (i, (query, algorithm)) in pool.iter().enumerate() {
            let got = server
                .query(*query, *algorithm)
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round} sweep1 #{i}: {e}"));
            assert_eq!(
                answer_of(&got),
                expected[i],
                "[seed {seed}] round {round} sweep1 #{i}: stale or wrong answer"
            );
        }
        // Quiesced sweep 2: nothing changed in between, so every answer is
        // served from the cache — and still bit-identical.
        let stats_mid = server.stats();
        for (i, (query, algorithm)) in pool.iter().enumerate() {
            let got = server
                .query(*query, *algorithm)
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round} sweep2 #{i}: {e}"));
            assert_eq!(
                answer_of(&got),
                expected[i],
                "[seed {seed}] round {round} sweep2 #{i}: cached answer diverged"
            );
        }
        let stats_after = server.stats();
        assert!(
            stats_after.cache_hits >= stats_mid.cache_hits + pool.len() as u64,
            "[seed {seed}] round {round}: quiesced sweep 2 must be all cache hits \
             ({stats_before:?} -> {stats_mid:?} -> {stats_after:?})"
        );
        if round > 0 {
            assert!(
                stats_mid.cache_misses > stats_before.cache_misses,
                "[seed {seed}] round {round}: the answer-changing ingest must have \
                 evicted at least one entry ({stats_before:?} -> {stats_mid:?})"
            );
        }

        // Race phase: threads hammer the server (hits, shared bounding
        // passes and fresh computes all mixed) while the main thread feeds
        // slot-disjoint afternoon pieces through the WAL and triggers
        // maintenance passes — afternoon data cannot change these answers,
        // so even mid-invalidation reads must stay bit-identical.
        let afternoon = afternoon_batch(&round_groups[round % round_groups.len()], round);
        reference
            .ingest(&afternoon)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: reference afternoon: {e}"));
        let pieces: Vec<&[TrajPoint]> = afternoon
            .chunks(afternoon.len().div_ceil(16).max(1))
            .collect();
        let mut next_piece = 0usize;
        let running = AtomicUsize::new(QUERY_THREADS);
        std::thread::scope(|scope| {
            for thread in 0..QUERY_THREADS {
                let server = &server;
                let pool = &pool;
                let expected = &expected;
                let running = &running;
                scope.spawn(move || {
                    for i in 0..queries_per_thread {
                        let index =
                            (mix(seed, round as u64 * 1009 + thread as u64 * 101 + i as u64)
                                % pool.len() as u64) as usize;
                        let (query, algorithm) = &pool[index];
                        let got = server.query(*query, *algorithm).unwrap_or_else(|e| {
                            panic!(
                                "[seed {seed}] round {round} race: thread {thread} \
                                 query #{i} (pool entry {index}) failed: {e}"
                            )
                        });
                        assert_eq!(
                            answer_of(&got),
                            expected[index],
                            "[seed {seed}] round {round} race: thread {thread} query #{i} \
                             (pool entry {index}) diverged from the quiesced reference"
                        );
                    }
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
            while running.load(Ordering::SeqCst) > 0 {
                if next_piece < pieces.len() {
                    live.ingest(pieces[next_piece]).unwrap_or_else(|e| {
                        panic!("[seed {seed}] round {round}: racing ingest: {e}")
                    });
                    next_piece += 1;
                } else {
                    controller.run_now();
                }
            }
        });
        for piece in &pieces[next_piece..] {
            live.ingest(piece)
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: drain ingest: {e}"));
        }
        // Disjointness guard: the racing afternoon data must not have
        // changed a single morning answer (on either engine).
        for (i, (query, algorithm)) in pool.iter().enumerate() {
            let got = server
                .query(*query, *algorithm)
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round} guard #{i}: {e}"));
            assert_eq!(
                answer_of(&got),
                expected[i],
                "[seed {seed}] round {round} guard #{i}: afternoon ingest changed a \
                 morning answer (disjointness premise broken)"
            );
        }
        let errors = controller.take_errors();
        assert!(
            errors.is_empty(),
            "[seed {seed}] round {round}: background maintenance failed: {errors:?}"
        );
        previous = Some(expected);
    }

    // Duplicate burst: cross-user sharing must show up as shared bounding
    // passes, cache hits, or both — never as N independent cold computes
    // with an idle cache.
    let burst_query = pool[0].0;
    let before = server.stats();
    let tickets: Vec<_> = (0..8)
        .map(|_| server.submit(burst_query, Algorithm::SqmbTbs))
        .collect();
    let burst_expected = answer_of(
        &reference
            .try_s_query(&burst_query, Algorithm::SqmbTbs)
            .unwrap(),
    );
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket
            .wait()
            .unwrap_or_else(|e| panic!("[seed {seed}] burst ticket #{i}: {e}"));
        assert_eq!(
            answer_of(&got),
            burst_expected,
            "[seed {seed}] burst ticket #{i} diverged"
        );
    }
    let after = server.stats();
    assert!(
        after.coalesced > before.coalesced || after.cache_hits > before.cache_hits,
        "[seed {seed}] 8 duplicate submissions shared no work ({before:?} -> {after:?})"
    );

    let stats = server.stats();
    assert_eq!(
        stats.submitted, stats.completed,
        "[seed {seed}] every submitted query must complete ({stats:?})"
    );
    assert!(
        stats.cache_hits > 0 && stats.cache_invalidated > 0,
        "[seed {seed}] the harness must exercise hits and targeted invalidation ({stats:?})"
    );
    assert!(
        stats.cache_flushes >= 1,
        "[seed {seed}] a new-fleet-day round must flush the cache ({stats:?})"
    );
    let maintenance = controller.stats();
    assert!(
        maintenance.checkpoints > 0,
        "[seed {seed}] the race must exercise auto-checkpoints ({maintenance:?})"
    );
    let errors = controller.shutdown();
    assert!(
        errors.is_empty(),
        "[seed {seed}] shutdown errors: {errors:?}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Compile-time pin: the server must stay shareable across client threads.
#[test]
fn server_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryServer<ReachabilityEngine>>();
    assert_send_sync::<QueryServer<ShardedEngine>>();
    assert_send_sync::<ServerStats>();
}
