//! End-to-end integration test: synthetic city → fleet simulation → (raw GPS
//! → map matching) → index construction → reachability queries.
//!
//! This exercises every crate of the workspace through the public API, the
//! way the examples and the benchmark harness use it.

use std::sync::Arc;

use streach::prelude::*;
use streach::traj::map_matching::map_match;
use streach::traj::FleetSimulator;

fn build_engine(
    num_taxis: usize,
    num_days: u16,
) -> (Arc<RoadNetwork>, ReachabilityEngine, GeoPoint) {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis,
            num_days,
            ..FleetConfig::tiny()
        },
    );
    let engine = EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        })
        .build();
    (network, engine, center)
}

#[test]
fn full_preprocessing_pipeline_produces_queryable_indexes() {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);

    // Raw GPS emission + map matching (the paper's pre-processing module).
    let fleet = FleetConfig {
        num_taxis: 6,
        num_days: 2,
        ..FleetConfig::tiny()
    };
    let sim = FleetSimulator::new(&network, fleet.clone());
    let pairs = sim.simulate_with_gps();
    let raw: Vec<_> = pairs.iter().map(|(r, _)| r.clone()).collect();
    assert!(raw.iter().all(|t| !t.is_empty()));
    let matched = map_match(&network, &raw);
    assert_eq!(matched.len(), raw.len());

    let dataset = TrajectoryDataset::from_matched(matched, fleet.num_taxis, fleet.num_days);
    let engine = EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        })
        .build();

    // The indexes are non-trivial.
    assert!(engine.st_index().stats().num_time_lists > 0);

    // A query at a time the fleet was active returns a region containing the
    // start segment.
    let q = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.2,
    };
    let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
    let r0 = engine.locate(&center).unwrap();
    assert!(outcome.region.contains(r0));
    assert!(outcome.region.total_length_km > 0.0);
}

#[test]
fn sqmb_tbs_and_es_agree_on_verified_segments() {
    let (network, engine, center) = build_engine(25, 4);
    let q = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };
    engine.warm_con_index(q.start_time_s, q.duration_s);

    let es = engine.s_query(&q, Algorithm::ExhaustiveSearch);
    let fast = engine.s_query(&q, Algorithm::SqmbTbs);

    // Both contain the start segment and are non-empty.
    let r0 = engine.locate(&center).unwrap();
    assert!(es.region.contains(r0));
    assert!(fast.region.contains(r0));

    // The ES region is the ground truth for "verified Prob-reachable": every
    // segment ES found must lie inside the SQMB maximum bounding region and
    // most of it must be recovered by TBS (differences can only come from
    // the minimum bounding region, which is included without verification).
    let common = es
        .region
        .segments
        .iter()
        .filter(|s| fast.region.contains(**s))
        .count();
    assert!(
        common as f64 >= 0.7 * es.region.len() as f64,
        "SQMB+TBS recovered only {common} of {} ES segments",
        es.region.len()
    );

    // The index-based algorithm must not verify more segments than ES does.
    assert!(
        fast.stats.segments_verified <= es.stats.segments_verified,
        "TBS verified {} segments, ES verified {}",
        fast.stats.segments_verified,
        es.stats.segments_verified
    );
    let _ = network;
}

#[test]
fn mquery_union_semantics_and_efficiency() {
    use streach::core::query::MQueryAlgorithm;

    let (network, engine, center) = build_engine(25, 4);
    let q = MQuery {
        locations: vec![
            center,
            center.offset_m(1200.0, 600.0),
            center.offset_m(-900.0, -900.0),
        ],
        start_time_s: 9 * 3600,
        duration_s: 900,
        prob: 0.2,
    };
    engine.warm_con_index(q.start_time_s, q.duration_s);

    let repeated = engine.m_query(&q, MQueryAlgorithm::RepeatedSQuery);
    let unified = engine.m_query(&q, MQueryAlgorithm::MqmbTbs);

    // Every start segment is in both results.
    for loc in &q.locations {
        let seg = engine.locate(loc).unwrap();
        assert!(repeated.region.contains(seg));
        assert!(unified.region.contains(seg));
    }

    // MQMB verifies fewer (or equal) segments than running the s-queries
    // separately, because overlapping segments are verified once.
    assert!(unified.stats.segments_verified <= repeated.stats.segments_verified);

    // The two regions agree on the bulk of the area.
    let common = repeated
        .region
        .segments
        .iter()
        .filter(|s| unified.region.contains(**s))
        .count();
    assert!(
        common as f64 >= 0.6 * repeated.region.len() as f64,
        "unified region too different: {common} of {}",
        repeated.region.len()
    );
    let _ = network;
}

#[test]
fn probability_threshold_is_monotone_end_to_end() {
    let (_, engine, center) = build_engine(30, 5);
    engine.warm_con_index(9 * 3600, 900);
    let mut previous_len = usize::MAX;
    for prob in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let q = SQuery {
            location: center,
            start_time_s: 9 * 3600,
            duration_s: 900,
            prob,
        };
        let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
        assert!(
            outcome.region.len() <= previous_len,
            "region must shrink as Prob grows (prob={prob})"
        );
        previous_len = outcome.region.len();
    }
}

#[test]
fn geojson_export_of_query_result_is_well_formed() {
    let (network, engine, center) = build_engine(15, 3);
    let q = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.2,
    };
    let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
    let geojson = region_to_geojson(&network, &outcome.region);
    assert!(geojson.starts_with("{\"type\":\"FeatureCollection\""));
    assert_eq!(
        geojson.matches("\"type\":\"Feature\"").count(),
        outcome.region.len()
    );
    assert_eq!(geojson.matches('{').count(), geojson.matches('}').count());
}
