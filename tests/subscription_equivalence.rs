//! Continuous-subscription equivalence harness: standing queries kept
//! current **incrementally** (footprint-filtered re-evaluation per ingest
//! batch, `streach_core::subscribe`) must stay **bit-identical** to
//! re-running every subscription from scratch after every batch — across
//! live ingest, background compaction, and the sharded router.
//!
//! The harness is seeded (`STREACH_FAULT_SEED`, printed in every
//! assertion) and pins five properties:
//!
//! * **Bit-identity, single engine** — after every live batch (and a
//!   mid-campaign compaction) each subscription's incrementally maintained
//!   region equals a fresh full evaluation, segment-for-segment and to the
//!   last float bit, on both SQMB+TBS and ES subscriptions.
//! * **Bit-identity, sharded** — the same campaign against a 3-shard
//!   scatter-gather router: per-shard ingest touches merge into one
//!   re-evaluation stream and the maintained regions match an unsharded
//!   reference engine.
//! * **Zero work on untouched batches** — a slot-disjoint afternoon batch
//!   (same derivation as `tests/concurrent_maintenance.rs`) intersects no
//!   morning subscription's footprint: the manager issues **zero** engine
//!   queries and emits **zero** events, while a real morning batch does
//!   re-evaluate. This is the observable cost model the
//!   `--subscriptions` bench gates on.
//! * **Threshold triggers fire exactly at the crossing batch** — a dry run
//!   records the region-length trajectory of a standing query, a threshold
//!   is planted between two consecutive lengths, and the live campaign
//!   must raise `trigger_fired` exactly on the batches where the length
//!   crosses below the threshold — not before, not after, not while
//!   already below.
//! * **Typed faults, registration survives** — a scripted dead disk
//!   (`FaultInjectingPageStore`, every read EIO) during re-evaluation
//!   surfaces as a typed `SubscriptionEvent::EvaluationFailed` carrying
//!   `QueryError::Storage`; the subscription stays registered and dirty,
//!   and once the disk heals the next pass converges it back to the full
//!   answer. The bounded event queue reports overflow as a typed
//!   `Lagged` count instead of blocking or silently growing.

use std::path::PathBuf;
use std::sync::Arc;

use streach::prelude::*;
use streach::storage::{FaultController, FaultInjectingPageStore};

/// Base fleet-days built offline; the remaining days arrive via ingest.
const BASE_DAYS: u16 = 2;
/// Fleet-days ingested batch by batch.
const EXTRA_DAYS: u16 = 2;
/// Spatial shards of the sharded campaign.
const NUM_SHARDS: u16 = 3;

fn fault_seed() -> u64 {
    std::env::var("STREACH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_728)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-subs-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> IndexConfig {
    IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    }
}

/// The shared scenario: a small synthetic city, a base dataset built
/// offline and one live-feed batch per (trajectory, date) of the extra
/// days.
fn scenario() -> (Arc<RoadNetwork>, TrajectoryDataset, Vec<Vec<TrajPoint>>) {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 10,
            num_days: BASE_DAYS + EXTRA_DAYS,
            day_start_s: 8 * 3600,
            day_end_s: 11 * 3600,
            seed: 31,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < BASE_DAYS)
            .cloned()
            .collect(),
        full.num_taxis(),
        BASE_DAYS,
    );
    let round_batches: Vec<Vec<TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= BASE_DAYS)
        .map(|t| points_of(t).collect())
        .collect();
    assert!(round_batches.len() >= 2, "scenario needs live batches");
    (network, base, round_batches)
}

/// A slot-disjoint ingest batch: fresh trajectory IDs, existing dates,
/// afternoon time slots — by construction it raises no day count and
/// touches no slot any morning subscription reads.
fn disjoint_batch(batch: &[TrajPoint], round: usize) -> Vec<TrajPoint> {
    batch
        .iter()
        .map(|p| TrajPoint {
            traj_id: p.traj_id + 1_000_000 + round as u32 * 10_000,
            date: p.date % BASE_DAYS,
            segment: p.segment,
            enter_time_s: (p.enter_time_s + 5 * 3600).min(streach_traj::SECONDS_PER_DAY - 1),
        })
        .collect()
}

/// The standing-query pool: morning windows over several locations, both
/// algorithms (ES only on the short windows it can afford).
fn standing_pool(network: &RoadNetwork) -> Vec<(SQuery, Algorithm)> {
    let center = network.bounds().center();
    let locations = [
        center,
        center.offset_m(900.0, -600.0),
        center.offset_m(-1200.0, 800.0),
    ];
    let mut pool = Vec::new();
    for (start, duration, prob) in [
        (8 * 3600 + 1800, 300u32, 0.25),
        (9 * 3600, 600, 0.25),
        (9 * 3600 + 900, 900, 0.6),
    ] {
        for &location in &locations {
            let q = SQuery {
                location,
                start_time_s: start,
                duration_s: duration,
                prob,
            };
            pool.push((q, Algorithm::SqmbTbs));
            if duration <= 300 {
                pool.push((q, Algorithm::ExhaustiveSearch));
            }
        }
    }
    pool
}

/// Bit-comparable form of a region.
fn bits_of(region: &ReachableRegion) -> (Vec<SegmentId>, u64) {
    (region.segments.clone(), region.total_length_km.to_bits())
}

/// Asserts every subscription's incrementally maintained region equals a
/// fresh full evaluation of the same query, bit for bit.
fn assert_subscriptions_match_full<F>(
    manager: &SubscriptionManager<ReachabilityEngine>,
    subs: &[(SubscriptionId, SQuery, Algorithm)],
    full: F,
    seed: u64,
    label: &str,
) where
    F: Fn(&SQuery, Algorithm) -> Result<QueryOutcome, QueryError>,
{
    for (id, query, algorithm) in subs {
        let maintained = manager
            .last_region(*id)
            .unwrap_or_else(|e| panic!("[seed {seed}] {label}: {id} vanished: {e}"))
            .unwrap_or_else(|| panic!("[seed {seed}] {label}: {id} has no answer"));
        let fresh = full(query, *algorithm)
            .unwrap_or_else(|e| panic!("[seed {seed}] {label}: full re-eval of {id} failed: {e}"))
            .region;
        assert_eq!(
            bits_of(&maintained),
            bits_of(&fresh),
            "[seed {seed}] {label}: {id} ({algorithm:?}) diverged from full re-evaluation"
        );
    }
}

/// Tentpole, single engine: incremental == full after every batch, across
/// live ingest and a mid-campaign compaction, with zero engine queries on
/// a pass that saw no touches.
#[test]
fn incremental_matches_full_reevaluation() {
    let seed = fault_seed();
    let (network, base, round_batches) = scenario();
    let engine = Arc::new(
        EngineBuilder::new(network.clone(), &base)
            .index_config(config())
            .build(),
    );
    let manager = SubscriptionManager::spawn(engine.clone(), SubscribeConfig::default());

    let mut subs = Vec::new();
    for (query, algorithm) in standing_pool(&network) {
        let id = manager
            .subscribe(query, algorithm, Trigger::AnyRegionChange)
            .unwrap_or_else(|e| panic!("[seed {seed}] subscribe: {e}"));
        subs.push((id, query, algorithm));
    }
    // Every registration computed its baseline synchronously.
    assert_subscriptions_match_full(
        &manager,
        &subs,
        |q, a| engine.try_s_query(q, a),
        seed,
        "registration baseline",
    );
    let registration_events = manager.poll_events().len();
    assert_eq!(
        registration_events,
        subs.len(),
        "[seed {seed}] one initial event per subscription"
    );

    let compact_at = round_batches.len() / 2;
    for (round, batch) in round_batches.iter().enumerate() {
        engine.ingest(batch).expect("live ingest");
        if round == compact_at {
            // Background maintenance folds the delta mid-campaign; the
            // maintained answers must not move.
            engine.compact().expect("mid-campaign compaction");
        }
        manager.run_now();
        assert_subscriptions_match_full(
            &manager,
            &subs,
            |q, a| engine.try_s_query(q, a),
            seed,
            &format!("after batch {round}"),
        );
    }

    // A quiesced pass with no pending touches re-evaluates nothing.
    let queries_before = manager.stats().engine_queries;
    manager.run_now();
    assert_eq!(
        manager.stats().engine_queries,
        queries_before,
        "[seed {seed}] an untouched pass must issue zero engine queries"
    );

    // Unsubscribe actually unregisters.
    let (gone, ..) = subs[0];
    manager.unsubscribe(gone).expect("unsubscribe");
    assert_eq!(manager.subscriptions(), subs.len() - 1);
    assert_eq!(
        manager.unsubscribe(gone),
        Err(SubscribeError::UnknownSubscription(gone)),
        "[seed {seed}] double unsubscribe must be a typed error"
    );
}

/// Tentpole, sharded: the same campaign against a 3-shard router, with the
/// per-shard touches merged into one re-evaluation stream, compared
/// against an unsharded reference engine.
#[test]
fn sharded_subscriptions_stay_bit_identical() {
    let seed = fault_seed();
    let (network, base, round_batches) = scenario();
    let map = Arc::new(ShardMap::partition(&network, NUM_SHARDS));

    let reference = EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .build();
    let leaders = (0..NUM_SHARDS)
        .map(|shard_id| {
            Arc::new(
                EngineBuilder::new(network.clone(), &base)
                    .index_config(config())
                    .shard(map.clone(), shard_id)
                    .build(),
            )
        })
        .collect();
    let router = Arc::new(ShardedEngine::new(map, leaders));
    let manager = SubscriptionManager::spawn(router.clone(), SubscribeConfig::default());

    let mut subs = Vec::new();
    for (query, algorithm) in standing_pool(&network) {
        let id = manager
            .subscribe(query, algorithm, Trigger::AnyRegionChange)
            .unwrap_or_else(|e| panic!("[seed {seed}] sharded subscribe: {e}"));
        subs.push((id, query, algorithm));
    }

    for (round, batch) in round_batches.iter().enumerate() {
        reference.ingest(batch).expect("reference ingest");
        router.ingest(batch).expect("routed ingest");
        manager.run_now();
        let label = format!("sharded, after batch {round}");
        for (id, query, algorithm) in &subs {
            let maintained = manager
                .last_region(*id)
                .unwrap_or_else(|e| panic!("[seed {seed}] {label}: {id} vanished: {e}"))
                .unwrap_or_else(|| panic!("[seed {seed}] {label}: {id} has no answer"));
            let fresh = reference
                .try_s_query(query, *algorithm)
                .unwrap_or_else(|e| {
                    panic!("[seed {seed}] {label}: reference re-eval of {id} failed: {e}")
                })
                .region;
            assert_eq!(
                bits_of(&maintained),
                bits_of(&fresh),
                "[seed {seed}] {label}: {id} ({algorithm:?}) diverged from the \
                 unsharded reference"
            );
        }
    }
}

/// Cost model: a slot-disjoint batch intersects no footprint and issues
/// zero engine queries; a real morning batch re-evaluates.
#[test]
fn untouched_batches_issue_zero_engine_queries() {
    let seed = fault_seed();
    let (network, base, round_batches) = scenario();
    let engine = Arc::new(
        EngineBuilder::new(network.clone(), &base)
            .index_config(config())
            .build(),
    );
    let manager = SubscriptionManager::spawn(engine.clone(), SubscribeConfig::default());
    let subs: Vec<_> = standing_pool(&network)
        .into_iter()
        .map(|(query, algorithm)| {
            manager
                .subscribe(query, algorithm, Trigger::AnyRegionChange)
                .unwrap_or_else(|e| panic!("[seed {seed}] subscribe: {e}"))
        })
        .collect();
    let _ = manager.poll_events(); // drain the registration baselines

    // Afternoon batches on existing dates: no day raise, no slot overlap.
    let baseline = manager.stats().engine_queries;
    for (round, batch) in round_batches.iter().enumerate().take(3) {
        engine
            .ingest(&disjoint_batch(batch, round))
            .expect("disjoint ingest");
        manager.run_now();
    }
    let stats = manager.stats();
    assert_eq!(
        stats.engine_queries,
        baseline,
        "[seed {seed}] slot-disjoint batches must issue zero engine queries \
         for {} standing subscriptions",
        subs.len()
    );
    assert!(
        manager.poll_events().is_empty(),
        "[seed {seed}] slot-disjoint batches must emit no events"
    );

    // A real morning batch intersects footprints and re-evaluates; the
    // incremental path still does no more work than one evaluation per
    // registered subscription (what a full re-run would cost).
    engine.ingest(&round_batches[0]).expect("morning ingest");
    manager.run_now();
    let after = manager.stats().engine_queries;
    assert!(
        after > baseline,
        "[seed {seed}] a touching batch must re-evaluate something"
    );
    assert!(
        after - baseline <= subs.len() as u64,
        "[seed {seed}] one batch must cost at most one evaluation per subscription"
    );
}

/// Threshold triggers fire exactly on the batches where the maintained
/// region's length crosses below the planted threshold.
#[test]
fn threshold_trigger_fires_exactly_at_the_crossing_batch() {
    let seed = fault_seed();
    let (network, base, round_batches) = scenario();

    // Dry run: record each candidate's length trajectory on a shadow
    // engine and plant a threshold between two consecutive lengths of the
    // first query that ever shrinks (new ingest days raise the probability
    // denominator, so shrinks exist; guard-checked below).
    let shadow = EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .build();
    let candidates: Vec<SQuery> = standing_pool(&network)
        .into_iter()
        .filter(|(_, a)| *a == Algorithm::SqmbTbs)
        .map(|(q, _)| q)
        .collect();
    let length_of = |query: &SQuery| {
        shadow
            .try_s_query(query, Algorithm::SqmbTbs)
            .expect("dry evaluation")
            .region
            .total_length_km
    };
    let mut trajectories: Vec<Vec<f64>> = candidates.iter().map(|q| vec![length_of(q)]).collect();
    for batch in &round_batches {
        shadow.ingest(batch).expect("dry ingest");
        for (lengths, query) in trajectories.iter_mut().zip(&candidates) {
            lengths.push(length_of(query));
        }
    }
    let (query, threshold, lengths) = candidates
        .iter()
        .zip(&trajectories)
        .find_map(|(query, lengths)| {
            (1..lengths.len())
                .find(|&k| lengths[k] < lengths[k - 1])
                .map(|k| (*query, (lengths[k - 1] + lengths[k]) / 2.0, lengths.clone()))
        })
        .unwrap_or_else(|| {
            panic!("[seed {seed}] guard: no standing query ever shrank — scenario too static")
        });
    let expected_fired: Vec<bool> = (1..lengths.len())
        .map(|k| lengths[k - 1] >= threshold && lengths[k] < threshold)
        .collect();
    assert!(
        expected_fired.iter().any(|&f| f),
        "[seed {seed}] guard: the planted threshold must cross at least once"
    );

    // Live campaign: the manager must fire on exactly the expected batches.
    let engine = Arc::new(
        EngineBuilder::new(network.clone(), &base)
            .index_config(config())
            .build(),
    );
    let manager = SubscriptionManager::spawn(engine.clone(), SubscribeConfig::default());
    let id = manager
        .subscribe(query, Algorithm::SqmbTbs, Trigger::LengthBelowKm(threshold))
        .unwrap_or_else(|e| panic!("[seed {seed}] subscribe: {e}"));
    let initial = manager.poll_events();
    assert!(
        matches!(
            initial.as_slice(),
            [SubscriptionEvent::Update(ReachabilityEvent {
                old_region: None,
                trigger_fired: false,
                ..
            })]
        ),
        "[seed {seed}] the registration baseline must not fire the trigger: {initial:?}"
    );

    for (round, batch) in round_batches.iter().enumerate() {
        engine.ingest(batch).expect("live ingest");
        manager.run_now();
        let fired = manager.poll_events().iter().any(|event| {
            matches!(
                event,
                SubscriptionEvent::Update(ReachabilityEvent {
                    id: event_id,
                    trigger_fired: true,
                    ..
                }) if *event_id == id
            )
        });
        assert_eq!(
            fired,
            expected_fired[round],
            "[seed {seed}] batch {round}: trigger fired={fired}, expected \
             {} (lengths {} -> {}, threshold {threshold})",
            expected_fired[round],
            lengths[round],
            lengths[round + 1],
        );
    }
}

/// A dead disk during re-evaluation surfaces as a typed event; the
/// subscription stays registered and converges once the disk heals. The
/// bounded queue reports overflow as a typed `Lagged` count.
#[test]
fn evaluation_fault_emits_typed_event_and_converges() {
    let seed = fault_seed();
    let dir = tmp_dir("fault");
    // A denser fleet than `scenario()`: the standing queries below must
    // actually read postings cold (guard-checked), so the scripted EIO has
    // something to hit. Same shape as `tests/fault_injection.rs`.
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 12,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 5,
            ..FleetConfig::default()
        },
    );
    EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");
    let live_batch: Vec<TrajPoint> = {
        let extra = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 6,
                num_days: 1,
                day_start_s: 8 * 3600,
                day_end_s: 12 * 3600,
                seed: 99,
                ..FleetConfig::default()
            },
        );
        extra
            .trajectories()
            .iter()
            .flat_map(|t| {
                points_of(t).map(|mut p| {
                    p.date += 3;
                    p
                })
            })
            .collect()
    };
    let ctl = FaultController::detached(seed);
    let engine = Arc::new(
        ReachabilityEngine::open_snapshot_with_stores(&dir, network.clone(), {
            let ctl = ctl.clone();
            move |_role, store| Box::new(FaultInjectingPageStore::with_controller(store, &ctl))
        })
        .expect("open snapshot with fault wrapper"),
    );

    // Overflow handling rides along: a 2-slot queue receiving more initial
    // events than it holds must report the loss, typed.
    let manager = SubscriptionManager::spawn(
        engine.clone(),
        SubscribeConfig {
            event_capacity: 2,
            ..SubscribeConfig::default()
        },
    );
    let mut subs = Vec::new();
    for (query, algorithm) in standing_pool(&network) {
        subs.push((
            manager
                .subscribe(query, algorithm, Trigger::AnyRegionChange)
                .unwrap_or_else(|e| panic!("[seed {seed}] subscribe: {e}")),
            query,
            algorithm,
        ));
    }
    let overflowed = subs.len() as u64 - 2;
    let drained = manager.poll_events();
    assert!(
        matches!(drained.first(), Some(SubscriptionEvent::Lagged { missed }) if *missed == overflowed),
        "[seed {seed}] a 2-slot queue after {} events must lead with \
         Lagged{{{overflowed}}}: {drained:?}",
        subs.len()
    );
    assert_eq!(drained.len(), 3, "[seed {seed}] Lagged + the 2 kept events");

    // Land a touching batch (a fresh day: raises the day count, so every
    // subscription is affected) and let the manager settle.
    engine.ingest(&live_batch).expect("live ingest");
    manager.run_now();
    let _ = manager.poll_events();

    // Guard: a cold full re-evaluation must physically read postings —
    // otherwise the dead-disk phase below would prove nothing.
    engine.st_index().clear_cache();
    let reads_before = ctl.reads_observed();
    manager.invalidate_all();
    manager.run_now();
    assert!(
        ctl.reads_observed() > reads_before,
        "[seed {seed}] guard: cold re-evaluation must hit the page store"
    );
    let _ = manager.poll_events();

    // Kill the disk and force a full re-evaluation: the pass must fail
    // typed, and every subscription must stay registered and dirty.
    engine.st_index().clear_cache();
    ctl.fail_reads_from(ctl.reads_observed());
    manager.invalidate_all();
    manager.run_now();
    let events = manager.poll_events();
    let failures = events
        .iter()
        .filter(|event| {
            matches!(
                event,
                SubscriptionEvent::EvaluationFailed {
                    error: QueryError::Storage { .. },
                    ..
                }
            )
        })
        .count();
    assert!(
        failures > 0,
        "[seed {seed}] a dead disk mid-pass must surface typed Storage failures: {events:?}"
    );
    assert_eq!(
        manager.subscriptions(),
        subs.len(),
        "[seed {seed}] failed evaluations must not unregister anything"
    );
    assert!(
        manager.stats().errors >= failures as u64,
        "[seed {seed}] failures must be counted"
    );

    // Heal the disk: the dirty subscriptions converge on the next pass,
    // bit-identically to a full re-evaluation.
    ctl.clear();
    engine.st_index().clear_cache();
    manager.run_now();
    assert_subscriptions_match_full(
        &manager,
        &subs,
        |q, a| engine.try_s_query(q, a),
        seed,
        "after the disk healed",
    );
}
