//! Engine snapshot round-trip suite: build → save → open must answer a
//! fixed query workload **bit-identically** to the freshly built engine,
//! with genuine page I/O on the cold open — plus loud rejection of
//! corrupted, truncated and mismatched snapshots.

use std::path::PathBuf;
use std::sync::Arc;

use streach::prelude::*;
use streach::storage::StorageError;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-snapshot-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_inputs() -> (Arc<RoadNetwork>, TrajectoryDataset) {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 20,
            num_days: 4,
            day_start_s: 0,
            day_end_s: 86_400,
            seed: 31,
            ..FleetConfig::default()
        },
    );
    (network, dataset)
}

fn config() -> IndexConfig {
    IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    }
}

/// The fixed s-query suite every snapshot assertion sweeps — includes a
/// cross-midnight start so wrap semantics survive persistence too.
fn squery_suite(location: GeoPoint) -> Vec<SQuery> {
    let mut out = Vec::new();
    for (start, duration) in [
        (9 * 3600u32, 600u32),
        (12 * 3600, 1500),
        (18 * 3600 + 900, 300),
        (23 * 3600 + 55 * 60, 600),
    ] {
        for prob in [0.25, 0.75] {
            out.push(SQuery {
                location,
                start_time_s: start,
                duration_s: duration,
                prob,
            });
        }
    }
    out
}

#[test]
fn snapshot_roundtrip_answers_bit_identically() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("roundtrip");
    let center = network.bounds().center();

    // Build, warm the slots the suite needs, save.
    let built = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .build();
    for q in squery_suite(center) {
        built.warm_con_index(q.start_time_s, q.duration_s);
    }
    built.save_snapshot(&dir).expect("save snapshot");

    // Reopen cold — the dataset is not in scope here at all.
    let reopened = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open snapshot");

    // The Con-Index comes back warm: tables restored, none rebuilt.
    let con_stats = reopened.con_index().stats();
    assert!(con_stats.cached_slots > 0, "warmed tables must be restored");
    assert_eq!(con_stats.slots_built, 0, "no table may be rebuilt on open");

    // Cold open must pay real page I/O on the first posting reads.
    reopened.st_index().clear_cache();
    reopened.st_index().io_stats().reset();

    for (i, q) in squery_suite(center).iter().enumerate() {
        for algo in [Algorithm::SqmbTbs, Algorithm::ExhaustiveSearch] {
            let a = built.s_query(q, algo);
            let b = reopened.s_query(q, algo);
            assert_eq!(
                a.region.segments, b.region.segments,
                "query #{i} ({algo:?}) region diverged after reopen"
            );
            assert_eq!(
                a.region.total_length_km.to_bits(),
                b.region.total_length_km.to_bits(),
                "query #{i} ({algo:?}) length diverged after reopen"
            );
        }
    }

    let io = reopened.st_index().io_stats().snapshot();
    assert!(
        io.page_reads > 0,
        "cold open must read pages from the snapshot's page file"
    );

    // M-queries round-trip too.
    let m = MQuery {
        locations: vec![center, center.offset_m(1200.0, -800.0)],
        start_time_s: 10 * 3600,
        duration_s: 900,
        prob: 0.25,
    };
    use streach::core::query::MQueryAlgorithm;
    let a = built.m_query(&m, MQueryAlgorithm::MqmbTbs);
    let b = reopened.m_query(&m, MQueryAlgorithm::MqmbTbs);
    assert_eq!(a.region.segments, b.region.segments);
    assert_eq!(
        a.region.total_length_km.to_bits(),
        b.region.total_length_km.to_bits()
    );

    // Index metadata survives verbatim.
    assert_eq!(built.st_index().stats(), reopened.st_index().stats());
    assert_eq!(built.st_index().num_days(), reopened.st_index().num_days());
    assert_eq!(built.config().slot_s, reopened.config().slot_s);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_container_is_rejected() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("corrupt");
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");

    let container = dir.join(streach::core::snapshot::CONTAINER_FILE);
    let mut bytes = std::fs::read(&container).unwrap();

    // Flip one byte in the header.
    bytes[3] ^= 0xFF;
    std::fs::write(&container, &bytes).unwrap();
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&dir, network.clone()),
        Err(StorageError::Corrupt { .. })
    ));

    // Restore, then truncate the container mid-section.
    bytes[3] ^= 0xFF;
    std::fs::write(&container, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&dir, network.clone()),
        Err(StorageError::Corrupt { .. })
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_page_file_is_rejected() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("truncated-pages");
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");

    let pages = dir.join(streach::core::snapshot::PAGES_FILE);
    let bytes = std::fs::read(&pages).unwrap();
    assert!(bytes.len() > streach::storage::PAGE_SIZE);

    // Cutting mid-page breaks alignment; cutting at a page boundary leaves
    // the heap short. Both must be rejected at open time.
    std::fs::write(&pages, &bytes[..bytes.len() - 100]).unwrap();
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&dir, network.clone()),
        Err(StorageError::Corrupt { .. })
    ));
    std::fs::write(&pages, &bytes[..streach::storage::PAGE_SIZE]).unwrap();
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&dir, network.clone()),
        Err(StorageError::Corrupt { .. })
    ));

    // Bit rot inside a posting page (length intact) must also be caught —
    // the container pins the page file's CRC.
    let mut rotten = bytes.clone();
    let mid = rotten.len() / 2;
    rotten[mid] ^= 0x40;
    std::fs::write(&pages, &rotten).unwrap();
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&dir, network.clone()),
        Err(StorageError::Corrupt { .. })
    ));

    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot deployed as an immutable artifact (read-only files) must
/// still open and serve queries — cold opens never write.
#[test]
#[cfg(unix)]
fn read_only_snapshot_opens_and_serves() {
    use std::os::unix::fs::PermissionsExt;

    let (network, dataset) = build_inputs();
    let dir = tmp_dir("read-only");
    let built = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .build();
    built.save_snapshot(&dir).expect("save snapshot");
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        std::fs::set_permissions(entry.path(), std::fs::Permissions::from_mode(0o444)).unwrap();
    }

    let reopened = ReachabilityEngine::open_snapshot(&dir, network.clone())
        .expect("read-only snapshot must open");
    let q = squery_suite(network.bounds().center())[0];
    let a = built.s_query(&q, Algorithm::SqmbTbs);
    let b = reopened.s_query(&q, Algorithm::SqmbTbs);
    assert_eq!(a.region.segments, b.region.segments);

    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        std::fs::set_permissions(entry.path(), std::fs::Permissions::from_mode(0o644)).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Re-saving over an existing snapshot directory stages and renames, so the
/// directory always holds a complete, openable snapshot.
#[test]
fn resave_over_existing_snapshot_keeps_it_openable() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("resave");
    let built = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .build();
    built.save_snapshot(&dir).expect("first save");
    built.save_snapshot(&dir).expect("re-save over existing");
    // No stale staging files are left behind.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().all(|n| !n.ends_with(".tmp")),
        "staging files left behind: {names:?}"
    );
    let reopened = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open");
    assert_eq!(built.st_index().stats(), reopened.st_index().stats());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_rejects_a_different_network() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("wrong-network");
    streach::core::EngineBuilder::new(network, &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");

    let other = Arc::new(
        SyntheticCity::generate(GeneratorConfig {
            seed: 4242,
            ..GeneratorConfig::small()
        })
        .network,
    );
    match ReachabilityEngine::open_snapshot(&dir, other) {
        Err(StorageError::Corrupt { context }) => {
            assert!(context.contains("different road network"), "{context}")
        }
        Err(e) => panic!("expected network-mismatch rejection, got {e}"),
        Ok(_) => panic!("a snapshot must not open against a different network"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_snapshot_directory_is_an_io_error() {
    let network = Arc::new(SyntheticCity::generate(GeneratorConfig::small()).network);
    let missing = tmp_dir("does-not-exist");
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&missing, network),
        Err(StorageError::Io(_))
    ));
}

/// Corruption matrix: one flipped byte in **every named section** of
/// `index.snap` (plus the magic, version, section count and trailing seal)
/// and in a sampled sweep of `postings.pages` offsets must each be rejected
/// at open with a descriptive `StorageError::Corrupt` — no flipped byte
/// anywhere in a snapshot may ever reach query processing.
#[test]
fn corruption_matrix_every_container_section_and_sampled_page_bytes() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("corruption-matrix");
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");

    let container = dir.join(streach::core::snapshot::CONTAINER_FILE);
    let clean = std::fs::read(&container).unwrap();

    // Walk the documented container layout (magic, version, count, then
    // [name_len u16][name][payload_len u64][payload crc u32][payload]) to
    // find one byte inside every section's payload and header.
    let mut targets: Vec<(String, usize)> = vec![
        ("magic".into(), 2),
        ("version".into(), 8),
        ("section-count".into(), 12),
        ("file-seal".into(), clean.len() - 2),
    ];
    let section_count = u32::from_le_bytes(clean[12..16].try_into().unwrap()) as usize;
    let mut cursor = 16usize;
    for _ in 0..section_count {
        let name_len = u16::from_le_bytes(clean[cursor..cursor + 2].try_into().unwrap()) as usize;
        let name = String::from_utf8(clean[cursor + 2..cursor + 2 + name_len].to_vec()).unwrap();
        let payload_len = u64::from_le_bytes(
            clean[cursor + 2 + name_len..cursor + 10 + name_len]
                .try_into()
                .unwrap(),
        ) as usize;
        let payload_start = cursor + 14 + name_len;
        // One byte in the section header (its CRC field) and, for non-empty
        // sections, one byte in the middle of the payload.
        targets.push((format!("{name}:header-crc"), cursor + 10 + name_len));
        if payload_len > 0 {
            targets.push((format!("{name}:payload"), payload_start + payload_len / 2));
        }
        cursor = payload_start + payload_len;
    }
    let known: Vec<&str> = targets.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "config:payload",
        "network:payload",
        "pages_meta:payload",
        "st_index:payload",
        "speed_stats:payload",
        "con_tables:payload",
    ] {
        assert!(
            known.contains(&expected),
            "container is missing section target {expected} (found {known:?})"
        );
    }

    for (name, offset) in targets {
        let mut bad = clean.clone();
        bad[offset] ^= 0x20;
        std::fs::write(&container, &bad).unwrap();
        match ReachabilityEngine::open_snapshot(&dir, network.clone()) {
            Err(StorageError::Corrupt { context }) => assert!(
                !context.is_empty(),
                "corruption in {name} must come with a description"
            ),
            Err(StorageError::UnsupportedVersion { .. }) if name == "version" => {}
            Err(e) => panic!("corruption in {name} (offset {offset}): unexpected error {e}"),
            Ok(_) => panic!("corruption in {name} (offset {offset}) was not rejected"),
        }
    }
    std::fs::write(&container, &clean).unwrap();

    // The page file: a flipped byte at a spread of offsets (page starts,
    // mid-page, page ends, EOF) is caught by the pages CRC pinned in the
    // container.
    let pages = dir.join(streach::core::snapshot::PAGES_FILE);
    let clean_pages = std::fs::read(&pages).unwrap();
    let n = clean_pages.len();
    let page = streach::storage::PAGE_SIZE;
    let mut offsets: Vec<usize> = vec![0, 1, page - 1, page, page + page / 2, n / 2, n - 1];
    for k in 1..8 {
        offsets.push((k * n / 8 / page) * page + (k * 97) % page);
    }
    offsets.retain(|&o| o < n);
    offsets.sort_unstable();
    offsets.dedup();
    for offset in offsets {
        let mut bad = clean_pages.clone();
        bad[offset] ^= 0x01;
        std::fs::write(&pages, &bad).unwrap();
        match ReachabilityEngine::open_snapshot(&dir, network.clone()) {
            Err(StorageError::Corrupt { context }) => assert!(
                context.contains("checksum") || context.contains("corrupt"),
                "page flip at {offset}: undescriptive error: {context}"
            ),
            Err(e) => panic!("page flip at {offset}: unexpected error {e}"),
            Ok(_) => panic!("page flip at offset {offset} was not rejected at open"),
        }
    }
    std::fs::write(&pages, &clean_pages).unwrap();
    assert!(
        ReachabilityEngine::open_snapshot(&dir, network).is_ok(),
        "restored snapshot must open again"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = streach::storage::Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

/// Dense flip sweep over the compressed posting heap: the default encoding
/// is delta/varint, so `postings.pages` holds compressed blobs — a flipped
/// byte inside one must surface as `Corrupt` at open (the container pins
/// the page file's CRC), never as a silently shorter or shifted list.
/// (Decode-level strictness *past* the CRC — torn pages handed straight to
/// the decoder — is pinned by the storage unit suite and the torn-page
/// fault campaign.)
#[test]
fn flips_inside_compressed_blobs_surface_as_corrupt() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("compressed-flips");
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");

    // The saved container is the current version: tagged compressed heaps.
    let container = std::fs::read(dir.join(streach::core::snapshot::CONTAINER_FILE)).unwrap();
    assert_eq!(
        u32::from_le_bytes(container[8..12].try_into().unwrap()),
        streach::storage::SNAPSHOT_VERSION,
        "a fresh save must write the current container version"
    );

    let pages = dir.join(streach::core::snapshot::PAGES_FILE);
    let clean_pages = std::fs::read(&pages).unwrap();
    let n = clean_pages.len();
    // 64 deterministic offsets spread over the whole heap, hitting blob
    // interiors (tag bytes, varint counts, gap streams) rather than page
    // boundaries only.
    for k in 0..64usize {
        let offset = (k * n / 64 + (k * 131) % 523) % n;
        for mask in [0x01u8, 0x80] {
            let mut bad = clean_pages.clone();
            bad[offset] ^= mask;
            std::fs::write(&pages, &bad).unwrap();
            match ReachabilityEngine::open_snapshot(&dir, network.clone()) {
                Err(StorageError::Corrupt { .. }) => {}
                Err(e) => panic!("flip {mask:#04x} at {offset}: unexpected error {e}"),
                Ok(_) => panic!("flip {mask:#04x} at offset {offset} was not rejected"),
            }
        }
    }
    std::fs::write(&pages, &clean_pages).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Backward compatibility: a version-4 snapshot — the v5 layout minus the
/// optional `shard_map` / `road_network` sections, which a plain save does
/// not write — still opens and answers bit-identically. Synthesized by
/// rewriting a fresh container's version field and resealing.
#[test]
fn v4_snapshot_still_opens_and_answers_identically() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("v4-compat");
    let center = network.bounds().center();
    let built = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .build();
    built.save_snapshot(&dir).expect("save snapshot");

    let container_path = dir.join(streach::core::snapshot::CONTAINER_FILE);
    let clean = std::fs::read(&container_path).unwrap();
    assert_eq!(
        u32::from_le_bytes(clean[8..12].try_into().unwrap()),
        streach::storage::SNAPSHOT_VERSION,
        "a fresh save must write the current container version"
    );
    let mut v4 = clean.clone();
    v4[8..12].copy_from_slice(&4u32.to_le_bytes());
    let body_len = v4.len() - 4;
    let seal = crc32(&v4[..body_len]);
    v4[body_len..].copy_from_slice(&seal.to_le_bytes());
    std::fs::write(&container_path, &v4).unwrap();

    let reopened =
        ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("v4 snapshot must open");
    for (i, q) in squery_suite(center).iter().enumerate() {
        let a = built.s_query(q, Algorithm::SqmbTbs);
        let b = reopened.s_query(q, Algorithm::SqmbTbs);
        assert_eq!(
            a.region.segments, b.region.segments,
            "query #{i}: v4 reopen diverged"
        );
        assert_eq!(
            a.region.total_length_km.to_bits(),
            b.region.total_length_km.to_bits(),
            "query #{i}: v4 reopen length diverged"
        );
    }
    // A v4 snapshot predates embedded networks, so a standalone open must
    // fail with a descriptive error instead of a panic or a half-open.
    match ReachabilityEngine::open_snapshot_standalone(&dir) {
        Err(StorageError::Corrupt { context }) => assert!(
            context.contains("road_network"),
            "standalone rejection must name the missing section: {context}"
        ),
        Err(e) => panic!("expected missing-section rejection, got {e}"),
        Ok(_) => panic!("a snapshot without an embedded network must not open standalone"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The v5 optional sections round-trip: a self-contained **sharded**
/// snapshot reopens standalone (network decoded from the container, shard
/// ownership restored) and answers bit-identically to the built engine.
#[test]
fn self_contained_sharded_snapshot_reopens_standalone() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("self-contained-shard");
    let center = network.bounds().center();
    let map = Arc::new(ShardMap::partition(&network, 2));
    let built = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .shard(map.clone(), 1)
        .build();
    built
        .save_snapshot_self_contained(&dir)
        .expect("save self-contained sharded snapshot");

    // No network object, no dataset: the snapshot directory is enough.
    let reopened =
        ReachabilityEngine::open_snapshot_standalone(&dir).expect("standalone open must work");
    let (owned_map, shard_id) = reopened
        .shard_ownership()
        .expect("shard ownership must survive the round-trip");
    assert_eq!(shard_id, 1);
    assert_eq!(owned_map.as_ref(), map.as_ref());
    assert_eq!(
        reopened.network().num_segments(),
        network.num_segments(),
        "embedded network must decode to the same segmentation"
    );

    for (i, q) in squery_suite(center).iter().enumerate() {
        let a = built.s_query(q, Algorithm::SqmbTbs);
        let b = reopened.s_query(q, Algorithm::SqmbTbs);
        assert_eq!(
            a.region.segments, b.region.segments,
            "query #{i}: standalone reopen diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The mmap backend must be a pure read-path substitution: same snapshot,
/// same queries, bit-identical regions and lengths — and the per-query
/// decode accounting shows the compressed heap being expanded.
#[test]
fn mmap_backend_answers_bit_identically_to_file_backend() {
    use streach::storage::StorageBackend;

    let (network, dataset) = build_inputs();
    let dir = tmp_dir("mmap-vs-file");
    let center = network.bounds().center();
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save snapshot");

    let file =
        ReachabilityEngine::open_snapshot_with_backend(&dir, network.clone(), StorageBackend::File)
            .expect("open with file backend");
    let mmap =
        ReachabilityEngine::open_snapshot_with_backend(&dir, network.clone(), StorageBackend::Mmap)
            .expect("open with mmap backend");

    for (i, q) in squery_suite(center).iter().enumerate() {
        for algo in [Algorithm::SqmbTbs, Algorithm::ExhaustiveSearch] {
            let a = file.s_query(q, algo);
            let b = mmap.s_query(q, algo);
            assert_eq!(
                a.region.segments, b.region.segments,
                "query #{i} ({algo:?}): mmap region diverged from file"
            );
            assert_eq!(
                a.region.total_length_km.to_bits(),
                b.region.total_length_km.to_bits(),
                "query #{i} ({algo:?}): mmap length diverged from file"
            );
        }
    }

    // The default heap is compressed: the verifier's decode accounting must
    // show more decoded (fixed-width-equivalent) bytes than resident bytes.
    let io = mmap.st_index().io_stats().snapshot();
    assert!(
        io.bytes_resident > 0 && io.bytes_decoded > io.bytes_resident,
        "decode accounting must observe the compression win \
         (decoded {} vs resident {})",
        io.bytes_decoded,
        io.bytes_resident
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Backward compatibility: a genuine version-3 snapshot — untagged
/// fixed-width posting heap, 48-byte config section, version field 3 —
/// still opens and answers bit-identically. Synthesized by saving with the
/// legacy-raw encoding (whose heap bytes *are* the v3 heap format) and
/// rewriting the container to the v3 layout, resealing every checksum.
#[test]
fn v3_snapshot_still_opens_and_answers_identically() {
    let (network, dataset) = build_inputs();
    let dir = tmp_dir("v3-compat");
    let center = network.bounds().center();
    let built = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            posting_encoding: streach::storage::PostingEncoding::LegacyRaw,
            ..config()
        })
        .build();
    built.save_snapshot(&dir).expect("save snapshot");

    // Rewrite the container: version 4 → 3, config payload 50 → 48 bytes
    // (dropping the storage_backend/posting_encoding bytes v3 predates).
    let container_path = dir.join(streach::core::snapshot::CONTAINER_FILE);
    let clean = std::fs::read(&container_path).unwrap();
    let mut v3: Vec<u8> = Vec::with_capacity(clean.len());
    v3.extend_from_slice(&clean[..8]); // magic
    v3.extend_from_slice(&3u32.to_le_bytes()); // version
    v3.extend_from_slice(&clean[12..16]); // section count
    let section_count = u32::from_le_bytes(clean[12..16].try_into().unwrap()) as usize;
    let mut cursor = 16usize;
    for _ in 0..section_count {
        let name_len = u16::from_le_bytes(clean[cursor..cursor + 2].try_into().unwrap()) as usize;
        let name = std::str::from_utf8(&clean[cursor + 2..cursor + 2 + name_len]).unwrap();
        let payload_len = u64::from_le_bytes(
            clean[cursor + 2 + name_len..cursor + 10 + name_len]
                .try_into()
                .unwrap(),
        ) as usize;
        let payload_start = cursor + 14 + name_len;
        let payload = &clean[payload_start..payload_start + payload_len];
        let payload = if name == "config" {
            assert_eq!(payload.len(), 50, "modern config section is 50 bytes");
            &payload[..48]
        } else {
            payload
        };
        v3.extend_from_slice(&clean[cursor..cursor + 2 + name_len]);
        v3.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v3.extend_from_slice(&crc32(payload).to_le_bytes());
        v3.extend_from_slice(payload);
        cursor = payload_start + payload_len;
    }
    let seal = crc32(&v3);
    v3.extend_from_slice(&seal.to_le_bytes());
    std::fs::write(&container_path, &v3).unwrap();

    let reopened =
        ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("v3 snapshot must open");
    assert_eq!(
        reopened.config().posting_encoding,
        streach::storage::PostingEncoding::LegacyRaw,
        "a v3 heap must reopen with the untagged legacy encoding"
    );
    for (i, q) in squery_suite(center).iter().enumerate() {
        let a = built.s_query(q, Algorithm::SqmbTbs);
        let b = reopened.s_query(q, Algorithm::SqmbTbs);
        assert_eq!(
            a.region.segments, b.region.segments,
            "query #{i}: v3 reopen diverged"
        );
    }
    // On a legacy heap decoded == resident: there is no compression to win.
    let io = reopened.st_index().io_stats().snapshot();
    assert!(io.bytes_resident > 0);
    assert_eq!(
        io.bytes_decoded, io.bytes_resident,
        "legacy-raw decode accounting must be 1:1"
    );
    std::fs::remove_dir_all(&dir).ok();
}
