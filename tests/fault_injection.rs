//! Fault-injection campaign over the query pipelines.
//!
//! A reopened snapshot serves queries off a real page file; this suite wraps
//! that store in a [`FaultInjectingPageStore`] and drives **every** query
//! pipeline (SQMB+TBS, ES, MQMB, repeated s-query — single-threaded and
//! parallel) through scripted failures:
//!
//! * an `EIO` at **every distinct posting-read ordinal** of a known query
//!   must surface as a typed [`QueryError::Storage`] — never a panic, never
//!   a silently wrong region — and must leave the engine able to serve the
//!   next fault-free query bit-identically to the baseline;
//! * torn and zeroed pages must either be rejected (strict posting decode)
//!   or leave the result bit-identical — a partial page can never shift a
//!   probability;
//! * seeded probabilistic faults reproduce deterministically, so a failing
//!   run is reproducible from the seed printed in its assertion message
//!   (override with `STREACH_FAULT_SEED`).

use std::path::PathBuf;
use std::sync::Arc;

use streach::prelude::*;
use streach::storage::{FaultController, FaultInjectingPageStore, ReadFault};
use streach_core::query::MQueryAlgorithm;

/// Seed for the fault scripts; override with `STREACH_FAULT_SEED` to
/// reproduce a CI failure locally (every assertion message embeds it).
fn fault_seed() -> u64 {
    std::env::var("STREACH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_728)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small all-day scenario: every pipeline below has live postings to read.
fn build_snapshot(dir: &PathBuf) -> Arc<RoadNetwork> {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 12,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 5,
            ..FleetConfig::default()
        },
    );
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        })
        .save_snapshot(dir)
        .expect("save snapshot");
    network
}

/// Reopens the snapshot with a fault-injection wrapper under the buffer
/// pool, returning the engine and the script controller.
fn reopen_with_faults(
    dir: &PathBuf,
    network: Arc<RoadNetwork>,
    seed: u64,
) -> (ReachabilityEngine, FaultController) {
    let mut controller = None;
    let engine = ReachabilityEngine::open_snapshot_with_store(dir, network, |store| {
        let faulty = FaultInjectingPageStore::with_seed(store, seed);
        controller = Some(faulty.controller());
        Box::new(faulty)
    })
    .expect("open snapshot with fault wrapper");
    (engine, controller.expect("wrapper installed"))
}

/// What a pipeline run yields: the region's segments, or the error.
type RunResult = Result<Vec<SegmentId>, QueryError>;

/// One query pipeline under test.
struct Pipeline {
    name: &'static str,
    run: Box<dyn Fn(&ReachabilityEngine) -> RunResult>,
}

fn pipelines(center: GeoPoint) -> Vec<Pipeline> {
    let s_query = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 300,
        prob: 0.25,
    };
    let m_query = MQuery {
        locations: vec![center, center.offset_m(900.0, -600.0)],
        start_time_s: 9 * 3600,
        duration_s: 300,
        prob: 0.25,
    };
    vec![
        Pipeline {
            name: "sqmb_tbs",
            run: Box::new(move |e| {
                e.try_s_query(&s_query, Algorithm::SqmbTbs)
                    .map(|o| o.region.segments)
            }),
        },
        Pipeline {
            name: "es",
            run: Box::new(move |e| {
                e.try_s_query(&s_query, Algorithm::ExhaustiveSearch)
                    .map(|o| o.region.segments)
            }),
        },
        Pipeline {
            name: "mqmb",
            run: Box::new({
                let m = m_query.clone();
                move |e| {
                    e.try_m_query(&m, MQueryAlgorithm::MqmbTbs)
                        .map(|o| o.region.segments)
                }
            }),
        },
        Pipeline {
            name: "repeated_squery",
            run: Box::new(move |e| {
                e.try_m_query(&m_query, MQueryAlgorithm::RepeatedSQuery)
                    .map(|o| o.region.segments)
            }),
        },
    ]
}

/// The core campaign: for every pipeline and for both the single-threaded
/// and the parallel verification paths, fail each distinct posting-read
/// ordinal of the query with an `EIO` and assert a typed storage error plus
/// full engine usability afterwards.
#[test]
fn eio_at_every_posting_read_ordinal_yields_typed_error_and_engine_survives() {
    let seed = fault_seed();
    let dir = tmp_dir("eio-campaign");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let (engine, ctl) = reopen_with_faults(&dir, network, seed);

    for workers in [1usize, 4] {
        streach_par::with_worker_override(workers, || {
            for pipeline in pipelines(center) {
                let name = pipeline.name;
                // Baseline: fault-free, cold cache — counts the distinct
                // posting-page reads this query performs.
                ctl.clear();
                engine.st_index().clear_cache();
                let before = ctl.reads_observed();
                let baseline = (pipeline.run)(&engine).unwrap_or_else(|e| {
                    panic!("[seed {seed}] {name}/w{workers}: fault-free baseline failed: {e}")
                });
                let reads = ctl.reads_observed() - before;
                assert!(
                    reads > 0,
                    "[seed {seed}] {name}/w{workers}: query must read postings"
                );

                for ordinal in 0..reads {
                    // Script: the (ordinal)-th physical read of this run
                    // fails with EIO.
                    engine.st_index().clear_cache();
                    ctl.fail_read_at(ctl.reads_observed() + ordinal, ReadFault::Eio);
                    match (pipeline.run)(&engine) {
                        Err(QueryError::Storage { page, context }) => {
                            assert!(
                                page.is_some(),
                                "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                                 storage error must carry the faulting page id ({context})"
                            );
                            assert!(
                                context.contains("injected EIO"),
                                "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                                 context must surface the backend failure, got: {context}"
                            );
                        }
                        Err(other) => panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             expected QueryError::Storage, got {other}"
                        ),
                        Ok(_) => panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             a failed posting read must not produce a region"
                        ),
                    }
                    // The engine stays usable: the next fault-free query
                    // answers bit-identically to the baseline.
                    ctl.clear();
                    engine.st_index().clear_cache();
                    let after = (pipeline.run)(&engine).unwrap_or_else(|e| {
                        panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             engine unusable after fault: {e}"
                        )
                    });
                    assert_eq!(
                        after, baseline,
                        "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                         post-fault region diverged from the baseline"
                    );
                }
            }
        });
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn and zeroed pages under range-valid handles: the strict posting
/// decode must reject the damage (typed error) or — when the damaged half
/// holds no byte of the postings actually read — leave the result
/// bit-identical. A silently different region is the one outcome that must
/// never happen.
#[test]
fn torn_and_zeroed_pages_never_shift_a_region() {
    let seed = fault_seed();
    let dir = tmp_dir("torn-pages");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let (engine, ctl) = reopen_with_faults(&dir, network, seed);

    for pipeline in pipelines(center) {
        let name = pipeline.name;
        ctl.clear();
        engine.st_index().clear_cache();
        let before = ctl.reads_observed();
        let baseline = (pipeline.run)(&engine).expect("fault-free baseline");
        let reads = ctl.reads_observed() - before;

        let mut rejected = 0usize;
        for (fault, label) in [
            (ReadFault::TornPage, "torn"),
            (ReadFault::ZeroedPage, "zeroed"),
        ] {
            for ordinal in 0..reads {
                engine.st_index().clear_cache();
                ctl.fail_read_at(ctl.reads_observed() + ordinal, fault);
                match (pipeline.run)(&engine) {
                    Err(QueryError::Storage { .. }) => rejected += 1,
                    Err(other) => panic!(
                        "[seed {seed}] {name} {label} page at read #{ordinal}: \
                         expected QueryError::Storage, got {other}"
                    ),
                    Ok(region) => assert_eq!(
                        region, baseline,
                        "[seed {seed}] {name} {label} page at read #{ordinal}: \
                         SILENTLY WRONG REGION — corrupt posting bytes were used"
                    ),
                }
                ctl.clear();
            }
        }
        assert!(
            rejected > 0,
            "[seed {seed}] {name}: at least one torn/zeroed page must hit \
             live posting bytes and be rejected by the strict decode"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded probabilistic faults: under a p=0.08 EIO rate every outcome is
/// either a typed storage error or the exact baseline region, and the
/// engine keeps serving across the whole storm.
#[test]
fn probabilistic_fault_storm_degrades_gracefully_and_deterministically() {
    let seed = fault_seed();
    let dir = tmp_dir("fault-storm");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let (engine, ctl) = reopen_with_faults(&dir, network, seed);

    let pipeline = &pipelines(center)[0]; // SQMB+TBS, the paper's main path
    engine.st_index().clear_cache();
    let baseline = (pipeline.run)(&engine).expect("fault-free baseline");

    ctl.set_read_fault_probability(0.08);
    let outcomes: Vec<bool> = (0..40)
        .map(|round| {
            engine.st_index().clear_cache();
            match (pipeline.run)(&engine) {
                Ok(region) => {
                    assert_eq!(
                        region, baseline,
                        "[seed {seed}] storm round {round}: surviving query diverged"
                    );
                    true
                }
                Err(QueryError::Storage { .. }) => false,
                Err(other) => {
                    panic!("[seed {seed}] storm round {round}: unexpected error {other}")
                }
            }
        })
        .collect();
    assert!(
        outcomes.iter().any(|ok| *ok) && outcomes.iter().any(|ok| !ok),
        "[seed {seed}] p=0.08 over 40 queries should both fail and succeed \
         (got {} successes)",
        outcomes.iter().filter(|ok| **ok).count()
    );

    // After the storm: clean service, bit-identical to the baseline.
    ctl.clear();
    engine.st_index().clear_cache();
    assert_eq!((pipeline.run)(&engine).expect("post-storm query"), baseline);
    std::fs::remove_dir_all(&dir).ok();
}
