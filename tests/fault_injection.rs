//! Fault-injection campaign over the query and ingest pipelines.
//!
//! A reopened snapshot serves queries off a real page file; this suite wraps
//! that store in a [`FaultInjectingPageStore`] and drives **every** query
//! pipeline (SQMB+TBS, ES, MQMB, repeated s-query — single-threaded and
//! parallel) through scripted failures:
//!
//! * a **transient** `EIO` at every distinct posting-read ordinal of a
//!   known query is absorbed by the buffer pool's bounded retry — the
//!   query answers bit-identically and the caller never sees the fault;
//! * a **persistent** `EIO` from any ordinal onward exhausts the retry
//!   budget and surfaces as a typed [`QueryError::Storage`] (annotated
//!   with the attempt count) — never a panic, never a silently wrong
//!   region — and leaves the engine able to serve the next fault-free
//!   query bit-identically to the baseline;
//! * torn and zeroed pages must either be rejected (strict posting decode)
//!   or leave the result bit-identical — a partial page can never shift a
//!   probability;
//! * seeded probabilistic faults reproduce deterministically, so a failing
//!   run is reproducible from the seed printed in its assertion message
//!   (override with `STREACH_FAULT_SEED`).
//!
//! The campaign runs against both sealed-page backends: CI sets
//! `STREACH_STORE_BACKEND={file,mmap}` to serve the snapshot's page files
//! through buffered file reads or the read-only memory mapping — the fault
//! wrapper sits *on top* of either backend, so torn/zeroed/EIO scripting
//! covers the mmap read path too (unset = the backend recorded in the
//! snapshot config).
//!
//! The streaming-ingest subsystem gets its own crash-recovery campaign:
//! a torn WAL append ("kill") at **every record ordinal**, reopen, assert
//! the consistent prefix; plus delta-heap write faults at every page-write
//! ordinal of an ingest batch and persistent delta read faults under live
//! queries.
//!
//! The online-maintenance campaigns extend the crash story to background
//! work: EIO / torn appends at every attempt ordinal **while a
//! [`MaintenanceController`] owns the checkpoints**, a compaction that
//! fails mid-copy (old base keeps serving, retry succeeds), and a
//! multi-writer group-commit fsync failure (the applied prefix freezes for
//! every record in the group; replay after reopen converges idempotently).

use std::path::PathBuf;
use std::sync::Arc;

use streach::prelude::*;
use streach::storage::{AppendFault, FaultController, FaultInjectingPageStore, ReadFault};
use streach_core::query::MQueryAlgorithm;
use streach_core::{MaintenanceConfig, MaintenanceController, StoreRole};

/// Seed for the fault scripts; override with `STREACH_FAULT_SEED` to
/// reproduce a CI failure locally (every assertion message embeds it).
fn fault_seed() -> u64 {
    std::env::var("STREACH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_728)
}

/// Sealed-page backend override for the campaign matrix: CI runs the suite
/// once per `STREACH_STORE_BACKEND` value; unset uses the backend recorded
/// in the snapshot config.
fn store_backend() -> Option<streach::storage::StorageBackend> {
    std::env::var("STREACH_STORE_BACKEND").ok().map(|s| {
        s.parse()
            .expect("STREACH_STORE_BACKEND must be `file` or `mmap`")
    })
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small all-day scenario: every pipeline below has live postings to
/// read. `read_retries` is persisted in the snapshot's config, so the
/// reopened engine inherits it.
fn build_snapshot_with_retries(dir: &PathBuf, read_retries: u32) -> Arc<RoadNetwork> {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 12,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 5,
            ..FleetConfig::default()
        },
    );
    streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            read_retries,
            ..Default::default()
        })
        .save_snapshot(dir)
        .expect("save snapshot");
    network
}

fn build_snapshot(dir: &PathBuf) -> Arc<RoadNetwork> {
    build_snapshot_with_retries(dir, IndexConfig::default().read_retries)
}

/// A later fleet (dates 3..5) over the same network, flattened into ingest
/// batches — one batch per trajectory, in a deterministic order.
fn extra_batches(network: &Arc<RoadNetwork>) -> Vec<Vec<TrajPoint>> {
    let extra = TrajectoryDataset::simulate(
        network,
        FleetConfig {
            num_taxis: 6,
            num_days: 2,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 99,
            ..FleetConfig::default()
        },
    );
    extra
        .trajectories()
        .iter()
        .map(|traj| {
            points_of(traj)
                .map(|mut p| {
                    // Shift onto days after the base dataset's 0..3.
                    p.date += 3;
                    p
                })
                .collect()
        })
        .collect()
}

/// Reopens the snapshot with a fault-injection wrapper under the buffer
/// pool, returning the engine and the script controller. The base heap is
/// served through the `STREACH_STORE_BACKEND` backend when set, so the
/// whole campaign exercises the file and mmap read paths alike.
fn reopen_with_faults(
    dir: &PathBuf,
    network: Arc<RoadNetwork>,
    seed: u64,
) -> (ReachabilityEngine, FaultController) {
    let mut controller = None;
    let engine = ReachabilityEngine::open_snapshot_with_stores_and_backend(
        dir,
        network,
        store_backend(),
        |role, store| match role {
            StoreRole::Base => {
                let faulty = FaultInjectingPageStore::with_seed(store, seed);
                controller = Some(faulty.controller());
                Box::new(faulty)
            }
            StoreRole::Delta => store,
        },
    )
    .expect("open snapshot with fault wrapper");
    (engine, controller.expect("wrapper installed"))
}

/// What a pipeline run yields: the region's segments, or the error.
type RunResult = Result<Vec<SegmentId>, QueryError>;

/// One query pipeline under test.
struct Pipeline {
    name: &'static str,
    run: Box<dyn Fn(&ReachabilityEngine) -> RunResult>,
}

fn pipelines(center: GeoPoint) -> Vec<Pipeline> {
    let s_query = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 300,
        prob: 0.25,
    };
    let m_query = MQuery {
        locations: vec![center, center.offset_m(900.0, -600.0)],
        start_time_s: 9 * 3600,
        duration_s: 300,
        prob: 0.25,
    };
    vec![
        Pipeline {
            name: "sqmb_tbs",
            run: Box::new(move |e| {
                e.try_s_query(&s_query, Algorithm::SqmbTbs)
                    .map(|o| o.region.segments)
            }),
        },
        Pipeline {
            name: "es",
            run: Box::new(move |e| {
                e.try_s_query(&s_query, Algorithm::ExhaustiveSearch)
                    .map(|o| o.region.segments)
            }),
        },
        Pipeline {
            name: "mqmb",
            run: Box::new({
                let m = m_query.clone();
                move |e| {
                    e.try_m_query(&m, MQueryAlgorithm::MqmbTbs)
                        .map(|o| o.region.segments)
                }
            }),
        },
        Pipeline {
            name: "repeated_squery",
            run: Box::new(move |e| {
                e.try_m_query(&m_query, MQueryAlgorithm::RepeatedSQuery)
                    .map(|o| o.region.segments)
            }),
        },
    ]
}

/// The core campaign, for every pipeline on both the single-threaded and
/// the parallel verification paths, at each distinct posting-read ordinal
/// of the query:
///
/// * a **one-shot** `EIO` is absorbed by the automatic bounded-backoff
///   retry — the query succeeds bit-identically and pays exactly one extra
///   physical attempt;
/// * a **persistent** `EIO` (dead disk from that ordinal on) exhausts the
///   budget and surfaces as a typed storage error annotated with the
///   attempt count, after which the engine serves the baseline again.
#[test]
fn eio_at_every_posting_read_ordinal_yields_typed_error_and_engine_survives() {
    let seed = fault_seed();
    let dir = tmp_dir("eio-campaign");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let (engine, ctl) = reopen_with_faults(&dir, network, seed);
    let budget = engine.config().read_retries;
    assert!(budget > 0, "campaign requires the default retry budget");

    for workers in [1usize, 4] {
        streach_par::with_worker_override(workers, || {
            for pipeline in pipelines(center) {
                let name = pipeline.name;
                // Baseline: fault-free, cold cache — counts the distinct
                // posting-page reads this query performs.
                ctl.clear();
                engine.st_index().clear_cache();
                let before = ctl.reads_observed();
                let baseline = (pipeline.run)(&engine).unwrap_or_else(|e| {
                    panic!("[seed {seed}] {name}/w{workers}: fault-free baseline failed: {e}")
                });
                let reads = ctl.reads_observed() - before;
                assert!(
                    reads > 0,
                    "[seed {seed}] {name}/w{workers}: query must read postings"
                );

                // Release CI sweeps every ordinal; debug builds (tier-1
                // `cargo test`) sample every other one to stay inside the
                // pre-retry campaign's time budget.
                let step = if cfg!(debug_assertions) { 2 } else { 1 };
                for ordinal in (0..reads).step_by(step) {
                    // (a) One-shot EIO at this ordinal: the retry absorbs
                    // it — same region, one extra physical attempt, no
                    // error surfaces.
                    engine.st_index().clear_cache();
                    let run_start = ctl.reads_observed();
                    ctl.fail_read_at(run_start + ordinal, ReadFault::Eio);
                    let absorbed = (pipeline.run)(&engine).unwrap_or_else(|e| {
                        panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             a one-shot EIO must be absorbed by the retry, got {e}"
                        )
                    });
                    assert_eq!(
                        absorbed, baseline,
                        "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                         retried query diverged from the baseline"
                    );
                    assert!(
                        ctl.reads_observed() - run_start > reads,
                        "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                         absorbing the fault must cost an extra physical attempt"
                    );

                    // (b) Dead disk from this ordinal on: the budget is
                    // exhausted and a typed error names the page, the
                    // backend failure and the attempts made.
                    engine.st_index().clear_cache();
                    ctl.fail_reads_from(ctl.reads_observed() + ordinal);
                    match (pipeline.run)(&engine) {
                        Err(QueryError::Storage { page, context }) => {
                            assert!(
                                page.is_some(),
                                "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                                 storage error must carry the faulting page id ({context})"
                            );
                            assert!(
                                context.contains("injected EIO"),
                                "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                                 context must surface the backend failure, got: {context}"
                            );
                            assert!(
                                context.contains(&format!("after {} attempts", budget + 1)),
                                "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                                 context must surface the exhausted retry budget, got: {context}"
                            );
                        }
                        Err(other) => panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             expected QueryError::Storage, got {other}"
                        ),
                        Ok(_) => panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             a dead disk must not produce a region"
                        ),
                    }
                    // The engine stays usable: the next fault-free query
                    // answers bit-identically to the baseline.
                    ctl.clear();
                    engine.st_index().clear_cache();
                    let after = (pipeline.run)(&engine).unwrap_or_else(|e| {
                        panic!(
                            "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                             engine unusable after fault: {e}"
                        )
                    });
                    assert_eq!(
                        after, baseline,
                        "[seed {seed}] {name}/w{workers} read #{ordinal}: \
                         post-fault region diverged from the baseline"
                    );
                }
            }
        });
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn and zeroed pages under range-valid handles: the strict posting
/// decode must reject the damage (typed error) or — when the damaged half
/// holds no byte of the postings actually read — leave the result
/// bit-identical. A silently different region is the one outcome that must
/// never happen.
#[test]
fn torn_and_zeroed_pages_never_shift_a_region() {
    let seed = fault_seed();
    let dir = tmp_dir("torn-pages");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let (engine, ctl) = reopen_with_faults(&dir, network, seed);

    for pipeline in pipelines(center) {
        let name = pipeline.name;
        ctl.clear();
        engine.st_index().clear_cache();
        let before = ctl.reads_observed();
        let baseline = (pipeline.run)(&engine).expect("fault-free baseline");
        let reads = ctl.reads_observed() - before;

        let mut rejected = 0usize;
        for (fault, label) in [
            (ReadFault::TornPage, "torn"),
            (ReadFault::ZeroedPage, "zeroed"),
        ] {
            for ordinal in 0..reads {
                engine.st_index().clear_cache();
                ctl.fail_read_at(ctl.reads_observed() + ordinal, fault);
                match (pipeline.run)(&engine) {
                    Err(QueryError::Storage { .. }) => rejected += 1,
                    Err(other) => panic!(
                        "[seed {seed}] {name} {label} page at read #{ordinal}: \
                         expected QueryError::Storage, got {other}"
                    ),
                    Ok(region) => assert_eq!(
                        region, baseline,
                        "[seed {seed}] {name} {label} page at read #{ordinal}: \
                         SILENTLY WRONG REGION — corrupt posting bytes were used"
                    ),
                }
                ctl.clear();
            }
        }
        assert!(
            rejected > 0,
            "[seed {seed}] {name}: at least one torn/zeroed page must hit \
             live posting bytes and be rejected by the strict decode"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded probabilistic faults: under a p=0.08 EIO rate every outcome is
/// either a typed storage error or the exact baseline region, and the
/// engine keeps serving across the whole storm. Retries are disabled via
/// the snapshot's config so the storm hits the error path at full rate —
/// the retry-enabled behaviour is covered by the ordinal campaign.
#[test]
fn probabilistic_fault_storm_degrades_gracefully_and_deterministically() {
    let seed = fault_seed();
    let dir = tmp_dir("fault-storm");
    let network = build_snapshot_with_retries(&dir, 0);
    let center = network.bounds().center();
    let (engine, ctl) = reopen_with_faults(&dir, network, seed);

    let pipeline = &pipelines(center)[0]; // SQMB+TBS, the paper's main path
    engine.st_index().clear_cache();
    let baseline = (pipeline.run)(&engine).expect("fault-free baseline");

    ctl.set_read_fault_probability(0.08);
    let outcomes: Vec<bool> = (0..40)
        .map(|round| {
            engine.st_index().clear_cache();
            match (pipeline.run)(&engine) {
                Ok(region) => {
                    assert_eq!(
                        region, baseline,
                        "[seed {seed}] storm round {round}: surviving query diverged"
                    );
                    true
                }
                Err(QueryError::Storage { .. }) => false,
                Err(other) => {
                    panic!("[seed {seed}] storm round {round}: unexpected error {other}")
                }
            }
        })
        .collect();
    assert!(
        outcomes.iter().any(|ok| *ok) && outcomes.iter().any(|ok| !ok),
        "[seed {seed}] p=0.08 over 40 queries should both fail and succeed \
         (got {} successes)",
        outcomes.iter().filter(|ok| **ok).count()
    );

    // After the storm: clean service, bit-identical to the baseline.
    ctl.clear();
    engine.st_index().clear_cache();
    assert_eq!((pipeline.run)(&engine).expect("post-storm query"), baseline);
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs every pipeline and collects its region — the comparison unit of the
/// ingest campaigns below.
fn all_regions(engine: &ReachabilityEngine, center: GeoPoint) -> Vec<(String, Vec<SegmentId>)> {
    pipelines(center)
        .iter()
        .map(|p| {
            (
                p.name.to_string(),
                (p.run)(engine).unwrap_or_else(|e| panic!("{}: {e}", p.name)),
            )
        })
        .collect()
}

/// The ingest crash-recovery campaign: "kill" the process (torn WAL append)
/// at **every record ordinal** of a batch sequence, reopen the snapshot,
/// re-attach the WAL and assert the engine recovered exactly the consistent
/// prefix — bit-identical, on all four pipelines, to an engine that
/// ingested precisely those batches.
#[test]
fn ingest_crash_at_every_wal_record_ordinal_recovers_the_consistent_prefix() {
    let seed = fault_seed();
    let dir = tmp_dir("ingest-crash");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let batches = extra_batches(&network);
    let kill_points = batches.len().min(4); // keep the reopen loop bounded

    for k in 0..kill_points {
        let wal_path = dir.join(format!("crash-{k}.wal"));
        let _ = std::fs::remove_file(&wal_path);
        let ctl = FaultController::detached(seed);
        ctl.fail_append_at(k as u64, AppendFault::TornAppend);

        // The "process": ingests until the injected crash kills its WAL.
        let engine =
            ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open snapshot");
        engine
            .attach_wal_with_controller(&wal_path, ctl)
            .expect("attach fresh WAL");
        for (i, batch) in batches.iter().enumerate() {
            let outcome = engine.ingest(batch);
            match i.cmp(&k) {
                std::cmp::Ordering::Less => {
                    let outcome = outcome.unwrap_or_else(|e| {
                        panic!("[seed {seed}] kill@{k}: batch {i} must ingest: {e}")
                    });
                    assert_eq!(outcome.wal_ordinal, Some(i as u64));
                }
                std::cmp::Ordering::Equal => {
                    let err = outcome.expect_err("the scripted torn append must fail");
                    assert!(
                        err.to_string().contains("torn WAL append"),
                        "[seed {seed}] kill@{k}: {err}"
                    );
                }
                std::cmp::Ordering::Greater => {
                    assert!(
                        outcome.is_err(),
                        "[seed {seed}] kill@{k}: the dead process must not accept batch {i}"
                    );
                }
            }
        }
        drop(engine);

        // Recovery: reopen the snapshot, attach the torn WAL — the torn
        // frame is truncated, the prefix replays.
        let recovered =
            ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("reopen snapshot");
        let attach = recovered.attach_wal(&wal_path).expect("recover WAL");
        assert_eq!(
            attach.records_replayed, k as u64,
            "[seed {seed}] kill@{k}: exactly the consistent prefix replays"
        );
        assert_eq!(attach.records_skipped, 0, "[seed {seed}] kill@{k}");
        assert!(
            attach.truncated_bytes > 0,
            "[seed {seed}] kill@{k}: the torn frame must be discarded"
        );

        // Reference: a fresh engine that (volatilely) ingested exactly the
        // surviving prefix.
        let reference =
            ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("reference open");
        for batch in &batches[..k] {
            reference.ingest(batch).expect("reference ingest");
        }
        assert_eq!(
            all_regions(&recovered, center),
            all_regions(&reference, center),
            "[seed {seed}] kill@{k}: recovered engine diverged from the prefix reference"
        );
        std::fs::remove_file(&wal_path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Delta-heap write faults: an `EIO` at a spread of page-write ordinals of
/// an ingest batch (first, last, and evenly spaced between — the batch is
/// one trajectory, so the spread covers new-list creation and re-merges)
/// fails the ingest cleanly (typed error, engine keeps serving), and —
/// because the delta merge is idempotent — a clean retry of the same batch
/// converges to the exact pre-fault state.
#[test]
fn delta_write_faults_fail_ingest_cleanly_and_retry_converges() {
    let seed = fault_seed();
    let dir = tmp_dir("delta-write");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let batch: Vec<TrajPoint> = extra_batches(&network).swap_remove(0);

    let mut delta_ctl = None;
    let engine =
        ReachabilityEngine::open_snapshot_with_stores(&dir, network.clone(), |role, store| {
            match role {
                StoreRole::Base => store,
                StoreRole::Delta => {
                    let faulty = FaultInjectingPageStore::with_seed(store, seed);
                    delta_ctl = Some(faulty.controller());
                    Box::new(faulty)
                }
            }
        })
        .expect("open snapshot with delta fault wrapper");
    let ctl = delta_ctl.expect("delta wrapper installed");

    // Clean first ingest: the converged target state, and the write count
    // one application of this batch performs.
    let writes_before = ctl.writes_observed();
    engine.ingest(&batch).expect("clean ingest");
    let writes_per_ingest = ctl.writes_observed() - writes_before;
    assert!(
        writes_per_ingest > 0,
        "[seed {seed}] ingest must write delta pages"
    );
    let target = all_regions(&engine, center);

    let mut ordinals: Vec<u64> = (0..8)
        .map(|i| i * writes_per_ingest.saturating_sub(1) / 7)
        .collect();
    ordinals.dedup();
    for ordinal in ordinals {
        // Re-apply the same batch (idempotent), failing its ordinal-th
        // delta page write.
        ctl.fail_write_at(ctl.writes_observed() + ordinal);
        let err = engine
            .ingest(&batch)
            .expect_err("scripted write fault must fail the ingest");
        assert!(
            err.to_string().contains("injected EIO on write"),
            "[seed {seed}] write #{ordinal}: {err}"
        );
        // The engine keeps serving, then a clean retry converges.
        ctl.clear();
        assert_eq!(
            all_regions(&engine, center),
            target,
            "[seed {seed}] write #{ordinal}: partial ingest must not shift any region"
        );
        engine.ingest(&batch).expect("retry after fault");
        assert_eq!(
            all_regions(&engine, center),
            target,
            "[seed {seed}] write #{ordinal}: retried ingest diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Background-maintenance crash campaign: an `EIO` or a torn WAL append at
/// **every append-attempt ordinal** while a [`MaintenanceController`] owns
/// the checkpoints (kicked after every batch, so rotations race the
/// appends). An `EIO` append is retryable and the engine converges on the
/// full batch set; a torn append kills the "process" — reopening the
/// (checkpoint-mutated) snapshot directory and re-attaching the WAL must
/// recover exactly the acknowledged prefix, bit-identically to a reference
/// engine that ingested precisely those batches.
#[test]
fn wal_faults_under_background_checkpoints_recover_the_consistent_prefix() {
    let seed = fault_seed();
    // The builder engine is saved once per campaign iteration (checkpoints
    // mutate the live directory) plus once for pristine reference opens.
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 12,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 5,
            ..FleetConfig::default()
        },
    );
    let base_engine = streach::core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            // Any delta warrants a checkpoint: every maintenance pass
            // between batches does real checkpoint + rotation work.
            auto_checkpoint_bytes: 1,
            ..Default::default()
        })
        .build();
    let ref_dir = tmp_dir("maint-ref");
    base_engine.save_snapshot(&ref_dir).expect("save reference");
    let batches = extra_batches(&network);
    let center = network.bounds().center();
    let kill_points = batches.len().min(3);
    let mut checkpoints_owned = 0u64;

    for fault in [AppendFault::Eio, AppendFault::TornAppend] {
        for k in 0..kill_points {
            let label = format!("{fault:?}@{k}");
            let dir = tmp_dir(&format!("maint-live-{fault:?}-{k}"));
            base_engine.save_snapshot(&dir).expect("save live dir");
            let ctl = FaultController::detached(seed);
            // Attempt ordinals are stable under rotation, so the k-th
            // ingest's append fails no matter how the racing checkpoints
            // sliced the generations.
            ctl.fail_append_attempt_at(k as u64, fault);

            let engine = Arc::new(
                ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open live"),
            );
            engine
                .attach_wal_with_controller(dir.join("ingest.wal"), ctl)
                .expect("attach WAL");
            let controller = MaintenanceController::spawn(
                Arc::clone(&engine),
                &dir,
                MaintenanceConfig {
                    poll_interval: std::time::Duration::from_millis(5),
                    compact_delta_ratio: Some(0.25),
                    ..Default::default()
                },
            );

            let mut acknowledged = 0usize;
            let mut dead = false;
            for (i, batch) in batches.iter().enumerate() {
                let outcome = engine.ingest(batch);
                match (i.cmp(&(k)), fault, dead) {
                    (_, _, true) => assert!(
                        outcome.is_err(),
                        "[seed {seed}] {label}: the dead process must reject batch {i}"
                    ),
                    (std::cmp::Ordering::Less, _, _) => {
                        outcome.unwrap_or_else(|e| {
                            panic!("[seed {seed}] {label}: batch {i} must ingest: {e}")
                        });
                        acknowledged += 1;
                        // The maintenance thread owns a checkpoint while
                        // the next append (and possibly the crash) lands.
                        controller.kick();
                    }
                    (std::cmp::Ordering::Equal, AppendFault::Eio, _) => {
                        let err = outcome.expect_err("scripted EIO append must fail");
                        assert!(
                            err.to_string().contains("injected EIO on WAL append"),
                            "[seed {seed}] {label}: {err}"
                        );
                        // Nothing was logged; the same batch retries clean.
                        engine.ingest(batch).unwrap_or_else(|e| {
                            panic!("[seed {seed}] {label}: retry after EIO failed: {e}")
                        });
                        acknowledged += 1;
                        controller.kick();
                    }
                    (std::cmp::Ordering::Equal, AppendFault::TornAppend, _) => {
                        let err = outcome.expect_err("scripted torn append must crash");
                        assert!(
                            err.to_string().contains("torn WAL append"),
                            "[seed {seed}] {label}: {err}"
                        );
                        dead = true;
                    }
                    (std::cmp::Ordering::Greater, _, _) => {
                        outcome.unwrap_or_else(|e| {
                            panic!("[seed {seed}] {label}: batch {i} must ingest: {e}")
                        });
                        acknowledged += 1;
                        controller.kick();
                    }
                }
            }
            // Let the worker finish its in-flight pass, then account for it.
            controller.run_now();
            let stats = controller.stats();
            checkpoints_owned += stats.checkpoints;
            let errors = controller.shutdown();
            assert!(
                errors.is_empty(),
                "[seed {seed}] {label}: background maintenance must survive the \
                 WAL fault untouched: {errors:?}"
            );
            drop(engine);

            // Recovery: the checkpoint-mutated directory plus the WAL tail
            // must reconstruct exactly the acknowledged batches.
            let recovered = ReachabilityEngine::open_snapshot(&dir, network.clone())
                .unwrap_or_else(|e| panic!("[seed {seed}] {label}: reopen failed: {e}"));
            recovered
                .attach_wal(dir.join("ingest.wal"))
                .unwrap_or_else(|e| panic!("[seed {seed}] {label}: re-attach failed: {e}"));
            let reference = ReachabilityEngine::open_snapshot(&ref_dir, network.clone())
                .expect("open reference");
            for batch in batches.iter().take(acknowledged) {
                reference.ingest(batch).expect("reference ingest");
            }
            assert_eq!(
                all_regions(&recovered, center),
                all_regions(&reference, center),
                "[seed {seed}] {label}: recovered engine diverged from the \
                 {acknowledged}-batch reference"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    assert!(
        checkpoints_owned > 0,
        "[seed {seed}] the campaign must have raced real background checkpoints"
    );
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// A compaction that fails mid-copy (dead disk part-way through the blob
/// copy) must leave the old base serving bit-identically — and be
/// retryable: after the fault clears, the same `compact()` folds the delta
/// and queries still match.
#[test]
fn compaction_failing_mid_copy_leaves_old_base_serving_and_is_retryable() {
    let seed = fault_seed();
    let dir = tmp_dir("compact-midcopy");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let batches = extra_batches(&network);

    let ctl = FaultController::detached(seed);
    let engine = ReachabilityEngine::open_snapshot_with_stores_and_backend(
        &dir,
        network.clone(),
        store_backend(),
        {
            let ctl = ctl.clone();
            move |_role, store| Box::new(FaultInjectingPageStore::with_controller(store, &ctl))
        },
    )
    .expect("open snapshot with fault wrapper on both heaps");
    for batch in &batches {
        engine.ingest(batch).expect("ingest");
    }
    let baseline = all_regions(&engine, center);
    let delta_before = engine.st_index().delta_stats();
    assert!(delta_before.delta_lists > 0);

    // Kill the disk a few reads into the copy: the fold dies mid-flight.
    engine.st_index().clear_cache();
    ctl.fail_reads_from(ctl.reads_observed() + 5);
    let err = engine
        .compact()
        .expect_err("a dead disk mid-copy must fail the compaction");
    assert!(
        err.to_string().contains("injected EIO"),
        "[seed {seed}] compaction error must surface the backend fault: {err}"
    );

    // The old base (and the delta tail) keep serving, bit-identically.
    ctl.clear();
    assert_eq!(
        engine.st_index().delta_stats(),
        delta_before,
        "[seed {seed}] a failed compaction must leave the delta untouched"
    );
    engine.st_index().clear_cache();
    assert_eq!(
        all_regions(&engine, center),
        baseline,
        "[seed {seed}] a failed compaction must not shift any region"
    );

    // Retry: the same call now folds the delta, and nothing moved.
    let folded = engine.compact().expect("retried compaction");
    assert_eq!(folded.delta_lists, delta_before.delta_lists);
    assert_eq!(engine.st_index().delta_stats(), Default::default());
    assert_eq!(
        all_regions(&engine, center),
        baseline,
        "[seed {seed}] retried compaction diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Group-commit durability: a multi-writer batch whose fsync fails must
/// fail **every** caller in the group and freeze the applied prefix for all
/// of their records — none applies live, all replay idempotently after a
/// reopen, and clean retries converge.
#[test]
fn group_commit_fsync_eio_freezes_the_applied_prefix_for_the_whole_group() {
    let seed = fault_seed();
    let dir = tmp_dir("group-fsync");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let batches: Vec<Vec<TrajPoint>> = extra_batches(&network).into_iter().take(3).collect();
    let writers = batches.len();

    let ctl = FaultController::detached(seed);
    let engine =
        Arc::new(ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open snapshot"));
    engine
        .attach_wal_with_controller(dir.join("group.wal"), ctl.clone())
        .expect("attach WAL");
    let pristine = all_regions(&engine, center);

    // Every physical fsync under the concurrent batch fails.
    ctl.fail_next_syncs(u64::MAX / 2);
    let outcomes: Vec<Result<IngestOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .iter()
            .map(|batch| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || engine.ingest(batch).map_err(|e| e.to_string()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    ctl.clear();
    for (i, outcome) in outcomes.iter().enumerate() {
        let err = outcome
            .as_ref()
            .expect_err("every record of the failed group must error");
        assert!(
            err.contains("fsync"),
            "[seed {seed}] writer {i}: the group fsync failure must surface: {err}"
        );
    }

    // Nothing of the failed group applied live: the engine still answers
    // like the pristine snapshot.
    assert_eq!(
        all_regions(&engine, center),
        pristine,
        "[seed {seed}] records of a failed group must not apply live"
    );

    // Clean retries converge (idempotent merges), even though the applied
    // prefix stays frozen until the next attach.
    for batch in &batches {
        engine.ingest(batch).expect("clean retry");
    }
    let reference = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("reference");
    for batch in &batches {
        reference.ingest(batch).expect("reference ingest");
    }
    let target = all_regions(&reference, center);
    assert_eq!(
        all_regions(&engine, center),
        target,
        "[seed {seed}] retried group diverged from the reference"
    );
    drop(engine);

    // Crash + reopen: the frozen prefix forces a full replay — the
    // failed-but-durable records plus their retries, 2 per batch — and
    // idempotent application converges on the same engine.
    let recovered =
        ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("reopen after crash");
    let attach = recovered
        .attach_wal(dir.join("group.wal"))
        .expect("replay WAL");
    assert_eq!(
        attach.records_replayed,
        2 * writers as u64,
        "[seed {seed}] the frozen prefix must replay the whole group and its retries"
    );
    assert_eq!(
        all_regions(&recovered, center),
        target,
        "[seed {seed}] replayed engine diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Delta-heap read faults under live queries: after an ingest, a dead delta
/// disk surfaces as a typed storage error on every pipeline that touches
/// delta postings, and recovery restores the exact post-ingest regions.
#[test]
fn delta_read_faults_surface_as_typed_errors_and_recover() {
    let seed = fault_seed();
    let dir = tmp_dir("delta-read");
    let network = build_snapshot(&dir);
    let center = network.bounds().center();
    let batch: Vec<TrajPoint> = extra_batches(&network)
        .into_iter()
        .take(4)
        .flatten()
        .collect();

    let mut delta_ctl = None;
    let engine =
        ReachabilityEngine::open_snapshot_with_stores(&dir, network.clone(), |role, store| {
            match role {
                StoreRole::Base => store,
                StoreRole::Delta => {
                    let faulty = FaultInjectingPageStore::with_seed(store, seed);
                    delta_ctl = Some(faulty.controller());
                    Box::new(faulty)
                }
            }
        })
        .expect("open snapshot with delta fault wrapper");
    let ctl = delta_ctl.expect("delta wrapper installed");
    engine.ingest(&batch).expect("ingest");

    for pipeline in pipelines(center) {
        let name = pipeline.name;
        ctl.clear();
        engine.st_index().clear_cache();
        let before = ctl.reads_observed();
        let baseline = (pipeline.run)(&engine)
            .unwrap_or_else(|e| panic!("[seed {seed}] {name}: post-ingest baseline: {e}"));
        let delta_reads = ctl.reads_observed() - before;
        assert!(
            delta_reads > 0,
            "[seed {seed}] {name}: the query must read delta postings after ingest"
        );

        // A spread of ordinals caps the sweep on delta-heavy queries.
        let step = (delta_reads / 12).max(1) as usize;
        for ordinal in (0..delta_reads).step_by(step) {
            engine.st_index().clear_cache();
            ctl.fail_reads_from(ctl.reads_observed() + ordinal);
            match (pipeline.run)(&engine) {
                Err(QueryError::Storage { context, .. }) => assert!(
                    context.contains("injected EIO"),
                    "[seed {seed}] {name} delta read #{ordinal}: {context}"
                ),
                Err(other) => panic!(
                    "[seed {seed}] {name} delta read #{ordinal}: \
                     expected QueryError::Storage, got {other}"
                ),
                Ok(_) => panic!(
                    "[seed {seed}] {name} delta read #{ordinal}: \
                     a dead delta disk must not produce a region"
                ),
            }
            ctl.clear();
            engine.st_index().clear_cache();
            let after = (pipeline.run)(&engine)
                .unwrap_or_else(|e| panic!("[seed {seed}] {name}: recovery query: {e}"));
            assert_eq!(
                after, baseline,
                "[seed {seed}] {name} delta read #{ordinal}: recovery diverged"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
