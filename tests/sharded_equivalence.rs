//! Sharded + replicated serving equivalence harness: a scatter-gather
//! router over K spatial shard engines and their WAL-shipped read replicas
//! must answer **bit-identically** to a single unsharded engine — on every
//! pipeline, including queries whose reachable annulus straddles a shard
//! boundary.
//!
//! The harness is seeded (`STREACH_FAULT_SEED`, printed in every assertion)
//! and drives the same morning query pool as `tests/concurrent_maintenance.rs`
//! through four phases per round:
//!
//! * **Barrier ingest** — a real fleet-day batch lands on the single
//!   reference engine and on every shard leader (the router forwards the
//!   full batch; each leader folds only its owned postings), then ships to
//!   every replica and asserts convergence (same applied generation and
//!   offset, zero lag).
//! * **Quiesced sweep** — every pool entry is answered by the router under
//!   both read preferences (leader reads and replica-first reads) and
//!   compared bit-for-bit against the quiesced reference. A guard assertion
//!   checks the pool actually contains boundary-straddling answers, so the
//!   scatter-gather path is provably exercised.
//! * **Checkpoint** — `ReplicaSet::checkpoint_leader` runs the
//!   ship-before-rotate protocol on every shard; followers must track the
//!   rotated generation and keep answering identically.
//! * **Ship race** — query threads sweep seeded pool entries against the
//!   router (replica-first) while the caller interleaves slot-disjoint
//!   leader ingest with shipping, so queries race replica apply. The
//!   disjoint data provably cannot change any pool answer, which a guard
//!   re-checks after the race.
//!
//! After the rounds the fleet "crashes": shard 0 fails over by promoting
//! its converged replica (replaying nothing), every other shard reopens
//! from its checkpoint plus WAL-tail replay — and the rebuilt router still
//! answers the whole pool bit-identically.
//!
//! A second campaign scripts a **dead disk** (`FaultInjectingPageStore`,
//! every read EIO) on a replica mid-campaign: reads stickily fail over to
//! the leader with unchanged answers, and when the leader's disk dies too
//! the query surfaces a typed [`QueryError::Storage`] — never a partial
//! region.
//!
//! Three further campaigns cover the replication tier:
//!
//! * **Split-brain** — after a fenced `ReplicaSet::promote`, the deposed
//!   leader's next ingest fails with the typed `StorageError::Fenced`
//!   error and applies nothing; the promoted fleet (promoted leader
//!   installed into the router) keeps answering bit-identically to the
//!   reference across all four pipelines.
//! * **Background shipping race** — a `ReplicationController` ships on its
//!   own thread while query threads sweep the replica and the caller
//!   ingests slot-disjoint data at the leader; every record is shipped
//!   exactly once.
//! * **Apply-fault SLO** — scripted delta-store write EIOs on the replica
//!   make apply fail: lag grows past the configured SLO (typed breach
//!   event), and after the disk heals shipping re-converges with zero
//!   re-replayed records.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use streach::prelude::*;
use streach::storage::{FaultController, FaultInjectingPageStore, StorageError};
use streach_core::query::MQueryAlgorithm;
use streach_core::sharded::PROBATION_READS;
use streach_core::StoreRole;

/// Base fleet-days built offline; the remaining days arrive via ingest.
const BASE_DAYS: u16 = 2;
/// Fleet-days ingested round by round.
const EXTRA_DAYS: u16 = 2;
/// Spatial shards of the tentpole campaign.
const NUM_SHARDS: u16 = 3;
/// Concurrent query threads in the ship race.
const QUERY_THREADS: usize = 2;

fn fault_seed() -> u64 {
    std::env::var("STREACH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_728)
}

/// SplitMix64 — the same deterministic mixer the fault harness uses.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-sharded-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copies a snapshot directory file by file — "shipping" its artifacts.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

fn config() -> IndexConfig {
    IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    }
}

/// The shared scenario: a small synthetic city, a base dataset built
/// offline and one live-feed batch per (trajectory, date) of the extra
/// days.
fn scenario() -> (Arc<RoadNetwork>, TrajectoryDataset, Vec<Vec<TrajPoint>>) {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 10,
            num_days: BASE_DAYS + EXTRA_DAYS,
            day_start_s: 8 * 3600,
            day_end_s: 11 * 3600,
            seed: 31,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < BASE_DAYS)
            .cloned()
            .collect(),
        full.num_taxis(),
        BASE_DAYS,
    );
    let round_batches: Vec<Vec<TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= BASE_DAYS)
        .map(|t| points_of(t).collect())
        .collect();
    assert!(round_batches.len() >= 2, "scenario needs live batches");
    (network, base, round_batches)
}

/// A slot-disjoint ingest batch derived from `batch`: fresh trajectory IDs,
/// existing dates and afternoon time slots — by construction it cannot
/// change any answer of the morning pool (same derivation as
/// `tests/concurrent_maintenance.rs`, re-verified by a guard after the
/// race).
fn disjoint_batch(batch: &[TrajPoint], round: usize) -> Vec<TrajPoint> {
    batch
        .iter()
        .map(|p| TrajPoint {
            traj_id: p.traj_id + 1_000_000 + round as u32 * 10_000,
            date: p.date % BASE_DAYS,
            segment: p.segment,
            enter_time_s: (p.enter_time_s + 5 * 3600).min(streach_traj::SECONDS_PER_DAY - 1),
        })
        .collect()
}

/// The query pool: morning windows over several locations, so some
/// reachable annuli straddle shard boundaries (guard-checked in the test).
struct Pool {
    s_queries: Vec<(SQuery, Algorithm)>,
    m_queries: Vec<(MQuery, MQueryAlgorithm)>,
}

fn pool(locations: &[GeoPoint]) -> Pool {
    let mut s_queries = Vec::new();
    let mut m_queries = Vec::new();
    for (start, duration, prob) in [
        (8 * 3600 + 1800, 300u32, 0.25),
        (9 * 3600, 600, 0.25),
        (9 * 3600 + 900, 900, 0.6),
        (10 * 3600, 300, 0.6),
    ] {
        for &location in locations {
            let s = SQuery {
                location,
                start_time_s: start,
                duration_s: duration,
                prob,
            };
            s_queries.push((s, Algorithm::SqmbTbs));
            if duration <= 300 {
                s_queries.push((s, Algorithm::ExhaustiveSearch));
            }
        }
        let m = MQuery {
            locations: vec![locations[0], locations[1]],
            start_time_s: start,
            duration_s: duration,
            prob,
        };
        m_queries.push((m.clone(), MQueryAlgorithm::MqmbTbs));
        if duration <= 300 {
            m_queries.push((m, MQueryAlgorithm::RepeatedSQuery));
        }
    }
    Pool {
        s_queries,
        m_queries,
    }
}

/// Bit-comparable answer of one pool entry.
type Answer = (Vec<SegmentId>, u64);

fn answer_of(outcome: &QueryOutcome) -> Answer {
    (
        outcome.region.segments.clone(),
        outcome.region.total_length_km.to_bits(),
    )
}

/// Anything the pool can be run against: the single reference engine or
/// the sharded router — both expose the same fallible query surface.
trait Queryable {
    fn s(&self, query: &SQuery, algorithm: Algorithm) -> Result<QueryOutcome, QueryError>;
    fn m(&self, query: &MQuery, algorithm: MQueryAlgorithm) -> Result<QueryOutcome, QueryError>;
}

impl Queryable for ReachabilityEngine {
    fn s(&self, query: &SQuery, algorithm: Algorithm) -> Result<QueryOutcome, QueryError> {
        self.try_s_query(query, algorithm)
    }
    fn m(&self, query: &MQuery, algorithm: MQueryAlgorithm) -> Result<QueryOutcome, QueryError> {
        self.try_m_query(query, algorithm)
    }
}

impl Queryable for ShardedEngine {
    fn s(&self, query: &SQuery, algorithm: Algorithm) -> Result<QueryOutcome, QueryError> {
        self.try_s_query(query, algorithm)
    }
    fn m(&self, query: &MQuery, algorithm: MQueryAlgorithm) -> Result<QueryOutcome, QueryError> {
        self.try_m_query(query, algorithm)
    }
}

/// Runs the whole pool quiesced and returns every answer in pool order.
fn pool_answers<E: Queryable>(engine: &E, pool: &Pool) -> Vec<Answer> {
    let mut out = Vec::with_capacity(pool.s_queries.len() + pool.m_queries.len());
    for (q, algo) in &pool.s_queries {
        out.push(answer_of(&engine.s(q, *algo).expect("s-query")));
    }
    for (q, algo) in &pool.m_queries {
        out.push(answer_of(&engine.m(q, *algo).expect("m-query")));
    }
    out
}

/// Runs pool entry `index` on `engine` and returns its answer.
fn run_pool_entry<E: Queryable>(
    engine: &E,
    pool: &Pool,
    index: usize,
) -> Result<Answer, QueryError> {
    if index < pool.s_queries.len() {
        let (q, algo) = &pool.s_queries[index];
        Ok(answer_of(&engine.s(q, *algo)?))
    } else {
        let (q, algo) = &pool.m_queries[index - pool.s_queries.len()];
        Ok(answer_of(&engine.m(q, *algo)?))
    }
}

/// Asserts the engine's quiesced pool answers equal `expected`.
fn assert_pool_answers<E: Queryable>(
    engine: &E,
    pool: &Pool,
    expected: &[Answer],
    seed: u64,
    label: &str,
) {
    let got = pool_answers(engine, pool);
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        assert_eq!(
            g, e,
            "[seed {seed}] {label}: quiesced pool entry #{i} diverged"
        );
    }
}

/// One racing phase: query threads sweep seeded pool entries against
/// `engine` and assert bit-identity, while `interleave` runs on the
/// caller's thread until every query thread finished.
#[allow(clippy::too_many_arguments)]
fn race_queries<E: Queryable + Sync, F: FnMut()>(
    engine: &E,
    pool: &Pool,
    expected: &[Answer],
    seed: u64,
    phase: u64,
    queries_per_thread: usize,
    label: &str,
    mut interleave: F,
) {
    let running = AtomicUsize::new(QUERY_THREADS);
    std::thread::scope(|scope| {
        for thread in 0..QUERY_THREADS {
            let running = &running;
            scope.spawn(move || {
                // Seeded worker override: both the sequential and the
                // parallel verification paths race the shipping.
                let workers = 1 + (mix(seed, phase * 31 + thread as u64) % 2) as usize;
                streach_par::with_worker_override(workers, || {
                    for i in 0..queries_per_thread {
                        let index = (mix(seed, phase * 1009 + thread as u64 * 101 + i as u64)
                            % (pool.s_queries.len() + pool.m_queries.len()) as u64)
                            as usize;
                        let got = run_pool_entry(engine, pool, index).unwrap_or_else(|e| {
                            panic!(
                                "[seed {seed}] {label}: thread {thread} query #{i} \
                                 (pool entry {index}, {workers} workers) failed: {e}"
                            )
                        });
                        assert_eq!(
                            got, expected[index],
                            "[seed {seed}] {label}: thread {thread} query #{i} \
                             (pool entry {index}, {workers} workers) diverged from \
                             the quiesced reference"
                        );
                    }
                });
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        while running.load(Ordering::SeqCst) > 0 {
            interleave();
        }
    });
}

/// Per shard: a WAL-backed leader plus one replica bootstrapped from the
/// leader's self-contained snapshot alone (no shared network object, no
/// dataset — exactly the artifacts shipping would move between hosts).
/// Returns the shard home directories, the leaders, and the replica sets.
#[allow(clippy::type_complexity)]
fn build_fleet(
    root: &Path,
    seed: u64,
    network: &Arc<RoadNetwork>,
    base: &TrajectoryDataset,
    map: &Arc<ShardMap>,
) -> (
    Vec<PathBuf>,
    Vec<Arc<ReachabilityEngine>>,
    Vec<Arc<ReplicaSet>>,
) {
    let mut homes = Vec::new();
    let mut leaders = Vec::new();
    let mut sets = Vec::new();
    for shard_id in 0..map.num_shards() {
        let home = root.join(format!("shard{shard_id}"));
        let leader = Arc::new(
            EngineBuilder::new(network.clone(), base)
                .index_config(config())
                .shard(map.clone(), shard_id)
                .build(),
        );
        leader
            .save_snapshot_self_contained(&home)
            .unwrap_or_else(|e| panic!("[seed {seed}] shard {shard_id}: save leader: {e}"));
        leader
            .attach_wal(home.join("ingest.wal"))
            .unwrap_or_else(|e| panic!("[seed {seed}] shard {shard_id}: attach WAL: {e}"));

        let replica_home = root.join(format!("shard{shard_id}-replica"));
        copy_dir(&home, &replica_home);
        let _ = std::fs::remove_file(replica_home.join("ingest.wal"));
        let replica = Arc::new(
            ReachabilityEngine::open_snapshot_standalone(&replica_home).unwrap_or_else(|e| {
                panic!(
                    "[seed {seed}] shard {shard_id}: bootstrap replica from shipped artifacts: {e}"
                )
            }),
        );
        let set = Arc::new(ReplicaSet::new(leader.clone(), home.join("ingest.wal")));
        set.add_replica(replica, replica_home.join("follower.wal"))
            .unwrap_or_else(|e| panic!("[seed {seed}] shard {shard_id}: register replica: {e}"));
        homes.push(home);
        leaders.push(leader);
        sets.push(set);
    }
    (homes, leaders, sets)
}

/// Query locations spread across the network so some reachable annuli
/// straddle shard boundaries (guard-checked by the tentpole campaign).
fn spread_locations(network: &RoadNetwork) -> [GeoPoint; 3] {
    let b = network.bounds();
    let center = b.center();
    [
        center,
        GeoPoint::new(
            center.lon + (b.max_lon - b.min_lon) * 0.22,
            center.lat + (b.max_lat - b.min_lat) * 0.10,
        ),
        GeoPoint::new(
            center.lon - (b.max_lon - b.min_lon) * 0.18,
            center.lat - (b.max_lat - b.min_lat) * 0.15,
        ),
    ]
}

/// The tentpole campaign (see the module docs).
#[test]
fn sharded_replicated_serving_stays_bit_identical() {
    let seed = fault_seed();
    let root = tmp_dir("harness");
    let (network, base, round_batches) = scenario();
    let map = Arc::new(ShardMap::partition(&network, NUM_SHARDS));

    // The quiesced single-engine reference: full index, volatile ingest.
    let reference = EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .build();

    let (homes, leaders, sets) = build_fleet(&root, seed, &network, &base, &map);
    let mut router = ShardedEngine::new(map.clone(), leaders);
    for (shard_id, set) in sets.iter().enumerate() {
        router.add_replica(shard_id as u16, set.replica(0));
    }

    let pool = pool(&spread_locations(&network));

    let rounds = if cfg!(debug_assertions) {
        2.min(round_batches.len())
    } else {
        round_batches.len().min(4)
    };
    let queries_per_thread = if cfg!(debug_assertions) { 4 } else { 8 };

    for (round, batch) in round_batches.iter().enumerate().take(rounds) {
        // Barrier phase: the fleet-day batch lands everywhere quiesced —
        // reference, every leader (via the router), every replica (via
        // shipping).
        reference
            .ingest(batch)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: reference ingest: {e}"));
        router
            .ingest(batch)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: sharded ingest: {e}"));
        for (shard_id, set) in sets.iter().enumerate() {
            set.ship().unwrap_or_else(|e| {
                panic!("[seed {seed}] round {round}: ship shard {shard_id}: {e}")
            });
            assert!(
                set.converged(),
                "[seed {seed}] round {round}: shard {shard_id} replica did not converge: {:?}",
                set.status()
            );
            assert_eq!(
                set.status()[0].lag_records(),
                0,
                "[seed {seed}] round {round}: shard {shard_id} reports lag after convergence"
            );
        }
        let expected = pool_answers(&reference, &pool);

        if round == 0 {
            // The scatter-gather premise: some answers must span several
            // shards, otherwise every annulus read one engine and the
            // boundary path went untested.
            let straddling = expected
                .iter()
                .filter(|(segments, _)| {
                    let mut shards: Vec<u16> = segments.iter().map(|&s| map.shard_of(s)).collect();
                    shards.sort_unstable();
                    shards.dedup();
                    shards.len() >= 2
                })
                .count();
            assert!(
                straddling > 0,
                "[seed {seed}] no pool answer straddles a shard boundary — \
                 the scatter-gather path is untested"
            );
        }

        router.set_read_preference(ReadPreference::Leader);
        assert_pool_answers(
            &router,
            &pool,
            &expected,
            seed,
            &format!("round {round} leader reads"),
        );
        router.set_read_preference(ReadPreference::ReplicaFirst);
        assert_pool_answers(
            &router,
            &pool,
            &expected,
            seed,
            &format!("round {round} replica-first reads"),
        );

        // Ship-before-rotate: checkpoint every leader mid-campaign; the
        // followers must track the rotated generation and keep answering.
        if round == 0 {
            for (shard_id, set) in sets.iter().enumerate() {
                set.checkpoint_leader(&homes[shard_id]).unwrap_or_else(|e| {
                    panic!("[seed {seed}] round {round}: checkpoint shard {shard_id}: {e}")
                });
                assert!(
                    set.converged(),
                    "[seed {seed}] round {round}: shard {shard_id} diverged across the \
                     checkpoint rotation: {:?}",
                    set.status()
                );
            }
            assert_pool_answers(
                &router,
                &pool,
                &expected,
                seed,
                &format!("round {round} post-checkpoint"),
            );
        }

        // Ship race: queries sweep the router (replica-first) while
        // slot-disjoint data lands at the leaders and ships to the
        // replicas underneath them.
        let disjoint = disjoint_batch(batch, round);
        reference
            .ingest(&disjoint)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: reference disjoint: {e}"));
        let pieces: Vec<&[TrajPoint]> =
            disjoint.chunks(disjoint.len().div_ceil(8).max(1)).collect();
        let mut next_piece = 0usize;
        {
            let sets = &sets;
            let router = &router;
            race_queries(
                router,
                &pool,
                &expected,
                seed,
                round as u64,
                queries_per_thread,
                &format!("round {round} ship race"),
                || {
                    if next_piece < pieces.len() {
                        router.ingest(pieces[next_piece]).unwrap_or_else(|e| {
                            panic!("[seed {seed}] round {round}: racing ingest: {e}")
                        });
                        next_piece += 1;
                    }
                    for (shard_id, set) in sets.iter().enumerate() {
                        set.ship().unwrap_or_else(|e| {
                            panic!("[seed {seed}] round {round}: racing ship shard {shard_id}: {e}")
                        });
                    }
                },
            );
        }
        for piece in &pieces[next_piece..] {
            router
                .ingest(piece)
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: drain ingest: {e}"));
        }
        for (shard_id, set) in sets.iter().enumerate() {
            set.ship()
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: drain ship: {e}"));
            assert!(
                set.converged(),
                "[seed {seed}] round {round}: shard {shard_id} did not converge after the race"
            );
        }
        // Disjointness guard: the raced data must not have moved a single
        // pool answer, on the router or on the reference.
        assert_pool_answers(
            &router,
            &pool,
            &expected,
            seed,
            &format!("round {round} post-race (disjointness guard)"),
        );
        assert_pool_answers(
            &reference,
            &pool,
            &expected,
            seed,
            &format!("round {round} reference guard"),
        );
    }

    // Crash + recovery: shard 0 fails over by promoting its converged
    // replica (replays nothing); the other shards reopen from their
    // checkpoint plus WAL-tail replay. The rebuilt fleet still answers the
    // whole pool bit-identically.
    let expected = pool_answers(&reference, &pool);
    drop(router);
    let mut recovered = Vec::new();
    for (shard_id, set) in sets.into_iter().enumerate() {
        if shard_id == 0 {
            set.ship()
                .unwrap_or_else(|e| panic!("[seed {seed}] failover: final ship: {e}"));
            let (promoted, attach) = set
                .promote(0)
                .unwrap_or_else(|e| panic!("[seed {seed}] failover: promote shard 0 replica: {e}"));
            assert_eq!(
                attach.records_replayed, 0,
                "[seed {seed}] a converged follower replays nothing on promotion"
            );
            recovered.push(promoted);
        } else {
            drop(set); // crash this shard's leader and replica
            let engine = Arc::new(
                ReachabilityEngine::open_snapshot_standalone(&homes[shard_id]).unwrap_or_else(
                    |e| panic!("[seed {seed}] recovery: reopen shard {shard_id}: {e}"),
                ),
            );
            engine
                .attach_wal(homes[shard_id].join("ingest.wal"))
                .unwrap_or_else(|e| {
                    panic!("[seed {seed}] recovery: replay shard {shard_id} WAL tail: {e}")
                });
            recovered.push(engine);
        }
    }
    let recovered_router = ShardedEngine::new(map, recovered);
    assert_pool_answers(&recovered_router, &pool, &expected, seed, "recovered fleet");
    std::fs::remove_dir_all(&root).ok();
}

/// Reopens a shard snapshot with a scripted fault wrapper under the buffer
/// pool of the sealed base heap, returning the engine and the script
/// controller.
fn reopen_with_disk_script(
    dir: &Path,
    network: Arc<RoadNetwork>,
    seed: u64,
) -> (Arc<ReachabilityEngine>, FaultController) {
    let mut controller = None;
    let engine =
        ReachabilityEngine::open_snapshot_with_stores(dir, network, |role, store| match role {
            StoreRole::Base => {
                let faulty = FaultInjectingPageStore::with_seed(store, seed);
                controller = Some(faulty.controller());
                Box::new(faulty)
            }
            StoreRole::Delta => store,
        })
        .expect("open shard snapshot with fault wrapper");
    (
        Arc::new(engine),
        controller.expect("base store was wrapped"),
    )
}

/// Satellite campaign: a dead disk on a replica mid-campaign fails reads
/// over to the leader bit-identically; shard exhaustion is a typed error;
/// and a healed engine is revived by the probation re-probe instead of
/// staying dead forever.
#[test]
fn replica_dead_disk_fails_over_and_shard_exhaustion_is_typed() {
    let seed = fault_seed();
    let root = tmp_dir("failover");
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 12,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 5,
            ..FleetConfig::default()
        },
    );
    // A one-page buffer pool keeps (almost) every posting read physical, so
    // the scripted dead disk fires on the next query instead of hiding
    // behind the cache; one retry keeps the campaign fast.
    let cfg = IndexConfig {
        read_latency_us: 0,
        pool_pages: 1,
        read_retries: 1,
        ..Default::default()
    };
    let single = EngineBuilder::new(network.clone(), &dataset)
        .index_config(cfg.clone())
        .build();
    let map = Arc::new(ShardMap::partition(&network, 2));

    let home = root.join("shard0");
    EngineBuilder::new(network.clone(), &dataset)
        .index_config(cfg.clone())
        .shard(map.clone(), 0)
        .build()
        .save_snapshot(&home)
        .unwrap_or_else(|e| panic!("[seed {seed}] save shard 0 snapshot: {e}"));
    let replica_home = root.join("shard0-replica");
    copy_dir(&home, &replica_home);

    let (leader0, leader_disk) = reopen_with_disk_script(&home, network.clone(), seed);
    let (replica0, replica_disk) =
        reopen_with_disk_script(&replica_home, network.clone(), mix(seed, 1));
    let leader1 = Arc::new(
        EngineBuilder::new(network.clone(), &dataset)
            .index_config(cfg)
            .shard(map.clone(), 1)
            .build(),
    );
    let mut router = ShardedEngine::new(map, vec![leader0, leader1]);
    router.add_replica(0, replica0);
    router.set_read_preference(ReadPreference::ReplicaFirst);

    let center = network.bounds().center();
    let q = |start_time_s: u32, duration_s: u32| SQuery {
        location: center,
        start_time_s,
        duration_s,
        prob: 0.25,
    };

    // Healthy: shard 0 reads are served by the replica, bit-identically.
    let healthy = q(9 * 3600, 600);
    let want = single.try_s_query(&healthy, Algorithm::SqmbTbs).unwrap();
    let got = router.try_s_query(&healthy, Algorithm::SqmbTbs).unwrap();
    assert_eq!(
        answer_of(&want),
        answer_of(&got),
        "[seed {seed}] healthy replica-first answer diverged"
    );
    assert_eq!(router.live_engines(0), 2);
    assert!(
        replica_disk.reads_observed() > 0,
        "[seed {seed}] the replica never served a physical read — the failover premise is void"
    );

    // Dead disk on the replica mid-campaign: the next physical read marks
    // it dead and fails over to the leader; answers are unchanged.
    replica_disk.fail_reads_from(0);
    let mut replica_died = false;
    for (i, (start, duration)) in [
        (10 * 3600u32, 900u32),
        (9 * 3600 + 1800, 600),
        (8 * 3600 + 1800, 300),
        (10 * 3600 + 1800, 600),
    ]
    .into_iter()
    .enumerate()
    {
        let probe = q(start, duration);
        let want = single.try_s_query(&probe, Algorithm::SqmbTbs).unwrap();
        let got = router
            .try_s_query(&probe, Algorithm::SqmbTbs)
            .unwrap_or_else(|e| panic!("[seed {seed}] probe #{i}: failover query failed: {e}"));
        assert_eq!(
            answer_of(&want),
            answer_of(&got),
            "[seed {seed}] probe #{i} diverged after the replica's disk died"
        );
        if router.live_engines(0) == 1 {
            replica_died = true;
            break;
        }
    }
    assert!(
        replica_died,
        "[seed {seed}] the dead-disk replica was never detected"
    );

    // The leader's disk dies too: the query surfaces a typed storage
    // error — never a partial region — and the shard is exhausted.
    leader_disk.fail_reads_from(0);
    let doomed = q(9 * 3600, 900);
    let err = router.try_s_query(&doomed, Algorithm::SqmbTbs).unwrap_err();
    assert!(
        matches!(err, QueryError::Storage { .. }),
        "[seed {seed}] expected a typed storage error, got {err:?}"
    );
    assert_eq!(
        router.live_engines(0),
        0,
        "[seed {seed}] the dead leader must be marked dead"
    );
    // With every engine of the shard dead and the faults persisting, the
    // router keeps surfacing a typed storage error — either the explicit
    // exhaustion message or, when a probation re-probe fires, the actual
    // disk fault — and a probe must never revive a still-broken engine.
    for i in 0..4 {
        let err = router.try_s_query(&doomed, Algorithm::SqmbTbs).unwrap_err();
        assert!(
            matches!(err, QueryError::Storage { .. }),
            "[seed {seed}] exhausted-shard query #{i} must stay a typed storage error, got {err:?}"
        );
        assert_eq!(
            router.live_engines(0),
            0,
            "[seed {seed}] a probe revived a still-broken engine"
        );
    }

    // Probation revival: the leader's disk heals. One transient fault must
    // not be a permanent capacity loss — within one probation window a
    // re-probe reads through the healed store and revives the engine, and
    // the shard serves bit-identical answers again.
    leader_disk.clear();
    let healed = q(9 * 3600, 900);
    let want = single.try_s_query(&healed, Algorithm::SqmbTbs).unwrap();
    let mut revived_at = None;
    for attempt in 0..(4 * PROBATION_READS) {
        match router.try_s_query(&healed, Algorithm::SqmbTbs) {
            Ok(got) => {
                assert_eq!(
                    answer_of(&want),
                    answer_of(&got),
                    "[seed {seed}] healed-leader answer diverged after revival"
                );
                revived_at = Some(attempt);
                break;
            }
            Err(QueryError::Storage { .. }) => continue,
            Err(other) => panic!("[seed {seed}] unexpected error while probing: {other:?}"),
        }
    }
    assert!(
        revived_at.is_some(),
        "[seed {seed}] the healed leader was never revived by probation"
    );
    assert!(
        router.live_engines(0) >= 1,
        "[seed {seed}] revival must be visible in the live count"
    );

    // The replica heals too and rejoins within a few probation windows —
    // replica-first preference probes it on every posting read.
    replica_disk.clear();
    for _ in 0..(4 * PROBATION_READS) {
        let got = router
            .try_s_query(&healed, Algorithm::SqmbTbs)
            .unwrap_or_else(|e| panic!("[seed {seed}] post-revival query failed: {e}"));
        assert_eq!(
            answer_of(&want),
            answer_of(&got),
            "[seed {seed}] answer diverged while the replica rejoined"
        );
        if router.live_engines(0) == 2 {
            break;
        }
    }
    assert_eq!(
        router.live_engines(0),
        2,
        "[seed {seed}] the healed replica was never revived by probation"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Split-brain campaign: a partitioned-but-alive deposed leader must
/// reject writes loudly after a fenced promotion — it can never ack a
/// record the promoted fleet does not see — and the promoted fleet keeps
/// answering bit-identically to the single reference engine across all
/// four pipelines.
#[test]
fn split_brain_promotion_fences_the_deposed_leader() {
    let seed = fault_seed();
    let root = tmp_dir("split-brain");
    let (network, base, round_batches) = scenario();
    let map = Arc::new(ShardMap::partition(&network, NUM_SHARDS));
    let reference = EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .build();
    let (_homes, leaders, sets) = build_fleet(&root, seed, &network, &base, &map);
    let mut router = ShardedEngine::new(map.clone(), leaders.clone());
    for (shard_id, set) in sets.iter().enumerate() {
        router.add_replica(shard_id as u16, set.replica(0));
    }
    let pool = pool(&spread_locations(&network));

    // A live round lands everywhere, ships, and converges.
    reference
        .ingest(&round_batches[0])
        .unwrap_or_else(|e| panic!("[seed {seed}] reference ingest: {e}"));
    router
        .ingest(&round_batches[0])
        .unwrap_or_else(|e| panic!("[seed {seed}] fleet ingest: {e}"));
    for (shard_id, set) in sets.iter().enumerate() {
        set.ship()
            .unwrap_or_else(|e| panic!("[seed {seed}] ship shard {shard_id}: {e}"));
        assert!(set.converged(), "[seed {seed}] shard {shard_id} converged");
    }

    // Shard 0's leader is "partitioned away": its converged replica is
    // promoted — fenced — and installed as the shard's serving leader.
    let (promoted, attach) = sets[0]
        .promote(0)
        .unwrap_or_else(|e| panic!("[seed {seed}] promote shard 0 replica: {e}"));
    assert_eq!(
        attach.records_replayed, 0,
        "[seed {seed}] a converged follower replays nothing on promotion"
    );
    router.install_leader(0, promoted.clone());

    // The deposed leader can never ack again: every retry fails with the
    // typed fencing error before the record lands, and nothing applies.
    let deposed = &leaders[0];
    let position = deposed.wal_position();
    for attempt in 0..2 {
        let err = deposed
            .ingest(&round_batches[1])
            .expect_err("a deposed leader must not ack a write");
        assert!(
            matches!(err, StorageError::Fenced { .. }),
            "[seed {seed}] attempt {attempt}: expected the typed fencing error, got {err}"
        );
        assert_eq!(
            deposed.wal_position(),
            position,
            "[seed {seed}] attempt {attempt}: a fenced ingest must apply nothing"
        );
    }
    // The retired set neither ships from the deposed leader's log nor
    // mints a second promotion epoch.
    assert!(
        matches!(sets[0].ship(), Err(StorageError::Fenced { .. })),
        "[seed {seed}] a retired set must refuse to ship"
    );
    assert!(
        matches!(sets[0].promote(0), Err(StorageError::Fenced { .. })),
        "[seed {seed}] a second promotion must be refused"
    );

    // Life goes on through the promoted leader: the next round lands on
    // the fleet and the reference, and every pipeline stays bit-identical.
    reference
        .ingest(&round_batches[1])
        .unwrap_or_else(|e| panic!("[seed {seed}] reference round 2: {e}"));
    router
        .ingest(&round_batches[1])
        .unwrap_or_else(|e| panic!("[seed {seed}] fleet round 2 through the promoted leader: {e}"));
    for (shard_id, set) in sets.iter().enumerate().skip(1) {
        set.ship()
            .unwrap_or_else(|e| panic!("[seed {seed}] round 2 ship shard {shard_id}: {e}"));
    }
    let expected = pool_answers(&reference, &pool);
    router.set_read_preference(ReadPreference::Leader);
    assert_pool_answers(
        &router,
        &pool,
        &expected,
        seed,
        "promoted fleet leader reads",
    );
    router.set_read_preference(ReadPreference::ReplicaFirst);
    assert_pool_answers(
        &router,
        &pool,
        &expected,
        seed,
        "promoted fleet replica-first reads",
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Background-shipping race: a `ReplicationController` owns `ship()` on
/// its own thread while query threads sweep the replica and the caller
/// ingests slot-disjoint batches at the leader. Answers stay bit-identical
/// throughout, the fleet converges deterministically via `run_now`, and
/// the exactly-once counter proves no record shipped twice.
#[test]
fn background_controller_ships_under_live_ingest() {
    let seed = fault_seed();
    let root = tmp_dir("controller-race");
    let (network, base, round_batches) = scenario();
    let leader = Arc::new(
        EngineBuilder::new(network.clone(), &base)
            .index_config(config())
            .build(),
    );
    let home = root.join("leader");
    leader
        .save_snapshot_self_contained(&home)
        .unwrap_or_else(|e| panic!("[seed {seed}] save leader: {e}"));
    leader
        .attach_wal(home.join("ingest.wal"))
        .unwrap_or_else(|e| panic!("[seed {seed}] attach WAL: {e}"));
    let replica_home = root.join("replica");
    copy_dir(&home, &replica_home);
    let _ = std::fs::remove_file(replica_home.join("ingest.wal"));
    let replica = Arc::new(
        ReachabilityEngine::open_snapshot_standalone(&replica_home)
            .unwrap_or_else(|e| panic!("[seed {seed}] bootstrap replica: {e}")),
    );
    let set = Arc::new(ReplicaSet::new(leader.clone(), home.join("ingest.wal")));
    set.add_replica(replica.clone(), replica_home.join("follower.wal"))
        .unwrap_or_else(|e| panic!("[seed {seed}] register replica: {e}"));
    let ctl = ReplicationController::spawn(
        set.clone(),
        ReplicationConfig {
            poll_interval: std::time::Duration::from_millis(2),
            ..ReplicationConfig::default()
        },
    );

    // A live batch lands and ships; the quiesced replica answers fix the
    // expectation for the race (the raced data is slot-disjoint).
    leader
        .ingest(&round_batches[0])
        .unwrap_or_else(|e| panic!("[seed {seed}] leader ingest: {e}"));
    ctl.run_now();
    assert!(
        set.converged(),
        "[seed {seed}] replica converged after run_now"
    );
    let pool = pool(&spread_locations(&network));
    let expected = pool_answers(replica.as_ref(), &pool);

    let disjoint = disjoint_batch(&round_batches[0], 0);
    let pieces: Vec<&[TrajPoint]> = disjoint.chunks(disjoint.len().div_ceil(8).max(1)).collect();
    let queries_per_thread = if cfg!(debug_assertions) { 4 } else { 8 };
    let mut next_piece = 0usize;
    {
        let leader = &leader;
        let ctl = &ctl;
        race_queries(
            replica.as_ref(),
            &pool,
            &expected,
            seed,
            777,
            queries_per_thread,
            "background shipping race",
            || {
                if next_piece < pieces.len() {
                    leader.ingest(pieces[next_piece]).unwrap_or_else(|e| {
                        panic!("[seed {seed}] racing ingest piece {next_piece}: {e}")
                    });
                    next_piece += 1;
                    ctl.kick();
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
        );
    }
    for piece in &pieces[next_piece..] {
        leader
            .ingest(piece)
            .unwrap_or_else(|e| panic!("[seed {seed}] drain ingest: {e}"));
    }
    ctl.run_now();
    assert!(
        set.converged(),
        "[seed {seed}] fleet must converge after the final run_now: {:?}",
        set.status()
    );
    assert_eq!(ctl.lag(), vec![0], "[seed {seed}] lag observable as zero");
    let stats = ctl.stats();
    assert!(stats.passes >= 1, "[seed {seed}] the worker ran passes");
    assert_eq!(
        stats.records_shipped,
        leader.wal_position().1,
        "[seed {seed}] every record shipped exactly once: {stats:?}"
    );
    // The disjointness guard: the raced data moved no morning answer.
    assert_pool_answers(
        replica.as_ref(),
        &pool,
        &expected,
        seed,
        "post-race replica",
    );
    assert_pool_answers(leader.as_ref(), &pool, &expected, seed, "post-race leader");
    let events = ctl.shutdown();
    assert!(
        events.is_empty(),
        "[seed {seed}] a healthy campaign surfaces no events: {events:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Reopens a snapshot with a scripted fault wrapper under the **delta**
/// store — the store replicated apply writes into — returning the engine
/// and the script controller.
fn reopen_with_delta_script(
    dir: &Path,
    network: Arc<RoadNetwork>,
    seed: u64,
) -> (Arc<ReachabilityEngine>, FaultController) {
    let mut controller = None;
    let engine =
        ReachabilityEngine::open_snapshot_with_stores(dir, network, |role, store| match role {
            StoreRole::Delta => {
                let faulty = FaultInjectingPageStore::with_seed(store, seed);
                controller = Some(faulty.controller());
                Box::new(faulty)
            }
            StoreRole::Base => store,
        })
        .expect("open replica snapshot with delta fault wrapper");
    (
        Arc::new(engine),
        controller.expect("delta store was wrapped"),
    )
}

/// Apply-fault campaign: scripted write EIOs on the replica's delta store
/// make replicated apply fail. The controller keeps the records staged
/// (never dropping or re-polling them), lag grows past the SLO and fires
/// the typed breach event, and after the disk heals one kick re-converges
/// the fleet with zero re-replayed records.
#[test]
fn controller_rides_out_replica_apply_faults_with_slo_events() {
    let seed = fault_seed();
    let root = tmp_dir("apply-faults");
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 6,
            num_days: 2,
            day_start_s: 8 * 3600,
            day_end_s: 11 * 3600,
            seed: 31,
            ..FleetConfig::default()
        },
    );
    let leader = Arc::new(
        EngineBuilder::new(network.clone(), &dataset)
            .index_config(config())
            .build(),
    );
    let home = root.join("leader");
    leader
        .save_snapshot(&home)
        .unwrap_or_else(|e| panic!("[seed {seed}] save leader: {e}"));
    leader
        .attach_wal(home.join("ingest.wal"))
        .unwrap_or_else(|e| panic!("[seed {seed}] attach WAL: {e}"));
    let replica_home = root.join("replica");
    copy_dir(&home, &replica_home);
    let _ = std::fs::remove_file(replica_home.join("ingest.wal"));
    let (replica, replica_delta) = reopen_with_delta_script(&replica_home, network.clone(), seed);
    let set = Arc::new(ReplicaSet::new(leader.clone(), home.join("ingest.wal")));
    set.add_replica(replica.clone(), replica_home.join("follower.wal"))
        .unwrap_or_else(|e| panic!("[seed {seed}] register replica: {e}"));
    let slo = 4u64;
    let ctl = ReplicationController::spawn(
        set.clone(),
        ReplicationConfig {
            poll_interval: std::time::Duration::from_millis(3),
            lag_slo_records: slo,
            retry_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(10),
        },
    );
    let batch = |i: u32| -> Vec<TrajPoint> {
        vec![TrajPoint {
            traj_id: 900 + i,
            date: 1,
            segment: SegmentId((i * 13) % network.num_segments() as u32),
            enter_time_s: 9 * 3600 + i * 20,
        }]
    };

    // Healthy baseline: two records ship and apply.
    for i in 0..2 {
        leader
            .ingest(&batch(i))
            .unwrap_or_else(|e| panic!("[seed {seed}] baseline ingest #{i}: {e}"));
    }
    ctl.run_now();
    assert!(set.converged(), "[seed {seed}] baseline converged");
    assert!(
        replica_delta.writes_observed() > 0,
        "[seed {seed}] replicated apply never wrote the delta store — the fault lever is void"
    );

    // Dead replica disk: every delta write EIOs, so apply fails while the
    // leader keeps ingesting. Lag must grow past the SLO and fire the
    // typed events; the shipped records stay staged.
    replica_delta.fail_writes_from(0);
    let burst = 3 * slo as u32;
    for i in 0..burst {
        leader
            .ingest(&batch(100 + i))
            .unwrap_or_else(|e| panic!("[seed {seed}] burst ingest #{i}: {e}"));
    }
    ctl.run_now();
    let lag = ctl.lag()[0];
    assert!(
        lag >= u64::from(burst),
        "[seed {seed}] lag must grow while apply faults: {lag}"
    );
    let events = ctl.take_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ReplicationEvent::ShipFailed { .. })),
        "[seed {seed}] the apply fault surfaces as a typed ship failure: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            ReplicationEvent::SloBreached { replica: 0, lag_records, slo_records }
                if *lag_records > *slo_records && *slo_records == slo
        )),
        "[seed {seed}] crossing the SLO fires the typed breach event: {events:?}"
    );
    let stats = ctl.stats();
    assert!(
        stats.ship_errors >= 1 && stats.slo_breaches == 1,
        "[seed {seed}] stats must record the excursion: {stats:?}"
    );

    // Heal: one kicked pass (backoff bypassed) drains the staged records
    // and re-converges. Zero re-replay: the follower log holds exactly the
    // leader's record count — a re-shipped record would have broken the
    // log's contiguity check — and the engines agree on the position.
    replica_delta.clear();
    ctl.run_now();
    assert!(
        set.converged(),
        "[seed {seed}] healed fleet re-converges: {:?}",
        set.status()
    );
    assert_eq!(ctl.lag(), vec![0], "[seed {seed}] lag back under the SLO");
    let status = &set.status()[0];
    assert_eq!(
        status.shipped_records,
        leader.wal_position().1,
        "[seed {seed}] every leader record entered the follower log exactly once"
    );
    let events = ctl.take_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ReplicationEvent::SloRecovered { replica: 0, lag_records } if *lag_records <= slo
        )),
        "[seed {seed}] recovery fires the typed event: {events:?}"
    );
    ctl.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Compile-time pin: the router must stay shareable across threads — the
/// ship race and any serving tier depend on it.
#[test]
fn sharded_engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedEngine>();
    assert_send_sync::<ReplicaStatus>();
    assert_send_sync::<ReplicaSet>();
    assert_send_sync::<ReplicationController>();
}
