//! Deterministic concurrency harness: queries racing ingest, auto-checkpoint
//! and background compaction must answer **bit-identically** to a quiesced
//! reference engine.
//!
//! The harness is seeded (`STREACH_FAULT_SEED`, printed in every assertion)
//! and drives N query threads against a live serving engine while, on other
//! threads:
//!
//! * a [`MaintenanceController`] runs auto-checkpoints (the delta heap
//!   crosses `IndexConfig::auto_checkpoint_bytes` every round) and
//!   ratio-triggered compactions — `run_now` turns "maintenance exactly
//!   here" into a scripted trigger point, and the worker's own poll cadence
//!   adds unscripted interleavings on top;
//! * the writer ingests **slot-disjoint** batches (fresh trajectory IDs,
//!   afternoon time slots, existing dates) through the WAL — data that
//!   provably cannot change any answer of the morning query pool, so even
//!   queries racing the ingest application must match the quiesced
//!   reference bit-exactly (a guard assertion re-checks the disjointness
//!   premise after every round).
//!
//! Each round barriers on batch ingest (the one operation that *does*
//! change answers), pre-computes the reference answers on a quiesced
//! single-threaded engine, then lets the threads race. After the rounds the
//! live engine is "crashed", reopened from the auto-checkpoint directory,
//! and the WAL tail replayed — still bit-identical to the reference.
//!
//! Query threads run under `streach_par::with_worker_override` (seeded 1 or
//! 2 workers), so both the sequential and the genuinely parallel
//! verification paths race the maintenance.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use streach::prelude::*;
use streach_core::query::MQueryAlgorithm;
use streach_core::MaintenanceConfig;

/// Base fleet-days built offline; the remaining days arrive via ingest.
const BASE_DAYS: u16 = 2;
/// Fleet-days ingested round by round.
const EXTRA_DAYS: u16 = 2;
/// Concurrent query threads.
const QUERY_THREADS: usize = 3;

fn fault_seed() -> u64 {
    std::env::var("STREACH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_728)
}

/// SplitMix64 — the same deterministic mixer the fault harness uses.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("streach-concurrent-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IndexConfig {
    IndexConfig {
        read_latency_us: 0,
        // Any non-empty delta warrants an auto-checkpoint: every
        // maintenance pass during a round does real checkpoint work.
        auto_checkpoint_bytes: 1,
        ..Default::default()
    }
}

struct Scenario {
    network: Arc<RoadNetwork>,
    /// One batch per (trajectory, date) of the extra days, dataset order.
    round_batches: Vec<Vec<TrajPoint>>,
}

/// Builds the base snapshot in `dir` and returns the live-feed batches.
fn scenario(dir: &PathBuf) -> Scenario {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 10,
            num_days: BASE_DAYS + EXTRA_DAYS,
            day_start_s: 8 * 3600,
            day_end_s: 11 * 3600,
            seed: 31,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < BASE_DAYS)
            .cloned()
            .collect(),
        full.num_taxis(),
        BASE_DAYS,
    );
    let round_batches: Vec<Vec<TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= BASE_DAYS)
        .map(|t| points_of(t).collect())
        .collect();
    assert!(round_batches.len() >= 2, "scenario needs live batches");
    streach::core::EngineBuilder::new(network.clone(), &base)
        .index_config(config())
        .save_snapshot(dir)
        .expect("save base snapshot");
    Scenario {
        network,
        round_batches,
    }
}

/// A slot-disjoint ingest batch derived from `batch`: fresh trajectory IDs
/// (no continuation pair into the morning slots), existing dates (the day
/// count `m` cannot move) and afternoon time slots (13:00+, while the query
/// pool stays before 12:00) — by construction it cannot change any answer
/// of the pool, which `assert_pool_answers` re-verifies after the race.
fn disjoint_batch(batch: &[TrajPoint], round: usize) -> Vec<TrajPoint> {
    batch
        .iter()
        .map(|p| TrajPoint {
            traj_id: p.traj_id + 1_000_000 + round as u32 * 10_000,
            date: p.date % BASE_DAYS,
            segment: p.segment,
            enter_time_s: (p.enter_time_s + 5 * 3600).min(streach_traj::SECONDS_PER_DAY - 1),
        })
        .collect()
}

/// The query pool every thread draws from: morning windows only (the
/// disjoint ingest stays in the afternoon).
struct Pool {
    s_queries: Vec<(SQuery, Algorithm)>,
    m_queries: Vec<(MQuery, MQueryAlgorithm)>,
}

fn pool(center: GeoPoint) -> Pool {
    let mut s_queries = Vec::new();
    let mut m_queries = Vec::new();
    for (start, duration, prob) in [
        (8 * 3600 + 1800, 300u32, 0.25),
        (9 * 3600, 600, 0.25),
        (9 * 3600 + 900, 900, 0.6),
        (10 * 3600, 300, 0.6),
    ] {
        let s = SQuery {
            location: center,
            start_time_s: start,
            duration_s: duration,
            prob,
        };
        s_queries.push((s, Algorithm::SqmbTbs));
        if duration <= 300 {
            s_queries.push((s, Algorithm::ExhaustiveSearch));
        }
        let m = MQuery {
            locations: vec![center, center.offset_m(900.0, -600.0)],
            start_time_s: start,
            duration_s: duration,
            prob,
        };
        m_queries.push((m.clone(), MQueryAlgorithm::MqmbTbs));
        if duration <= 300 {
            m_queries.push((m, MQueryAlgorithm::RepeatedSQuery));
        }
    }
    Pool {
        s_queries,
        m_queries,
    }
}

/// Bit-comparable answer of one pool entry.
type Answer = (Vec<SegmentId>, u64);

fn answer_of(outcome: &QueryOutcome) -> Answer {
    (
        outcome.region.segments.clone(),
        outcome.region.total_length_km.to_bits(),
    )
}

/// Runs the whole pool quiesced and returns every answer in pool order
/// (s-queries first).
fn pool_answers(engine: &ReachabilityEngine, pool: &Pool) -> Vec<Answer> {
    let mut out = Vec::with_capacity(pool.s_queries.len() + pool.m_queries.len());
    for (q, algo) in &pool.s_queries {
        out.push(answer_of(&engine.try_s_query(q, *algo).expect("s-query")));
    }
    for (q, algo) in &pool.m_queries {
        out.push(answer_of(&engine.try_m_query(q, *algo).expect("m-query")));
    }
    out
}

/// Runs pool entry `index` on `engine` and returns its answer.
fn run_pool_entry(
    engine: &ReachabilityEngine,
    pool: &Pool,
    index: usize,
) -> Result<Answer, QueryError> {
    if index < pool.s_queries.len() {
        let (q, algo) = &pool.s_queries[index];
        Ok(answer_of(&engine.try_s_query(q, *algo)?))
    } else {
        let (q, algo) = &pool.m_queries[index - pool.s_queries.len()];
        Ok(answer_of(&engine.try_m_query(q, *algo)?))
    }
}

/// Asserts the engine's quiesced pool answers equal `expected`.
fn assert_pool_answers(
    engine: &ReachabilityEngine,
    pool: &Pool,
    expected: &[Answer],
    seed: u64,
    label: &str,
) {
    let got = pool_answers(engine, pool);
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        assert_eq!(
            g, e,
            "[seed {seed}] {label}: quiesced pool entry #{i} diverged"
        );
    }
}

/// One racing phase: `QUERY_THREADS` threads sweep seeded pool entries and
/// assert each answer bit-identical to `expected`, while `interleave` runs
/// on the caller's thread until every query thread finished.
#[allow(clippy::too_many_arguments)]
fn race_queries<F: FnMut()>(
    engine: &Arc<ReachabilityEngine>,
    pool: &Pool,
    expected: &[Answer],
    seed: u64,
    phase: u64,
    queries_per_thread: usize,
    label: &str,
    mut interleave: F,
) {
    let running = AtomicUsize::new(QUERY_THREADS);
    std::thread::scope(|scope| {
        for thread in 0..QUERY_THREADS {
            let engine = Arc::clone(engine);
            let running = &running;
            scope.spawn(move || {
                // Seeded worker override: both the sequential and the
                // parallel verification paths race the maintenance.
                let workers = 1 + (mix(seed, phase * 31 + thread as u64) % 2) as usize;
                streach_par::with_worker_override(workers, || {
                    for i in 0..queries_per_thread {
                        let index = (mix(seed, phase * 1009 + thread as u64 * 101 + i as u64)
                            % (pool.s_queries.len() + pool.m_queries.len()) as u64)
                            as usize;
                        let got = run_pool_entry(&engine, pool, index).unwrap_or_else(|e| {
                            panic!(
                                "[seed {seed}] {label}: thread {thread} query #{i} \
                                 (pool entry {index}, {workers} workers) failed: {e}"
                            )
                        });
                        assert_eq!(
                            got, expected[index],
                            "[seed {seed}] {label}: thread {thread} query #{i} \
                             (pool entry {index}, {workers} workers) diverged from \
                             the quiesced reference"
                        );
                    }
                });
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // The scripted trigger side: keep interleaving maintenance (or
        // ingest) until every query thread is done, so the race window
        // covers the whole phase.
        while running.load(Ordering::SeqCst) > 0 {
            interleave();
        }
    });
}

/// The tentpole harness (see the module docs).
#[test]
fn queries_racing_ingest_checkpoint_and_compaction_stay_bit_identical() {
    let seed = fault_seed();
    let dir = tmp_dir("harness");
    let s = scenario(&dir);
    let center = s.network.bounds().center();
    let pool = pool(center);

    // Live engine: WAL-backed, with a background maintenance worker whose
    // poll cadence races the rounds on its own, on top of the scripted
    // `run_now` trigger points.
    let live = Arc::new(
        ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("open live engine"),
    );
    live.attach_wal(dir.join("ingest.wal")).expect("attach WAL");
    let controller = streach_core::MaintenanceController::spawn(
        Arc::clone(&live),
        &dir,
        MaintenanceConfig {
            poll_interval: std::time::Duration::from_millis(20),
            compact_delta_ratio: Some(0.05),
            ..Default::default()
        },
    );

    // Quiesced reference: same base snapshot, volatile ingest, queried
    // single-threaded only between rounds.
    let reference =
        ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("open reference");

    let rounds = if cfg!(debug_assertions) {
        2.min(s.round_batches.len())
    } else {
        s.round_batches.len().min(4)
    };
    let queries_per_thread = if cfg!(debug_assertions) { 4 } else { 8 };

    for round in 0..rounds {
        // Barrier phase: the one operation that changes answers — a real
        // fleet-day batch — lands quiesced on both engines.
        let batch = &s.round_batches[round];
        live.ingest(batch)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: live ingest failed: {e}"));
        reference
            .ingest(batch)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: reference ingest: {e}"));
        let expected = pool_answers(&reference, &pool);
        assert_pool_answers(
            &live,
            &pool,
            &expected,
            seed,
            &format!("round {round} entry"),
        );

        // Phase A: queries race auto-checkpoint + compaction. `run_now`
        // blocks until the worker's pass (checkpoint and/or compaction)
        // completed, so passes run back to back for the whole phase.
        race_queries(
            &live,
            &pool,
            &expected,
            seed,
            round as u64 * 2,
            queries_per_thread,
            &format!("round {round} phase A (maintenance race)"),
            || controller.run_now(),
        );
        let maintenance_errors = controller.take_errors();
        assert!(
            maintenance_errors.is_empty(),
            "[seed {seed}] round {round}: background maintenance failed: {maintenance_errors:?}"
        );
        assert_pool_answers(
            &live,
            &pool,
            &expected,
            seed,
            &format!("round {round} post-A"),
        );

        // Phase B: queries race a live WAL ingest of slot-disjoint data
        // (plus whatever the background worker's own cadence does). The
        // ingest is split into pieces so the application keeps racing the
        // queries for the whole phase.
        let disjoint = disjoint_batch(batch, round);
        reference
            .ingest(&disjoint)
            .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: reference disjoint: {e}"));
        let pieces: Vec<&[TrajPoint]> = disjoint
            .chunks(disjoint.len().div_ceil(16).max(1))
            .collect();
        let mut next_piece = 0usize;
        race_queries(
            &live,
            &pool,
            &expected,
            seed,
            round as u64 * 2 + 1,
            queries_per_thread,
            &format!("round {round} phase B (ingest race)"),
            || {
                if next_piece < pieces.len() {
                    live.ingest(pieces[next_piece]).unwrap_or_else(|e| {
                        panic!("[seed {seed}] round {round}: racing ingest failed: {e}")
                    });
                    next_piece += 1;
                } else {
                    std::thread::yield_now();
                }
            },
        );
        // Drain any pieces the query threads outpaced, then guard-check
        // the disjointness premise: the racing data must not have changed
        // a single pool answer.
        for piece in &pieces[next_piece..] {
            live.ingest(piece)
                .unwrap_or_else(|e| panic!("[seed {seed}] round {round}: drain ingest: {e}"));
        }
        assert_pool_answers(
            &live,
            &pool,
            &expected,
            seed,
            &format!("round {round} post-B (disjointness guard)"),
        );
        assert_pool_answers(
            &reference,
            &pool,
            &expected,
            seed,
            &format!("round {round} reference guard"),
        );
    }

    // Final quiesced sweep, then crash + recovery: the auto-checkpoints
    // were taken at arbitrary points between batches, so the reopened
    // engine is checkpoint + WAL-tail replay — still bit-identical.
    let stats = controller.stats();
    assert!(
        stats.checkpoints > 0,
        "[seed {seed}] the harness must have exercised auto-checkpoints ({stats:?})"
    );
    assert!(
        stats.compactions > 0,
        "[seed {seed}] the harness must have exercised background compaction ({stats:?})"
    );
    let errors = controller.shutdown();
    assert!(
        errors.is_empty(),
        "[seed {seed}] shutdown errors: {errors:?}"
    );

    let expected = pool_answers(&reference, &pool);
    assert_pool_answers(&live, &pool, &expected, seed, "final live");
    drop(live); // crash

    let recovered =
        ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("reopen auto-checkpoint");
    // (Whether the log was rotated at the last checkpoint depends on the
    // race between the checkpoint and in-flight ingest — `records_skipped`
    // may legitimately be non-zero. What must hold is bit-identity.)
    recovered
        .attach_wal(dir.join("ingest.wal"))
        .expect("replay WAL tail");
    assert_pool_answers(&recovered, &pool, &expected, seed, "recovered engine");
    std::fs::remove_dir_all(&dir).ok();
}

/// Compile-time pin: the engine (and its maintenance controller) must stay
/// shareable across threads — the whole harness depends on it.
#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReachabilityEngine>();
    assert_send_sync::<streach_core::MaintenanceController>();
}
