//! Integration tests asserting the qualitative *shapes* the paper's
//! evaluation reports, on a small instance:
//!
//! * running time / reachable length grow with the duration `L` (Fig. 4.1),
//! * reachable length shrinks as `Prob` grows while the SQMB+TBS running
//!   time stays roughly flat (Fig. 4.3),
//! * the rush hour start time yields a smaller region than free-flow night
//!   time (Fig. 4.5/4.6),
//! * SQMB+TBS verifies far fewer segments than ES (the source of the
//!   50–90 % running-time reduction).

use std::sync::Arc;

use streach::prelude::*;

fn engine_with_all_day_fleet() -> (ReachabilityEngine, GeoPoint) {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 40,
            num_days: 6,
            day_start_s: 0,
            day_end_s: 86_400,
            seed: 99,
            ..FleetConfig::default()
        },
    );
    let engine = EngineBuilder::new(network, &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        })
        .build();
    (engine, center)
}

#[test]
fn reachable_length_grows_with_duration() {
    let (engine, center) = engine_with_all_day_fleet();
    let mut lengths = Vec::new();
    for minutes in [5u32, 15, 30] {
        let q = SQuery {
            location: center,
            start_time_s: 11 * 3600,
            duration_s: minutes * 60,
            prob: 0.2,
        };
        engine.warm_con_index(q.start_time_s, q.duration_s);
        let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
        lengths.push(outcome.region.total_length_km);
    }
    assert!(
        lengths[1] > lengths[0],
        "15-minute region must beat 5-minute region: {lengths:?}"
    );
    assert!(
        lengths[2] >= lengths[1],
        "30-minute region must not shrink: {lengths:?}"
    );
}

#[test]
fn region_shrinks_with_probability_but_verifications_stay_flat() {
    let (engine, center) = engine_with_all_day_fleet();
    engine.warm_con_index(11 * 3600, 900);
    let mut lengths = Vec::new();
    let mut verifications = Vec::new();
    for prob in [0.2, 0.6, 1.0] {
        let q = SQuery {
            location: center,
            start_time_s: 11 * 3600,
            duration_s: 900,
            prob,
        };
        let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
        lengths.push(outcome.region.total_length_km);
        verifications.push(outcome.stats.segments_verified);
    }
    assert!(
        lengths[0] >= lengths[1] && lengths[1] >= lengths[2],
        "lengths {lengths:?}"
    );
    // The number of verifications (the cost driver) does not depend on Prob:
    // the bounding regions are identical for every threshold.
    assert_eq!(verifications[0], verifications[1]);
    assert_eq!(verifications[1], verifications[2]);
}

#[test]
fn rush_hour_region_is_smaller_than_night_region() {
    let (engine, center) = engine_with_all_day_fleet();
    let mut by_time = Vec::new();
    for hour in [3u32, 8] {
        let q = SQuery {
            location: center,
            start_time_s: hour * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        engine.warm_con_index(q.start_time_s, q.duration_s);
        let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
        by_time.push((
            hour,
            outcome.region.total_length_km,
            outcome.stats.max_bounding_size,
        ));
    }
    let (_, night_km, night_bound) = by_time[0];
    let (_, rush_km, rush_bound) = by_time[1];
    assert!(
        night_km > rush_km,
        "night region ({night_km:.1} km) must exceed rush-hour region ({rush_km:.1} km)"
    );
    // The mechanism the paper describes: slower maximum speeds shrink the
    // maximum bounding region, which in turn reduces work.
    assert!(
        night_bound > rush_bound,
        "bounding region must shrink at rush hour"
    );
}

#[test]
fn index_based_algorithm_reduces_verifications_substantially() {
    let (engine, center) = engine_with_all_day_fleet();
    let q = SQuery {
        location: center,
        start_time_s: 11 * 3600,
        duration_s: 600,
        prob: 0.2,
    };
    engine.warm_con_index(q.start_time_s, q.duration_s);
    let es = engine.s_query(&q, Algorithm::ExhaustiveSearch);
    let fast = engine.s_query(&q, Algorithm::SqmbTbs);
    assert!(es.stats.segments_verified > 0);
    let ratio = fast.stats.segments_verified as f64 / es.stats.segments_verified as f64;
    assert!(
        ratio < 0.8,
        "SQMB+TBS should verify well under 80% of what ES verifies, got {:.0}% ({} vs {})",
        ratio * 100.0,
        fast.stats.segments_verified,
        es.stats.segments_verified
    );
    // And it reads fewer posting pages.
    assert!(
        fast.stats.io.cache_misses + fast.stats.io.cache_hits
            <= es.stats.io.cache_misses + es.stats.io.cache_hits
    );
}

#[test]
fn time_interval_granularity_leaves_result_roughly_stable() {
    // Fig. 4.7: Δt is a system parameter and should not change the result
    // much. Build two engines with different Δt over the same data.
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 40,
            num_days: 6,
            day_start_s: 0,
            day_end_s: 86_400,
            seed: 99,
            ..FleetConfig::default()
        },
    );
    let mut lengths = Vec::new();
    for slot_s in [300u32, 600] {
        let engine = EngineBuilder::new(network.clone(), &dataset)
            .index_config(IndexConfig {
                slot_s,
                read_latency_us: 0,
                ..Default::default()
            })
            .build();
        let q = SQuery {
            location: center,
            start_time_s: 11 * 3600,
            duration_s: 1200,
            prob: 0.2,
        };
        engine.warm_con_index(q.start_time_s, q.duration_s);
        let outcome = engine.s_query(&q, Algorithm::SqmbTbs);
        lengths.push(outcome.region.total_length_km);
    }
    let ratio = lengths[0].min(lengths[1]) / lengths[0].max(lengths[1]).max(1e-9);
    assert!(
        ratio > 0.5,
        "Δt = 5 vs 10 min changed the result too much: {lengths:?}"
    );
}
