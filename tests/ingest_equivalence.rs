//! Streaming-ingest equivalence suite: an engine that ingests K extra
//! fleet-days point by point must answer **bit-identically** to an engine
//! rebuilt from scratch on the combined dataset — on all four query
//! pipelines, before and after compaction, and across an incremental
//! snapshot save + reopen + WAL replay. Plus `snapshot_roundtrip.rs`-style
//! corruption checks on the new incremental artifacts.

use std::path::PathBuf;
use std::sync::Arc;

use streach::prelude::*;
use streach::storage::StorageError;
use streach_core::query::MQueryAlgorithm;

/// Days in the base dataset; the extra `K` days arrive via ingest.
const BASE_DAYS: u16 = 3;
/// Extra fleet-days ingested on top of the base.
const EXTRA_DAYS: u16 = 2;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streach-ingest-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IndexConfig {
    IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    }
}

/// One simulation of the full (base + extra) fleet, split so that base and
/// extra trajectories carry consistent IDs: `base` covers dates `0..BASE_DAYS`,
/// `extra` the remaining `EXTRA_DAYS`.
struct Scenario {
    network: Arc<RoadNetwork>,
    base: TrajectoryDataset,
    combined: TrajectoryDataset,
    /// The extra fleet-days, one `Vec<TrajPoint>` per trajectory, in
    /// dataset order.
    extra_batches: Vec<Vec<TrajPoint>>,
}

fn scenario() -> Scenario {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 14,
            num_days: BASE_DAYS + EXTRA_DAYS,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 23,
            ..FleetConfig::default()
        },
    );
    let num_taxis = full.num_taxis();
    let base_trajs: Vec<_> = full
        .trajectories()
        .iter()
        .filter(|t| t.date < BASE_DAYS)
        .cloned()
        .collect();
    let extra_batches: Vec<Vec<TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= BASE_DAYS)
        .map(|t| points_of(t).collect())
        .collect();
    assert!(!extra_batches.is_empty(), "scenario needs extra fleet-days");
    let base = TrajectoryDataset::from_matched(base_trajs, num_taxis, BASE_DAYS);
    let combined = TrajectoryDataset::from_matched(
        full.trajectories().to_vec(),
        num_taxis,
        BASE_DAYS + EXTRA_DAYS,
    );
    Scenario {
        network,
        base,
        combined,
        extra_batches,
    }
}

/// The query workload every equivalence assertion sweeps: all four
/// pipelines at several (start, duration, prob) combinations, including a
/// cross-midnight window.
fn workload(center: GeoPoint) -> Vec<(SQuery, MQuery)> {
    let mut out = Vec::new();
    for (start, duration) in [
        (9 * 3600u32, 300u32),
        (10 * 3600 + 900, 900),
        (11 * 3600, 600),
        (23 * 3600 + 55 * 60, 600),
    ] {
        for prob in [0.25, 0.6] {
            out.push((
                SQuery {
                    location: center,
                    start_time_s: start,
                    duration_s: duration,
                    prob,
                },
                MQuery {
                    locations: vec![center, center.offset_m(900.0, -600.0)],
                    start_time_s: start,
                    duration_s: duration,
                    prob,
                },
            ));
        }
    }
    out
}

/// Asserts that both engines answer the whole workload bit-identically on
/// all four pipelines (regions and total lengths).
fn assert_bit_identical(a: &ReachabilityEngine, b: &ReachabilityEngine, label: &str) {
    let center = a.network().bounds().center();
    for (i, (sq, mq)) in workload(center).iter().enumerate() {
        for algo in [Algorithm::SqmbTbs, Algorithm::ExhaustiveSearch] {
            let ra = a.try_s_query(sq, algo).expect("engine A s-query");
            let rb = b.try_s_query(sq, algo).expect("engine B s-query");
            assert_eq!(
                ra.region.segments, rb.region.segments,
                "{label}: s-query #{i} ({algo:?}) regions diverged"
            );
            assert_eq!(
                ra.region.total_length_km.to_bits(),
                rb.region.total_length_km.to_bits(),
                "{label}: s-query #{i} ({algo:?}) lengths diverged"
            );
        }
        for algo in [MQueryAlgorithm::MqmbTbs, MQueryAlgorithm::RepeatedSQuery] {
            let ra = a.try_m_query(mq, algo).expect("engine A m-query");
            let rb = b.try_m_query(mq, algo).expect("engine B m-query");
            assert_eq!(
                ra.region.segments, rb.region.segments,
                "{label}: m-query #{i} ({algo:?}) regions diverged"
            );
            assert_eq!(
                ra.region.total_length_km.to_bits(),
                rb.region.total_length_km.to_bits(),
                "{label}: m-query #{i} ({algo:?}) lengths diverged"
            );
        }
    }
}

/// The tentpole guarantee: base-engine + point-by-point ingest ==
/// from-scratch rebuild on the combined dataset, bit-exactly, on every
/// pipeline — and compaction preserves it while matching the rebuilt
/// engine's physical layout.
#[test]
fn ingested_engine_matches_rebuilt_engine_bit_exactly() {
    let s = scenario();
    let ingested = streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .build();
    let rebuilt = streach::core::EngineBuilder::new(s.network.clone(), &s.combined)
        .index_config(config())
        .build();

    // Sanity: the extra days actually change answers (the day count `m`
    // enters every probability denominator).
    let center = s.network.bounds().center();
    let probe = workload(center)[0].0;
    let before = ingested.s_query(&probe, Algorithm::SqmbTbs);
    assert_eq!(ingested.st_index().num_days(), BASE_DAYS);

    let mut total_points = 0usize;
    for batch in &s.extra_batches {
        let outcome = ingested.ingest(batch).expect("ingest batch");
        assert_eq!(outcome.points, batch.len());
        assert_eq!(outcome.wal_ordinal, None, "no WAL attached");
        total_points += outcome.points;
    }
    assert!(total_points > 0);
    assert_eq!(ingested.st_index().num_days(), BASE_DAYS + EXTRA_DAYS);
    assert!(ingested.st_index().delta_stats().delta_lists > 0);
    let after = ingested.s_query(&probe, Algorithm::SqmbTbs);
    assert_ne!(
        before.region.segments, after.region.segments,
        "ingesting {EXTRA_DAYS} fleet-days must change at least the probe query"
    );

    assert_bit_identical(&ingested, &rebuilt, "ingested vs rebuilt");
    assert_eq!(
        ingested.st_index().stats().num_observations,
        rebuilt.st_index().stats().num_observations,
        "observation counts must match the combined dataset"
    );

    // Compaction folds the delta into a sealed base that matches the
    // rebuilt engine's layout exactly — stats and all.
    let folded = ingested.compact().expect("compact");
    assert!(folded.delta_lists > 0);
    assert_eq!(ingested.st_index().delta_stats(), Default::default());
    assert_eq!(
        ingested.st_index().stats(),
        rebuilt.st_index().stats(),
        "compacted base must be laid out exactly like a from-scratch build"
    );
    assert_bit_identical(&ingested, &rebuilt, "compacted vs rebuilt");
    // Compacting again is a no-op.
    assert_eq!(
        ingested.compact().expect("idempotent compact").delta_lists,
        0
    );
}

/// The posting-heap wire encoding must be invisible to the equivalence
/// guarantee: with compression on (the default delta/varint), with the
/// tagged raw encoding, and with the untagged legacy heap, base + ingest ==
/// from-scratch rebuild bit-exactly on all four pipelines — and compaction
/// (which copies blob bytes verbatim, preserving each blob's encoding)
/// keeps it that way.
#[test]
fn ingest_equivalence_holds_on_every_posting_encoding() {
    use streach::storage::PostingEncoding;

    let s = scenario();
    for encoding in [
        PostingEncoding::LegacyRaw,
        PostingEncoding::Raw,
        PostingEncoding::Delta,
    ] {
        let cfg = IndexConfig {
            posting_encoding: encoding,
            ..config()
        };
        let ingested = streach::core::EngineBuilder::new(s.network.clone(), &s.base)
            .index_config(cfg.clone())
            .build();
        let rebuilt = streach::core::EngineBuilder::new(s.network.clone(), &s.combined)
            .index_config(cfg)
            .build();
        for batch in &s.extra_batches {
            ingested.ingest(batch).expect("ingest batch");
        }
        assert_bit_identical(
            &ingested,
            &rebuilt,
            &format!("{encoding:?}: ingested vs rebuilt"),
        );
        ingested.compact().expect("compact");
        assert_eq!(
            ingested.st_index().stats(),
            rebuilt.st_index().stats(),
            "{encoding:?}: compacted base must match the from-scratch layout"
        );
        assert_bit_identical(
            &ingested,
            &rebuilt,
            &format!("{encoding:?}: compacted vs rebuilt"),
        );
    }
}

/// Ingest order must not matter: interleaving the batches point-group-wise
/// converges to the same engine (the delta merge is a sorted-set union).
#[test]
fn ingest_is_batch_order_insensitive() {
    let s = scenario();
    let a = streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .build();
    let b = streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .build();
    for batch in &s.extra_batches {
        a.ingest(batch).expect("forward ingest");
    }
    for batch in s.extra_batches.iter().rev() {
        b.ingest(batch).expect("reverse ingest");
    }
    assert_bit_identical(&a, &b, "forward vs reverse batch order");
}

/// The full streaming lifecycle across processes: open snapshot → attach
/// WAL → ingest → incremental save → reopen + replay → more ingest →
/// compact — bit-identical to the rebuilt engine at every step.
#[test]
fn wal_backed_lifecycle_roundtrips_through_incremental_snapshots() {
    let s = scenario();
    let dir = tmp_dir("lifecycle");
    let wal_path = dir.join("ingest.wal");
    streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save base snapshot");
    let rebuilt = streach::core::EngineBuilder::new(s.network.clone(), &s.combined)
        .index_config(config())
        .build();

    let half = s.extra_batches.len() / 2;
    assert!(half > 0);

    // Process 1: ingest the first half through the WAL, then checkpoint.
    {
        let engine = ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("open base");
        let attach = engine.attach_wal(&wal_path).expect("attach fresh WAL");
        assert_eq!(attach.records_replayed, 0);
        for batch in &s.extra_batches[..half] {
            engine.ingest(batch).expect("ingest first half");
        }
        engine
            .save_incremental_snapshot(&dir)
            .expect("incremental checkpoint");
        // The checkpoint folded every WAL record: the log rotated empty.
        let wal_len = std::fs::metadata(&wal_path).expect("wal exists").len();
        assert!(
            wal_len < 64,
            "rotated WAL must be header-only, got {wal_len} bytes"
        );
    }

    // Process 2: crash-free restart — nothing to replay, deltas come from
    // the incremental snapshot; ingest the second half but "crash" before
    // any checkpoint (drop without saving).
    {
        let engine =
            ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("reopen checkpoint");
        assert!(
            engine.st_index().delta_stats().delta_lists > 0,
            "incremental snapshot must restore the delta tail"
        );
        let attach = engine.attach_wal(&wal_path).expect("re-attach WAL");
        assert_eq!(attach.records_replayed, 0, "checkpoint covers the log");
        for batch in &s.extra_batches[half..] {
            engine.ingest(batch).expect("ingest second half");
        }
        assert_bit_identical(&engine, &rebuilt, "pre-crash engine vs rebuilt");
    }

    // Process 3: recovery — the checkpoint plus the WAL tail reconstruct
    // the full combined state; then compact and save a final snapshot.
    let final_dir = tmp_dir("lifecycle-final");
    {
        let engine =
            ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("reopen after crash");
        let attach = engine.attach_wal(&wal_path).expect("replay WAL tail");
        assert_eq!(
            attach.records_replayed,
            (s.extra_batches.len() - half) as u64,
            "exactly the unfolded records replay"
        );
        assert_bit_identical(&engine, &rebuilt, "recovered engine vs rebuilt");

        engine.compact().expect("compact");
        assert_eq!(
            engine.st_index().stats(),
            rebuilt.st_index().stats(),
            "compacted recovery must match the rebuilt layout"
        );
        engine.save_snapshot(&final_dir).expect("save compacted");
    }

    // The compacted snapshot reopens into the combined engine.
    let reopened =
        ReachabilityEngine::open_snapshot(&final_dir, s.network.clone()).expect("reopen final");
    assert_bit_identical(&reopened, &rebuilt, "final snapshot vs rebuilt");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&final_dir).ok();
}

/// Corruption checks on the incremental artifacts, in the style of
/// `snapshot_roundtrip.rs`: a flipped byte or truncation in `deltas.pages`
/// and a flipped byte in each delta container section must be rejected at
/// open — no damaged delta may reach query processing.
#[test]
fn corrupted_incremental_snapshot_is_rejected() {
    let s = scenario();
    let dir = tmp_dir("corrupt-incremental");
    streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save base");
    {
        let engine = ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("open base");
        for batch in &s.extra_batches {
            engine.ingest(batch).expect("ingest");
        }
        engine
            .save_incremental_snapshot(&dir)
            .expect("incremental save");
    }
    // Pristine snapshot opens fine.
    assert!(ReachabilityEngine::open_snapshot(&dir, s.network.clone()).is_ok());

    // Bit rot in the delta page file (length intact). The file carries a
    // per-checkpoint sequence number in its name; exactly one must exist
    // after the save (superseded ones are garbage-collected).
    let delta_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                n.starts_with(streach::core::snapshot::DELTA_PAGES_PREFIX) && n.ends_with(".pages")
            })
        })
        .collect();
    assert_eq!(
        delta_files.len(),
        1,
        "exactly one committed delta file expected, got {delta_files:?}"
    );
    let delta_path = delta_files[0].clone();
    let clean_deltas = std::fs::read(&delta_path).unwrap();
    assert!(!clean_deltas.is_empty(), "delta heap must not be empty");
    let mut rotten = clean_deltas.clone();
    let mid = rotten.len() / 2;
    rotten[mid] ^= 0x08;
    std::fs::write(&delta_path, &rotten).unwrap();
    match ReachabilityEngine::open_snapshot(&dir, s.network.clone()) {
        Err(StorageError::Corrupt { context }) => {
            assert!(context.contains("checksum"), "{context}")
        }
        Err(other) => panic!("delta bit rot must be rejected as Corrupt, got {other}"),
        Ok(_) => panic!("delta bit rot must be rejected"),
    }

    // Truncation of the delta page file.
    std::fs::write(&delta_path, &clean_deltas[..clean_deltas.len() / 2]).unwrap();
    assert!(matches!(
        ReachabilityEngine::open_snapshot(&dir, s.network.clone()),
        Err(StorageError::Corrupt { .. })
    ));
    std::fs::write(&delta_path, &clean_deltas).unwrap();

    // A flipped byte inside each delta section's payload (walking the
    // documented container layout) is caught by the per-section CRC.
    let container = dir.join(streach::core::snapshot::CONTAINER_FILE);
    let clean = std::fs::read(&container).unwrap();
    let section_count = u32::from_le_bytes(clean[12..16].try_into().unwrap()) as usize;
    let mut cursor = 16usize;
    let mut delta_sections = 0;
    for _ in 0..section_count {
        let name_len = u16::from_le_bytes(clean[cursor..cursor + 2].try_into().unwrap()) as usize;
        let name = String::from_utf8(clean[cursor + 2..cursor + 2 + name_len].to_vec()).unwrap();
        let payload_len = u64::from_le_bytes(
            clean[cursor + 2 + name_len..cursor + 10 + name_len]
                .try_into()
                .unwrap(),
        ) as usize;
        let payload_start = cursor + 14 + name_len;
        if matches!(
            name.as_str(),
            "delta_pages_meta" | "delta_dir" | "ingest_meta"
        ) && payload_len > 0
        {
            delta_sections += 1;
            let mut bad = clean.clone();
            bad[payload_start + payload_len / 2] ^= 0x10;
            std::fs::write(&container, &bad).unwrap();
            assert!(
                matches!(
                    ReachabilityEngine::open_snapshot(&dir, s.network.clone()),
                    Err(StorageError::Corrupt { .. })
                ),
                "flipped byte in section {name} must be rejected"
            );
        }
        cursor = payload_start + payload_len;
    }
    assert!(
        delta_sections >= 2,
        "expected the delta container sections to be present and non-empty"
    );
    std::fs::write(&container, &clean).unwrap();
    assert!(ReachabilityEngine::open_snapshot(&dir, s.network).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed ingest input is rejected up front, before anything is logged
/// or applied.
#[test]
fn invalid_points_are_rejected_before_application() {
    let s = scenario();
    let engine = streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .build();
    let stats_before = engine.st_index().stats();
    let bogus_segment = TrajPoint {
        traj_id: 1,
        date: 3,
        segment: SegmentId(u32::MAX),
        enter_time_s: 9 * 3600,
    };
    let err = engine.ingest(&[bogus_segment]).unwrap_err();
    assert!(err.to_string().contains("segment"), "{err}");
    let bogus_date = TrajPoint {
        traj_id: 1,
        date: u16::MAX,
        segment: s.extra_batches[0][0].segment,
        enter_time_s: 9 * 3600,
    };
    assert!(engine.ingest(&[bogus_date]).is_err());
    assert_eq!(engine.st_index().stats(), stats_before);
    assert_eq!(engine.st_index().delta_stats(), Default::default());
}

/// Mid-trajectory continuation: the base dataset ends with trajectories
/// cut off mid-day, and ingest delivers their remaining points. The builder
/// seeds the last-visit table from the batch data, so the boundary speed
/// pair (last base visit -> first ingested visit) and same-segment dedup
/// match a from-scratch build on the uncut trajectories bit-exactly.
#[test]
fn mid_trajectory_continuation_matches_rebuilt_engine() {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 12,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 41,
            ..FleetConfig::default()
        },
    );
    let mut base_trajs = full.trajectories().to_vec();
    let mut continuations: Vec<Vec<TrajPoint>> = Vec::new();
    for traj in base_trajs.iter_mut().filter(|t| t.date == 2) {
        let cut = traj.visits.len() / 2;
        if cut == 0 {
            continue;
        }
        let tail = traj.visits.split_off(cut);
        continuations.push(
            tail.iter()
                .map(|v| TrajPoint {
                    traj_id: traj.traj_id,
                    date: traj.date,
                    segment: v.segment,
                    enter_time_s: v.enter_time_s,
                })
                .collect(),
        );
    }
    assert!(!continuations.is_empty(), "need trajectories to continue");

    let ingested = streach::core::EngineBuilder::new(
        network.clone(),
        &TrajectoryDataset::from_matched(base_trajs, full.num_taxis(), 3),
    )
    .index_config(config())
    .build();
    for batch in &continuations {
        ingested.ingest(batch).expect("ingest continuation");
    }
    let rebuilt = streach::core::EngineBuilder::new(
        network.clone(),
        &TrajectoryDataset::from_matched(full.trajectories().to_vec(), full.num_taxis(), 3),
    )
    .index_config(config())
    .build();
    // The boundary speed pairs (last base visit -> first ingested visit)
    // must be derived: without the seeded last-visit table the ingested
    // engine would hold fewer observations than the rebuild.
    assert_eq!(
        ingested.con_index().speed_observations(),
        rebuilt.con_index().speed_observations(),
        "continued vs rebuilt: speed observation counts diverged"
    );
    assert_bit_identical(&ingested, &rebuilt, "continued vs rebuilt");

    ingested.compact().expect("compact");
    assert_eq!(
        ingested.st_index().stats(),
        rebuilt.st_index().stats(),
        "compacted continuation must match the rebuilt layout"
    );
    assert_bit_identical(&ingested, &rebuilt, "compacted continuation vs rebuilt");
}

/// A CRC-valid WAL record naming a segment outside the network (e.g. a log
/// written against a different city) must fail `attach_wal` with a typed
/// error naming the record — never a panic during recovery.
#[test]
fn wal_replay_rejects_points_for_a_different_network() {
    use streach::storage::Wal;

    let s = scenario();
    let dir = tmp_dir("foreign-wal");
    streach::core::EngineBuilder::new(s.network.clone(), &s.base)
        .index_config(config())
        .save_snapshot(&dir)
        .expect("save base");
    let wal_path = dir.join("foreign.wal");
    {
        let (wal, _, _) = Wal::open(&wal_path).expect("create wal");
        // Hand-framed ingest record: 1 point naming segment 1_000_000.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // point count
        payload.extend_from_slice(&7u32.to_le_bytes()); // traj_id
        payload.extend_from_slice(&3u16.to_le_bytes()); // date
        payload.extend_from_slice(&1_000_000u32.to_le_bytes()); // segment
        payload.extend_from_slice(&(9 * 3600u32).to_le_bytes()); // enter
        wal.append(&payload).expect("append");
        wal.sync().expect("sync");
    }
    let engine = ReachabilityEngine::open_snapshot(&dir, s.network.clone()).expect("open");
    match engine.attach_wal(&wal_path) {
        Err(StorageError::Corrupt { context }) => {
            assert!(context.contains("record #0"), "{context}");
            assert!(context.contains("segment"), "{context}");
        }
        Err(other) => panic!("expected typed validation failure, got {other}"),
        Ok(_) => panic!("foreign WAL record must not replay"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
