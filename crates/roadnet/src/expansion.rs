//! Time-budgeted network expansion.
//!
//! The Con-Index is built by "a modified conventional network expansion
//! algorithm [21]": starting from a road segment, the network is expanded
//! using a per-segment travel speed until a time budget (one Δt slot for the
//! Con-Index, the whole duration `L` for the exhaustive-search baseline) is
//! exhausted. The Near ID list uses the historical *minimum* observed speed,
//! the Far ID list the *maximum* speed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::dijkstra::HeapEntry;
use crate::graph::RoadNetwork;
use crate::segment::SegmentId;

/// Result of a network expansion.
#[derive(Debug, Clone, Default)]
pub struct ExpansionResult {
    /// Earliest arrival time in seconds for every segment reached within the
    /// budget (start segments have arrival 0).
    pub arrival_s: HashMap<SegmentId, f64>,
}

impl ExpansionResult {
    /// Segments reached within the budget, in unspecified order.
    pub fn reached(&self) -> Vec<SegmentId> {
        self.arrival_s.keys().copied().collect()
    }

    /// Number of segments reached.
    pub fn len(&self) -> usize {
        self.arrival_s.len()
    }

    /// Returns `true` when nothing was reached (impossible when at least one
    /// start segment is given).
    pub fn is_empty(&self) -> bool {
        self.arrival_s.is_empty()
    }

    /// Returns `true` if the given segment was reached.
    pub fn contains(&self, seg: SegmentId) -> bool {
        self.arrival_s.contains_key(&seg)
    }
}

/// Expands the network from `start_segments`, traversing each segment at the
/// speed (m/s) returned by `speed_ms`, and returns every segment whose
/// earliest arrival time is within `budget_s` seconds.
///
/// Traversal cost is charged when *entering* a segment (the expansion starts
/// at the head of the start segments, matching the paper's convention that
/// the query location lies on the start road segment). Segments for which
/// `speed_ms` returns a non-positive value are treated as impassable.
pub fn expand_within_time<F>(
    network: &RoadNetwork,
    start_segments: &[SegmentId],
    budget_s: f64,
    mut speed_ms: F,
) -> ExpansionResult
where
    F: FnMut(SegmentId) -> f64,
{
    let mut arrival: HashMap<SegmentId, f64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    for &s in start_segments {
        arrival.insert(s, 0.0);
        heap.push(Reverse(HeapEntry {
            dist: 0.0,
            item: s.0,
        }));
    }
    while let Some(Reverse(HeapEntry { dist: t, item })) = heap.pop() {
        let seg = SegmentId(item);
        if t > *arrival.get(&seg).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for next in network.successors(seg) {
            let speed = speed_ms(next);
            if speed <= 0.0 {
                continue;
            }
            let cost = network.segment(next).length_m / speed;
            let nt = t + cost;
            if nt <= budget_s && nt < *arrival.get(&next).unwrap_or(&f64::INFINITY) {
                arrival.insert(next, nt);
                heap.push(Reverse(HeapEntry {
                    dist: nt,
                    item: next.0,
                }));
            }
        }
    }
    ExpansionResult { arrival_s: arrival }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RawRoad, RoadNetwork};
    use crate::segment::{Direction, RoadClass};
    use streach_geo::{GeoPoint, Polyline};

    /// A straight chain of ten 500 m local segments.
    fn chain() -> RoadNetwork {
        let origin = GeoPoint::new(114.0, 22.5);
        let mut roads = Vec::new();
        for i in 0..10 {
            let a = origin.offset_m(i as f64 * 500.0, 0.0);
            let b = origin.offset_m((i + 1) as f64 * 500.0, 0.0);
            roads.push(RawRoad {
                geometry: Polyline::straight(a, b),
                class: RoadClass::Local,
                direction: Direction::OneWay,
            });
        }
        RoadNetwork::from_roads(&roads)
    }

    #[test]
    fn expansion_respects_time_budget() {
        let net = chain();
        // 10 m/s on every segment: each 500 m segment costs 50 s.
        let result = expand_within_time(&net, &[SegmentId(0)], 120.0, |_| 10.0);
        // Start + two more segments (50 s, 100 s); the fourth would arrive at 150 s.
        assert_eq!(result.len(), 3);
        assert!(result.contains(SegmentId(0)));
        assert!(result.contains(SegmentId(1)));
        assert!(result.contains(SegmentId(2)));
        assert!(!result.contains(SegmentId(3)));
        assert_eq!(result.arrival_s[&SegmentId(0)], 0.0);
        assert!((result.arrival_s[&SegmentId(2)] - 100.0).abs() < 1.0);
    }

    #[test]
    fn faster_speed_reaches_farther() {
        let net = chain();
        let slow = expand_within_time(&net, &[SegmentId(0)], 200.0, |_| 5.0);
        let fast = expand_within_time(&net, &[SegmentId(0)], 200.0, |_| 20.0);
        assert!(fast.len() > slow.len());
        // Every segment reached slowly is also reached quickly (monotonicity).
        for seg in slow.reached() {
            assert!(fast.contains(seg));
        }
    }

    #[test]
    fn zero_speed_blocks_expansion() {
        let net = chain();
        // Segment 2 is impassable.
        let result = expand_within_time(&net, &[SegmentId(0)], 1e6, |s| {
            if s == SegmentId(2) {
                0.0
            } else {
                10.0
            }
        });
        assert!(result.contains(SegmentId(1)));
        assert!(!result.contains(SegmentId(2)));
        assert!(!result.contains(SegmentId(5)));
    }

    #[test]
    fn multiple_starts_take_minimum_arrival() {
        let net = chain();
        let result = expand_within_time(&net, &[SegmentId(0), SegmentId(5)], 60.0, |_| 10.0);
        assert!(result.contains(SegmentId(6)));
        assert!((result.arrival_s[&SegmentId(6)] - 50.0).abs() < 1.0);
        assert!(result.contains(SegmentId(1)));
        assert!(!result.contains(SegmentId(3)));
        assert_eq!(result.arrival_s[&SegmentId(5)], 0.0);
    }

    #[test]
    fn zero_budget_reaches_only_starts() {
        let net = chain();
        let result = expand_within_time(&net, &[SegmentId(3)], 0.0, |_| 10.0);
        assert_eq!(result.len(), 1);
        assert!(result.contains(SegmentId(3)));
    }

    #[test]
    fn arrival_times_are_monotone_along_the_chain() {
        let net = chain();
        let result = expand_within_time(&net, &[SegmentId(0)], 1e6, |_| 12.0);
        assert_eq!(result.len(), 10);
        for i in 1..10u32 {
            assert!(
                result.arrival_s[&SegmentId(i)] > result.arrival_s[&SegmentId(i - 1)],
                "arrival times must increase along the chain"
            );
        }
    }
}
