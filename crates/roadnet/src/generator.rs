//! Synthetic metropolis generator.
//!
//! The paper evaluates on the road network of Shenzhen, China (about 400
//! square miles). That data is not redistributable, so this module generates
//! a synthetic metropolitan network with the structural features the
//! evaluation relies on:
//!
//! * a dense grid of low-speed local streets,
//! * periodic primary/secondary arterials,
//! * a small number of high-speed expressways crossing the city,
//! * slight geometric jitter so segments are not axis-aligned rectangles.
//!
//! The generated raw roads are passed through the re-segmentation step and a
//! [`RoadNetwork`] is built, exactly as a real import would be.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use streach_geo::{GeoPoint, Polyline};

use crate::graph::{RawRoad, RoadNetwork};
use crate::resegment::resegment_roads;
use crate::segment::{Direction, RoadClass};

/// Configuration of the synthetic city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of north–south grid lines (columns of intersections).
    pub cols: usize,
    /// Number of east–west grid lines (rows of intersections).
    pub rows: usize,
    /// Spacing between adjacent grid lines, in meters.
    pub block_m: f64,
    /// South-west corner of the city.
    pub origin: GeoPoint,
    /// Every `highway_period`-th grid line is an expressway.
    pub highway_period: usize,
    /// Every `primary_period`-th grid line is a primary arterial.
    pub primary_period: usize,
    /// Maximum random displacement applied to every intersection, in meters.
    pub jitter_m: f64,
    /// Road re-segmentation granularity in meters (paper default: 500 m).
    pub granularity_m: f64,
    /// RNG seed: the same seed always produces the same city.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            cols: 33,
            rows: 33,
            block_m: 500.0,
            origin: GeoPoint::new(113.90, 22.45),
            highway_period: 8,
            primary_period: 4,
            jitter_m: 40.0,
            granularity_m: 500.0,
            seed: 42,
        }
    }
}

impl GeneratorConfig {
    /// A small city (good for unit tests): 9×9 grid, ~4 km across.
    pub fn small() -> Self {
        Self {
            cols: 9,
            rows: 9,
            seed: 7,
            ..Self::default()
        }
    }

    /// A medium city used by the examples: 21×21 grid, ~10 km across.
    pub fn medium() -> Self {
        Self {
            cols: 21,
            rows: 21,
            seed: 11,
            ..Self::default()
        }
    }

    /// Approximate extent of the city in kilometres, `(east-west, north-south)`.
    pub fn extent_km(&self) -> (f64, f64) {
        (
            (self.cols.saturating_sub(1)) as f64 * self.block_m / 1000.0,
            (self.rows.saturating_sub(1)) as f64 * self.block_m / 1000.0,
        )
    }
}

/// A generated city: the road network plus the configuration it came from.
pub struct SyntheticCity {
    /// The re-segmented road network.
    pub network: RoadNetwork,
    /// The configuration used to generate it.
    pub config: GeneratorConfig,
}

impl SyntheticCity {
    /// Generates the city deterministically from `config.seed`.
    #[allow(clippy::needless_range_loop)] // grid[i][j] indexing is clearer than iterator chains here
    pub fn generate(config: GeneratorConfig) -> Self {
        assert!(
            config.cols >= 2 && config.rows >= 2,
            "city needs at least a 2x2 grid"
        );
        assert!(config.block_m > 0.0, "block size must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Jittered intersection positions.
        let mut grid: Vec<Vec<GeoPoint>> = Vec::with_capacity(config.cols);
        for i in 0..config.cols {
            let mut column = Vec::with_capacity(config.rows);
            for j in 0..config.rows {
                let jitter_x = if config.jitter_m > 0.0 {
                    rng.gen_range(-config.jitter_m..config.jitter_m)
                } else {
                    0.0
                };
                let jitter_y = if config.jitter_m > 0.0 {
                    rng.gen_range(-config.jitter_m..config.jitter_m)
                } else {
                    0.0
                };
                column.push(config.origin.offset_m(
                    i as f64 * config.block_m + jitter_x,
                    j as f64 * config.block_m + jitter_y,
                ));
            }
            grid.push(column);
        }

        let class_of_line = |index: usize| -> RoadClass {
            if config.highway_period > 0
                && index % config.highway_period == config.highway_period / 2
            {
                RoadClass::Highway
            } else if config.primary_period > 0 && index.is_multiple_of(config.primary_period) {
                RoadClass::Primary
            } else if index.is_multiple_of(2) {
                RoadClass::Secondary
            } else {
                RoadClass::Local
            }
        };

        let mut roads: Vec<RawRoad> = Vec::new();
        // East–west roads (one per row j).
        for j in 0..config.rows {
            let class = class_of_line(j);
            for i in 0..config.cols - 1 {
                roads.push(RawRoad {
                    geometry: Polyline::straight(grid[i][j], grid[i + 1][j]),
                    class,
                    direction: Direction::TwoWay,
                });
            }
        }
        // North–south roads (one per column i).
        for (i, column) in grid.iter().enumerate() {
            let class = class_of_line(i);
            for j in 0..config.rows - 1 {
                roads.push(RawRoad {
                    geometry: Polyline::straight(column[j], column[j + 1]),
                    class,
                    direction: Direction::TwoWay,
                });
            }
        }
        // One diagonal expressway crossing the city, to break the pure grid
        // topology (long trips naturally route onto it).
        let diag_points: Vec<GeoPoint> = (0..config.cols.min(config.rows))
            .map(|k| grid[k][k])
            .collect();
        if diag_points.len() >= 2 {
            for w in diag_points.windows(2) {
                roads.push(RawRoad {
                    geometry: Polyline::straight(w[0], w[1]),
                    class: RoadClass::Highway,
                    direction: Direction::TwoWay,
                });
            }
        }

        let resegmented = resegment_roads(&roads, config.granularity_m);
        let network = RoadNetwork::from_roads(&resegmented);
        Self { network, config }
    }

    /// The intersection closest to the geometric centre of the city — a
    /// convenient default query location.
    pub fn central_point(&self) -> GeoPoint {
        self.network.bounds().center()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path_between_nodes;
    use crate::graph::NodeId;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCity::generate(GeneratorConfig::small());
        let b = SyntheticCity::generate(GeneratorConfig::small());
        assert_eq!(a.network.num_segments(), b.network.num_segments());
        assert_eq!(a.network.num_nodes(), b.network.num_nodes());
        let pa = a
            .network
            .segment(crate::segment::SegmentId(10))
            .geometry
            .start();
        let pb = b
            .network
            .segment(crate::segment::SegmentId(10))
            .geometry
            .start();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCity::generate(GeneratorConfig::small());
        let b = SyntheticCity::generate(GeneratorConfig {
            seed: 99,
            ..GeneratorConfig::small()
        });
        let pa = a
            .network
            .segment(crate::segment::SegmentId(10))
            .geometry
            .start();
        let pb = b
            .network
            .segment(crate::segment::SegmentId(10))
            .geometry
            .start();
        assert_ne!(pa, pb);
    }

    #[test]
    fn small_city_has_reasonable_size() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let net = &city.network;
        assert!(net.num_nodes() >= 81, "nodes {}", net.num_nodes());
        // 9x9 grid: 2 * 9 * 8 = 144 undirected edges plus the diagonal, all
        // two-way, so at least 288 directed segments.
        assert!(net.num_segments() >= 288, "segments {}", net.num_segments());
        let hist = net.class_histogram();
        assert!(hist.contains_key(&RoadClass::Highway));
        assert!(hist.contains_key(&RoadClass::Primary));
        assert!(hist.contains_key(&RoadClass::Local));
        // Local streets dominate highways.
        assert!(hist[&RoadClass::Local] + hist[&RoadClass::Secondary] > hist[&RoadClass::Highway]);
    }

    #[test]
    fn extent_matches_config() {
        let cfg = GeneratorConfig::small();
        let (w, h) = cfg.extent_km();
        assert!((w - 4.0).abs() < 1e-9);
        assert!((h - 4.0).abs() < 1e-9);
        let city = SyntheticCity::generate(cfg);
        let bounds = city.network.bounds();
        let diag_km = GeoPoint::new(bounds.min_lon, bounds.min_lat)
            .haversine_m(&GeoPoint::new(bounds.max_lon, bounds.max_lat))
            / 1000.0;
        // Diagonal of a ~4x4 km box (plus jitter) is about 5.7 km.
        assert!((diag_km - 5.7).abs() < 0.5, "diagonal {diag_km}");
    }

    #[test]
    fn city_is_strongly_connected_enough_for_routing() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let net = &city.network;
        // Route between opposite corners of the network.
        let bounds = net.bounds();
        let sw = net
            .nearest_segment(&GeoPoint::new(bounds.min_lon, bounds.min_lat))
            .unwrap()
            .0;
        let ne = net
            .nearest_segment(&GeoPoint::new(bounds.max_lon, bounds.max_lat))
            .unwrap()
            .0;
        let from = net.segment(sw).start_node;
        let to = net.segment(ne).end_node;
        let path = shortest_path_between_nodes(net, from, to);
        assert!(path.is_some(), "corner-to-corner route must exist");
        let (_, dist) = path.unwrap();
        assert!(dist > 4000.0, "route length {dist}");
    }

    #[test]
    fn nearest_segment_to_center_exists() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let (seg, d) = city.network.nearest_segment(&city.central_point()).unwrap();
        assert!(d < 600.0, "nearest segment {seg} at {d} m");
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn degenerate_grid_rejected() {
        SyntheticCity::generate(GeneratorConfig {
            cols: 1,
            ..GeneratorConfig::small()
        });
    }

    #[test]
    fn all_nodes_reachable_from_center_in_both_grid_directions() {
        // Sanity: with two-way streets, the undirected graph is connected.
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let net = &city.network;
        let (start, _) = net.nearest_segment(&city.central_point()).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(seg) = stack.pop() {
            for next in net.successors(seg) {
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        // Every directed segment is reachable (two-way grid => strongly connected).
        assert_eq!(seen.len(), net.num_segments());
        let _ = NodeId(0);
    }
}
