//! Segment→shard routing table for the scale-out topology.
//!
//! A [`ShardMap`] splits the road network into K spatial shards by running
//! the deterministic k-d cut of [`streach_spatial::kd_partition`] over the
//! segment midpoints. Every process that partitions the same network with
//! the same K derives the identical assignment, so the map can be computed
//! at the router, persisted in a snapshot, and recomputed at a replica
//! without any coordination — byte-equal either way.
//!
//! Twin segments (the two directions of a two-way road) are pinned to the
//! same shard: they share geometry, so a query annulus containing one
//! almost always contains the other, and co-locating them keeps boundary
//! scatter to genuinely distinct roads.

use crate::graph::RoadNetwork;
use crate::segment::SegmentId;

/// A total map from road segment to owning spatial shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    num_shards: u16,
    /// One shard id per segment, indexed by `SegmentId.0`.
    assignment: Vec<u16>,
}

impl ShardMap {
    /// Partitions `network` into `num_shards` spatial shards with a
    /// deterministic k-d cut over segment midpoints. Twins are co-located
    /// on the primary's shard.
    pub fn partition(network: &RoadNetwork, num_shards: u16) -> Self {
        let points: Vec<(f64, f64)> = network
            .segment_ids()
            .map(|id| {
                let mid = network.segment_midpoint(id);
                (mid.lon, mid.lat)
            })
            .collect();
        let mut assignment = streach_spatial::kd_partition(&points, num_shards);
        for id in network.segment_ids() {
            let seg = network.segment(id);
            if let Some(twin) = seg.twin {
                if twin > id {
                    assignment[twin.0 as usize] = assignment[id.0 as usize];
                }
            }
        }
        Self {
            num_shards: num_shards.max(1),
            assignment,
        }
    }

    /// Builds a map from already-validated parts (snapshot decode path).
    pub fn from_parts(num_shards: u16, assignment: Vec<u16>) -> Self {
        Self {
            num_shards: num_shards.max(1),
            assignment,
        }
    }

    /// Number of shards the map routes to (some may own no segments).
    pub fn num_shards(&self) -> u16 {
        self.num_shards
    }

    /// Number of segments the map covers.
    pub fn num_segments(&self) -> usize {
        self.assignment.len()
    }

    /// The shard owning `segment`.
    pub fn shard_of(&self, segment: SegmentId) -> u16 {
        self.assignment[segment.0 as usize]
    }

    /// All segments owned by `shard`, in ascending id order.
    pub fn segments_of(&self, shard: u16) -> Vec<SegmentId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == shard)
            .map(|(i, _)| SegmentId(i as u32))
            .collect()
    }

    /// Per-shard segment counts (index = shard id).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards as usize];
        for &s in &self.assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Serializes the map: `num_shards` (u16 LE), segment count (u32 LE),
    /// then one u16 LE shard id per segment.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.assignment.len() * 2);
        out.extend_from_slice(&self.num_shards.to_le_bytes());
        out.extend_from_slice(&(self.assignment.len() as u32).to_le_bytes());
        for &s in &self.assignment {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Deserializes a map encoded by [`ShardMap::encode`]. Returns `None`
    /// on a length mismatch or an out-of-range shard id.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 6 {
            return None;
        }
        let num_shards = u16::from_le_bytes(bytes[0..2].try_into().ok()?);
        let count = u32::from_le_bytes(bytes[2..6].try_into().ok()?) as usize;
        if num_shards == 0 || bytes.len() != 6 + count * 2 {
            return None;
        }
        let mut assignment = Vec::with_capacity(count);
        for i in 0..count {
            let off = 6 + i * 2;
            let s = u16::from_le_bytes(bytes[off..off + 2].try_into().ok()?);
            if s >= num_shards {
                return None;
            }
            assignment.push(s);
        }
        Some(Self {
            num_shards,
            assignment,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyntheticCity};

    fn network() -> RoadNetwork {
        SyntheticCity::generate(GeneratorConfig::small()).network
    }

    #[test]
    fn partition_is_total_deterministic_and_twin_colocated() {
        let net = network();
        let a = ShardMap::partition(&net, 4);
        let b = ShardMap::partition(&net, 4);
        assert_eq!(a, b);
        assert_eq!(a.num_segments(), net.num_segments());
        for id in net.segment_ids() {
            assert!(a.shard_of(id) < 4);
            if let Some(twin) = net.segment(id).twin {
                assert_eq!(a.shard_of(id), a.shard_of(twin), "twin of {id} split");
            }
        }
        let sizes = a.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), net.num_segments());
        assert!(sizes.iter().all(|&s| s > 0), "empty shard in {sizes:?}");
    }

    #[test]
    fn segments_of_partitions_the_id_space() {
        let net = network();
        let map = ShardMap::partition(&net, 3);
        let mut all: Vec<SegmentId> = (0..3).flat_map(|s| map.segments_of(s)).collect();
        all.sort_unstable();
        let expected: Vec<SegmentId> = net.segment_ids().collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let net = network();
        let map = ShardMap::partition(&net, 4);
        let bytes = map.encode();
        let back = ShardMap::decode(&bytes).expect("decode");
        assert_eq!(map, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ShardMap::decode(&[]).is_none());
        assert!(ShardMap::decode(&[1, 0, 1, 0, 0, 0]).is_none()); // truncated body
                                                                  // Shard id out of range.
        let mut bytes = ShardMap::from_parts(2, vec![0, 1]).encode();
        bytes[6] = 9;
        assert!(ShardMap::decode(&bytes).is_none());
    }
}
