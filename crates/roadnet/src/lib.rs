//! Road network model for the `streach` workspace.
//!
//! The paper views a road network as a directed graph `G(V, E)`: vertices are
//! intersections, edges are road segments, and each segment carries a unique
//! ID, an adjacency list, a shape polyline, a length, a direction indicator,
//! a class (primary/secondary) and an MBR (Section 2.1).
//!
//! This crate provides:
//!
//! * [`segment`] — the [`RoadSegment`](segment::RoadSegment) record and its
//!   attributes ([`RoadClass`](segment::RoadClass), directionality),
//! * [`graph`] — the [`RoadNetwork`](graph::RoadNetwork): directed segment
//!   graph with adjacency queries, a built-in R-tree for point-to-segment
//!   lookup and network statistics,
//! * [`resegment`] — the pre-processing *road re-segmentation* step that
//!   chops long roads to a configurable spatial granularity (default 500 m),
//! * [`generator`] — a synthetic metropolis generator standing in for the
//!   Shenzhen road network used in the paper's evaluation,
//! * [`dijkstra`] — shortest-path and distance-map computations,
//! * [`expansion`] — the time-budgeted network expansion algorithm
//!   (Papadias et al. [21] in the paper) used both by the Con-Index
//!   construction and by the exhaustive-search baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod dijkstra;
pub mod expansion;
pub mod generator;
pub mod graph;
pub mod resegment;
pub mod segment;
pub mod shard;

pub use codec::{decode_network, encode_network};
pub use dijkstra::{
    segment_distances_from, shortest_path_between_nodes, shortest_segment_distance,
    with_thread_workspace, DijkstraWorkspace,
};
pub use expansion::{expand_within_time, ExpansionResult};
pub use generator::{GeneratorConfig, SyntheticCity};
pub use graph::{NodeId, RawRoad, RoadNetwork};
pub use resegment::resegment_roads;
pub use segment::{Direction, RoadClass, RoadSegment, SegmentId};
pub use shard::ShardMap;
