//! Self-contained wire form of a road network.
//!
//! A replica bootstrapping from shipped artifacts alone needs the road
//! network without access to the original map files, so the snapshot
//! container can carry an optional `road_network` section encoded here.
//!
//! The encoding walks the *primary* segments (a one-way segment, or the
//! forward direction of a two-way pair — [`RoadNetwork::from_roads`] pushes
//! forward then backward consecutively, so the primary is the one whose
//! twin has the higher id) in id order and stores each as the [`RawRoad`]
//! it was built from: polyline points as IEEE-754 bit patterns, class and
//! direction as single bytes. Feeding the decoded roads back through
//! `from_roads` replays the exact same node interning and segment id
//! assignment, so the decoded network is bit-identical to the original —
//! `network_fingerprint` in the snapshot layer pins this.

use streach_geo::{GeoPoint, Polyline};

use crate::graph::{RawRoad, RoadNetwork};
use crate::segment::{Direction, RoadClass};

const CODEC_VERSION: u8 = 1;

fn class_to_byte(class: RoadClass) -> u8 {
    match class {
        RoadClass::Highway => 0,
        RoadClass::Primary => 1,
        RoadClass::Secondary => 2,
        RoadClass::Local => 3,
    }
}

fn class_from_byte(byte: u8) -> Option<RoadClass> {
    Some(match byte {
        0 => RoadClass::Highway,
        1 => RoadClass::Primary,
        2 => RoadClass::Secondary,
        3 => RoadClass::Local,
        _ => return None,
    })
}

/// Serializes `network` so [`decode_network`] can rebuild it bit-identically.
pub fn encode_network(network: &RoadNetwork) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(CODEC_VERSION);
    let primaries: Vec<_> = network
        .segment_ids()
        .filter(|&id| {
            let seg = network.segment(id);
            seg.twin.is_none() || seg.twin > Some(id)
        })
        .collect();
    out.extend_from_slice(&(primaries.len() as u32).to_le_bytes());
    for id in primaries {
        let seg = network.segment(id);
        out.push(class_to_byte(seg.class));
        out.push(match seg.direction {
            Direction::OneWay => 0,
            Direction::TwoWay => 1,
        });
        let points = seg.geometry.points();
        out.extend_from_slice(&(points.len() as u32).to_le_bytes());
        for p in points {
            out.extend_from_slice(&p.lon.to_bits().to_le_bytes());
            out.extend_from_slice(&p.lat.to_bits().to_le_bytes());
        }
    }
    out
}

/// Rebuilds a road network encoded by [`encode_network`]. Returns `None` on
/// a truncated buffer, unknown version, or invalid enum byte.
pub fn decode_network(bytes: &[u8]) -> Option<RoadNetwork> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = bytes.get(*cursor..*cursor + n)?;
        *cursor += n;
        Some(slice)
    };
    if *take(&mut cursor, 1)?.first()? != CODEC_VERSION {
        return None;
    }
    let num_roads = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?) as usize;
    let mut roads = Vec::with_capacity(num_roads);
    for _ in 0..num_roads {
        let class = class_from_byte(take(&mut cursor, 1)?[0])?;
        let direction = match take(&mut cursor, 1)?[0] {
            0 => Direction::OneWay,
            1 => Direction::TwoWay,
            _ => return None,
        };
        let num_points = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?) as usize;
        if num_points < 2 {
            return None;
        }
        let mut points = Vec::with_capacity(num_points);
        for _ in 0..num_points {
            let lon = f64::from_bits(u64::from_le_bytes(take(&mut cursor, 8)?.try_into().ok()?));
            let lat = f64::from_bits(u64::from_le_bytes(take(&mut cursor, 8)?.try_into().ok()?));
            points.push(GeoPoint::new(lon, lat));
        }
        roads.push(RawRoad {
            geometry: Polyline::new(points),
            class,
            direction,
        });
    }
    if cursor != bytes.len() {
        return None;
    }
    Some(RoadNetwork::from_roads(&roads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyntheticCity};

    #[test]
    fn roundtrip_reproduces_the_network_exactly() {
        let net = SyntheticCity::generate(GeneratorConfig::small()).network;
        let bytes = encode_network(&net);
        let back = decode_network(&bytes).expect("decode");
        assert_eq!(back.num_segments(), net.num_segments());
        assert_eq!(back.num_nodes(), net.num_nodes());
        for id in net.segment_ids() {
            let (a, b) = (net.segment(id), back.segment(id));
            assert_eq!(a.start_node, b.start_node, "{id}");
            assert_eq!(a.end_node, b.end_node, "{id}");
            assert_eq!(a.length_m.to_bits(), b.length_m.to_bits(), "{id}");
            assert_eq!(a.class, b.class, "{id}");
            assert_eq!(a.direction, b.direction, "{id}");
            assert_eq!(a.twin, b.twin, "{id}");
            assert_eq!(a.geometry.points(), b.geometry.points(), "{id}");
        }
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let net = SyntheticCity::generate(GeneratorConfig::small()).network;
        let bytes = encode_network(&net);
        assert!(decode_network(&bytes[..bytes.len() - 1]).is_none());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_network(&extended).is_none());
        let mut wrong_version = bytes;
        wrong_version[0] = 99;
        assert!(decode_network(&wrong_version).is_none());
    }
}
