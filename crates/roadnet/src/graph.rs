//! The directed road-network graph.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use streach_geo::{GeoPoint, Mbr, Polyline};
use streach_spatial::RTree;

use crate::segment::{Direction, RoadClass, RoadSegment, SegmentId};

/// Identifier of an intersection (graph vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node ID as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A raw (undirected, not yet re-segmented) road as produced by the map data
/// importer or the synthetic generator: the input of the pre-processing
/// stage.
#[derive(Debug, Clone)]
pub struct RawRoad {
    /// Shape of the road.
    pub geometry: Polyline,
    /// Functional class.
    pub class: RoadClass,
    /// Directionality.
    pub direction: Direction,
}

/// The road network: a directed graph whose edges are [`RoadSegment`]s and
/// whose vertices are intersections, plus an R-tree over segment MBRs for
/// spatial lookups.
pub struct RoadNetwork {
    nodes: Vec<GeoPoint>,
    segments: Vec<RoadSegment>,
    /// Outgoing segments per node.
    out_segments: Vec<Vec<SegmentId>>,
    /// Incoming segments per node.
    in_segments: Vec<Vec<SegmentId>>,
    /// Geometric midpoint of every segment, memoized at construction time:
    /// the MQMB overlap-elimination rule compares `dis(r0, b)` for every
    /// newly reached segment, and recomputing the midpoint from the polyline
    /// on each comparison dominated its cost.
    midpoints: Vec<GeoPoint>,
    rtree: RTree<SegmentId>,
}

/// Node coordinates are snapped to ~1 cm so that roads meeting at the same
/// intersection share a vertex even after floating-point noise.
fn node_key(p: &GeoPoint) -> (i64, i64) {
    ((p.lon * 1e7).round() as i64, (p.lat * 1e7).round() as i64)
}

impl RoadNetwork {
    /// Builds the network from directed-or-two-way roads whose geometry has
    /// already been re-segmented (see [`crate::resegment::resegment_roads`]).
    ///
    /// Every two-way road produces two directed segments that reference each
    /// other through [`RoadSegment::twin`].
    pub fn from_roads(roads: &[RawRoad]) -> Self {
        let mut nodes: Vec<GeoPoint> = Vec::new();
        let mut node_lookup: HashMap<(i64, i64), NodeId> = HashMap::new();
        let mut intern = |p: &GeoPoint, nodes: &mut Vec<GeoPoint>| -> NodeId {
            let key = node_key(p);
            *node_lookup.entry(key).or_insert_with(|| {
                nodes.push(*p);
                NodeId((nodes.len() - 1) as u32)
            })
        };

        let mut segments: Vec<RoadSegment> = Vec::new();
        for road in roads {
            let start = intern(&road.geometry.start(), &mut nodes);
            let end = intern(&road.geometry.end(), &mut nodes);
            if start == end && road.geometry.length_m() < 1.0 {
                // Degenerate loop produced by snapping; skip.
                continue;
            }
            let fwd_id = SegmentId(segments.len() as u32);
            let mut forward = RoadSegment::new(
                fwd_id,
                start,
                end,
                road.geometry.clone(),
                road.class,
                road.direction,
            );
            if road.direction == Direction::TwoWay {
                let bwd_id = SegmentId(segments.len() as u32 + 1);
                forward.twin = Some(bwd_id);
                let mut backward = RoadSegment::new(
                    bwd_id,
                    end,
                    start,
                    road.geometry.reversed(),
                    road.class,
                    road.direction,
                );
                backward.twin = Some(fwd_id);
                segments.push(forward);
                segments.push(backward);
            } else {
                segments.push(forward);
            }
        }

        let mut out_segments = vec![Vec::new(); nodes.len()];
        let mut in_segments = vec![Vec::new(); nodes.len()];
        for seg in &segments {
            out_segments[seg.start_node.index()].push(seg.id);
            in_segments[seg.end_node.index()].push(seg.id);
        }

        let rtree = RTree::bulk_load(segments.iter().map(|s| (s.mbr, s.id)).collect());
        let midpoints = segments
            .iter()
            .map(|s| s.geometry.point_at_fraction(0.5))
            .collect();

        Self {
            nodes,
            segments,
            out_segments,
            in_segments,
            midpoints,
            rtree,
        }
    }

    /// Number of intersections.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Position of an intersection.
    pub fn node_position(&self, node: NodeId) -> GeoPoint {
        self.nodes[node.index()]
    }

    /// The segment record for an ID.
    pub fn segment(&self, id: SegmentId) -> &RoadSegment {
        &self.segments[id.index()]
    }

    /// Memoized geometric midpoint of a segment (`point_at_fraction(0.5)`).
    #[inline]
    pub fn segment_midpoint(&self, id: SegmentId) -> GeoPoint {
        self.midpoints[id.index()]
    }

    /// All segments.
    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    /// Iterator over all segment IDs.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Segments leaving the given node.
    pub fn segments_out_of(&self, node: NodeId) -> &[SegmentId] {
        &self.out_segments[node.index()]
    }

    /// Segments arriving at the given node.
    pub fn segments_into(&self, node: NodeId) -> &[SegmentId] {
        &self.in_segments[node.index()]
    }

    /// Directed successors of a segment: the segments one can continue onto
    /// after traversing `id` (excluding an immediate U-turn onto its twin).
    pub fn successors(&self, id: SegmentId) -> Vec<SegmentId> {
        let seg = self.segment(id);
        self.out_segments[seg.end_node.index()]
            .iter()
            .copied()
            .filter(|next| Some(*next) != seg.twin)
            .collect()
    }

    /// Directed predecessors of a segment.
    pub fn predecessors(&self, id: SegmentId) -> Vec<SegmentId> {
        let seg = self.segment(id);
        self.in_segments[seg.start_node.index()]
            .iter()
            .copied()
            .filter(|prev| Some(*prev) != seg.twin)
            .collect()
    }

    /// Undirected neighbours of a segment: every segment sharing one of its
    /// end nodes (this is the `neighbor(r)` used by the trace back search).
    pub fn neighbors(&self, id: SegmentId) -> Vec<SegmentId> {
        let seg = self.segment(id);
        let mut out: Vec<SegmentId> = Vec::new();
        for node in [seg.start_node, seg.end_node] {
            for &other in self.out_segments[node.index()]
                .iter()
                .chain(self.in_segments[node.index()].iter())
            {
                if other != id && !out.contains(&other) {
                    out.push(other);
                }
            }
        }
        out
    }

    /// The segment whose geometry is closest to `p`, together with the
    /// distance in meters. Returns `None` on an empty network.
    pub fn nearest_segment(&self, p: &GeoPoint) -> Option<(SegmentId, f64)> {
        self.rtree
            .nearest_by(p, |id| {
                self.segments[id.index()].geometry.project(p).distance_m
            })
            .map(|(id, d)| (*id, d))
    }

    /// Segments whose MBR intersects the given window.
    pub fn segments_in_window(&self, window: &Mbr) -> Vec<SegmentId> {
        self.rtree.search_mbr(window).into_iter().copied().collect()
    }

    /// Bounding rectangle of the whole network.
    pub fn bounds(&self) -> Mbr {
        self.rtree.bounds()
    }

    /// Total length of all directed segments, in kilometers.
    pub fn total_length_km(&self) -> f64 {
        self.segments.iter().map(|s| s.length_m).sum::<f64>() / 1000.0
    }

    /// Sum of lengths of the given segments, in kilometers.
    pub fn length_of_km(&self, ids: &[SegmentId]) -> f64 {
        ids.iter().map(|id| self.segment(*id).length_m).sum::<f64>() / 1000.0
    }

    /// Number of segments per road class.
    pub fn class_histogram(&self) -> HashMap<RoadClass, usize> {
        let mut h = HashMap::new();
        for seg in &self.segments {
            *h.entry(seg.class).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3x3 grid of two-way local streets with 500 m spacing.
    pub(crate) fn tiny_grid() -> RoadNetwork {
        let origin = GeoPoint::new(114.0, 22.5);
        let spacing = 500.0;
        let mut roads = Vec::new();
        let node = |i: i32, j: i32| origin.offset_m(i as f64 * spacing, j as f64 * spacing);
        for i in 0..3 {
            for j in 0..3 {
                if i + 1 < 3 {
                    roads.push(RawRoad {
                        geometry: Polyline::straight(node(i, j), node(i + 1, j)),
                        class: RoadClass::Local,
                        direction: Direction::TwoWay,
                    });
                }
                if j + 1 < 3 {
                    roads.push(RawRoad {
                        geometry: Polyline::straight(node(i, j), node(i, j + 1)),
                        class: RoadClass::Local,
                        direction: Direction::TwoWay,
                    });
                }
            }
        }
        RoadNetwork::from_roads(&roads)
    }

    #[test]
    fn grid_has_expected_counts() {
        let net = tiny_grid();
        assert_eq!(net.num_nodes(), 9);
        // 12 undirected edges -> 24 directed segments.
        assert_eq!(net.num_segments(), 24);
        assert!((net.total_length_km() - 12.0).abs() < 0.1);
    }

    #[test]
    fn twins_reference_each_other() {
        let net = tiny_grid();
        for seg in net.segments() {
            let twin = net.segment(seg.twin.expect("two-way road"));
            assert_eq!(twin.twin, Some(seg.id));
            assert_eq!(twin.start_node, seg.end_node);
            assert_eq!(twin.end_node, seg.start_node);
        }
    }

    #[test]
    fn successors_exclude_u_turn() {
        let net = tiny_grid();
        for seg in net.segments() {
            let succ = net.successors(seg.id);
            assert!(!succ.contains(&seg.twin.unwrap()));
            for s in &succ {
                assert_eq!(net.segment(*s).start_node, seg.end_node);
            }
        }
    }

    #[test]
    fn corner_node_degree() {
        let net = tiny_grid();
        // The corner at the origin has exactly two outgoing segments.
        let corner = net.nearest_segment(&GeoPoint::new(114.0, 22.5)).unwrap().0;
        let corner_node = {
            let seg = net.segment(corner);
            // pick whichever endpoint is the actual origin corner
            let p0 = net.node_position(seg.start_node);
            if p0.haversine_m(&GeoPoint::new(114.0, 22.5)) < 1.0 {
                seg.start_node
            } else {
                seg.end_node
            }
        };
        assert_eq!(net.segments_out_of(corner_node).len(), 2);
        assert_eq!(net.segments_into(corner_node).len(), 2);
    }

    #[test]
    fn neighbors_share_an_endpoint() {
        let net = tiny_grid();
        for seg in net.segments() {
            let neigh = net.neighbors(seg.id);
            assert!(!neigh.contains(&seg.id));
            for n in neigh {
                let other = net.segment(n);
                let shares = other.start_node == seg.start_node
                    || other.start_node == seg.end_node
                    || other.end_node == seg.start_node
                    || other.end_node == seg.end_node;
                assert!(shares);
            }
        }
    }

    #[test]
    fn nearest_segment_is_truly_nearest() {
        let net = tiny_grid();
        let probe = GeoPoint::new(114.0, 22.5).offset_m(250.0, 40.0);
        let (found, d) = net.nearest_segment(&probe).unwrap();
        // Brute force check.
        let (brute, brute_d) = net
            .segments()
            .iter()
            .map(|s| (s.id, s.geometry.project(&probe).distance_m))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(net.segment(found).geometry.project(&probe).distance_m, d);
        assert!(
            (d - brute_d).abs() < 1e-9,
            "found {found:?} vs brute {brute:?}"
        );
    }

    #[test]
    fn window_query_returns_subset() {
        let net = tiny_grid();
        let window = Mbr::of_point(&GeoPoint::new(114.0, 22.5)).padded(0.002);
        let in_window = net.segments_in_window(&window);
        assert!(!in_window.is_empty());
        assert!(in_window.len() < net.num_segments());
    }

    #[test]
    fn class_histogram_counts_everything() {
        let net = tiny_grid();
        let hist = net.class_histogram();
        assert_eq!(hist[&RoadClass::Local], net.num_segments());
    }

    #[test]
    fn one_way_roads_produce_single_segments() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(400.0, 0.0);
        let c = b.offset_m(400.0, 0.0);
        let roads = vec![
            RawRoad {
                geometry: Polyline::straight(a, b),
                class: RoadClass::Primary,
                direction: Direction::OneWay,
            },
            RawRoad {
                geometry: Polyline::straight(b, c),
                class: RoadClass::Primary,
                direction: Direction::OneWay,
            },
        ];
        let net = RoadNetwork::from_roads(&roads);
        assert_eq!(net.num_segments(), 2);
        assert_eq!(net.successors(SegmentId(0)), vec![SegmentId(1)]);
        assert!(net.successors(SegmentId(1)).is_empty());
        assert!(net.segment(SegmentId(0)).twin.is_none());
        assert_eq!(net.predecessors(SegmentId(1)), vec![SegmentId(0)]);
    }
}
