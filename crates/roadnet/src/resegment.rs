//! Road re-segmentation (pre-processing step 1).
//!
//! "The road re-segmentation step partitions the original road segments based
//! on a given spatial granularity (e.g., 500 meters). The main intuition
//! behind this step is that, in the real road network data, there are many
//! road segments with very large length value (e.g., some highways), and we
//! want to avoid having such long road in our result set." (Section 3.1)

use crate::graph::RawRoad;

/// Default spatial granularity used by the paper.
pub const DEFAULT_GRANULARITY_M: f64 = 500.0;

/// Splits every road longer than `granularity_m` into consecutive pieces of
/// roughly equal length no longer than the granularity, preserving class and
/// directionality. Roads already short enough pass through untouched.
pub fn resegment_roads(roads: &[RawRoad], granularity_m: f64) -> Vec<RawRoad> {
    assert!(granularity_m > 0.0, "granularity must be positive");
    let mut out = Vec::with_capacity(roads.len());
    for road in roads {
        if road.geometry.length_m() <= granularity_m {
            out.push(road.clone());
        } else {
            for piece in road.geometry.split_by_length(granularity_m) {
                out.push(RawRoad {
                    geometry: piece,
                    class: road.class,
                    direction: road.direction,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetwork;
    use crate::segment::{Direction, RoadClass};
    use streach_geo::{GeoPoint, Polyline};

    fn long_highway() -> RawRoad {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(4800.0, 0.0);
        RawRoad {
            geometry: Polyline::straight(a, b),
            class: RoadClass::Highway,
            direction: Direction::TwoWay,
        }
    }

    fn short_street() -> RawRoad {
        let a = GeoPoint::new(114.02, 22.52);
        let b = a.offset_m(0.0, 300.0);
        RawRoad {
            geometry: Polyline::straight(a, b),
            class: RoadClass::Local,
            direction: Direction::TwoWay,
        }
    }

    #[test]
    fn short_roads_pass_through() {
        let roads = vec![short_street()];
        let out = resegment_roads(&roads, 500.0);
        assert_eq!(out.len(), 1);
        assert!((out[0].geometry.length_m() - 300.0).abs() < 2.0);
    }

    #[test]
    fn long_roads_are_chopped() {
        let roads = vec![long_highway(), short_street()];
        let out = resegment_roads(&roads, 500.0);
        // The 4.8 km highway becomes 10 pieces of 480 m; the street stays.
        assert_eq!(out.len(), 11);
        let highway_pieces: Vec<&RawRoad> = out
            .iter()
            .filter(|r| r.class == RoadClass::Highway)
            .collect();
        assert_eq!(highway_pieces.len(), 10);
        for piece in &highway_pieces {
            assert!(piece.geometry.length_m() <= 505.0);
            assert_eq!(piece.direction, Direction::TwoWay);
        }
        let total: f64 = highway_pieces.iter().map(|r| r.geometry.length_m()).sum();
        assert!((total - 4800.0).abs() < 10.0);
    }

    #[test]
    fn resegmented_pieces_remain_connected_in_the_graph() {
        let out = resegment_roads(&[long_highway()], 500.0);
        let net = RoadNetwork::from_roads(&out);
        // 10 pieces -> 11 nodes, 20 directed segments; and we can walk from
        // the first to the last piece through successors.
        assert_eq!(net.num_nodes(), 11);
        assert_eq!(net.num_segments(), 20);
        let (start, _) = net.nearest_segment(&GeoPoint::new(114.0, 22.5)).unwrap();
        let mut frontier = vec![start];
        let mut seen = std::collections::HashSet::new();
        seen.insert(start);
        while let Some(seg) = frontier.pop() {
            for next in net.successors(seg) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        // One direction of the chopped highway is fully reachable.
        assert!(seen.len() >= 10, "reached {} segments", seen.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_granularity_rejected() {
        resegment_roads(&[short_street()], 0.0);
    }
}
