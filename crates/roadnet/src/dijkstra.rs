//! Shortest paths over the road network.
//!
//! The query hot path runs many Dijkstra expansions per query (the ES
//! distance cap, MQMB's per-start ownership distances), so the search state
//! lives in a reusable [`DijkstraWorkspace`]: dense per-segment arrays that
//! are *epoch-stamped* instead of cleared — starting a new run bumps a
//! counter, and a slot is only considered initialised when its stamp matches
//! the current epoch. A run therefore costs O(visited) regardless of how
//! large the network is, performs no hashing, and after the first run on a
//! network performs no allocation at all.
//!
//! Priorities are ordered with [`f64::total_cmp`], which is a total order
//! even in the presence of NaN (the previous `Cost` newtype fell back to
//! `Ordering::Equal`, which can silently corrupt the binary-heap invariant).
//! Ties are broken by segment ID so heap order — and therefore the visit
//! order — is fully deterministic.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::graph::{NodeId, RoadNetwork};
use crate::segment::SegmentId;

/// A heap entry ordered by distance via `total_cmp`, with the item index as
/// a deterministic tie-breaker. Shared with the time-budgeted expansion in
/// [`crate::expansion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) dist: f64,
    pub(crate) item: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// Reusable dense-array state for segment-level Dijkstra runs.
///
/// One workspace serves any number of consecutive runs, including runs over
/// different networks (the arrays grow to the largest segment count seen).
/// It is intentionally *not* shared across threads: each worker owns one.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Segment indices settled by the current run, in settling order.
    settled: Vec<u32>,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new run over a graph with `n` items: bumps the epoch and
    /// grows the arrays if needed. Only touched slots are ever re-read.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap-around (once per 2^32 runs): reset all stamps.
                self.stamp.fill(0);
                1
            }
        };
        self.heap.clear();
        self.settled.clear();
    }

    #[inline]
    fn tentative(&self, idx: usize) -> f64 {
        if self.stamp[idx] == self.epoch {
            self.dist[idx]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, idx: usize, d: f64) {
        self.dist[idx] = d;
        self.stamp[idx] = self.epoch;
        self.heap.push(Reverse(HeapEntry {
            dist: d,
            item: idx as u32,
        }));
    }

    /// Network distances (in meters) from the *end* of `start` to the *end*
    /// of every segment reachable within `max_distance_m`, traversing
    /// segments in their stated direction. The start segment itself has
    /// distance zero. Results are queried with [`DijkstraWorkspace::distance`]
    /// or iterated with [`DijkstraWorkspace::settled`] until the next run.
    ///
    /// This is the `dis(r0, r)` used by the MQMB overlap-elimination rule:
    /// when a road segment falls inside several per-location bounding
    /// regions, it is kept only for the start location it is closest to.
    pub fn run(&mut self, network: &RoadNetwork, start: SegmentId, max_distance_m: f64) {
        self.run_until(network, start, max_distance_m, |_| false);
    }

    /// Like [`DijkstraWorkspace::run`], but stops early as soon as `done`
    /// returns `true` for a settled segment (used for point-to-point
    /// queries).
    pub fn run_until<F>(
        &mut self,
        network: &RoadNetwork,
        start: SegmentId,
        max_distance_m: f64,
        mut done: F,
    ) where
        F: FnMut(SegmentId) -> bool,
    {
        self.begin(network.num_segments());
        self.relax(start.index(), 0.0);
        while let Some(Reverse(HeapEntry { dist: d, item })) = self.heap.pop() {
            let seg = SegmentId(item);
            if d > self.tentative(item as usize) {
                continue; // stale heap entry
            }
            self.settled.push(item);
            if done(seg) {
                return;
            }
            for next in network.successors(seg) {
                let nd = d + network.segment(next).length_m;
                if nd <= max_distance_m && nd < self.tentative(next.index()) {
                    self.relax(next.index(), nd);
                }
            }
        }
    }

    /// Distance of `seg` from the start of the most recent run, if reached.
    #[inline]
    pub fn distance(&self, seg: SegmentId) -> Option<f64> {
        let idx = seg.index();
        if idx < self.stamp.len() && self.stamp[idx] == self.epoch {
            Some(self.dist[idx])
        } else {
            None
        }
    }

    /// Returns `true` when `seg` was reached by the most recent run.
    #[inline]
    pub fn reached(&self, seg: SegmentId) -> bool {
        self.distance(seg).is_some()
    }

    /// Segments settled by the most recent run with their distances, in
    /// settling (ascending-distance) order.
    pub fn settled(&self) -> impl Iterator<Item = (SegmentId, f64)> + '_ {
        self.settled
            .iter()
            .map(|&i| (SegmentId(i), self.dist[i as usize]))
    }

    /// Number of segments settled by the most recent run.
    pub fn num_settled(&self) -> usize {
        self.settled.len()
    }
}

thread_local! {
    static THREAD_WORKSPACE: std::cell::RefCell<DijkstraWorkspace> =
        std::cell::RefCell::new(DijkstraWorkspace::new());
}

/// Runs `f` with the calling thread's long-lived [`DijkstraWorkspace`].
///
/// This is how the query hot paths (the ES travel cap, MQMB's per-start
/// ownership distances) get cross-*query* reuse of the dense arrays: the
/// workspace lives for the thread, so after the first query on a thread no
/// Dijkstra run allocates. Must not be called re-entrantly from `f`.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut DijkstraWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// Network distances from `start` as a map (compatibility wrapper around
/// [`DijkstraWorkspace`]; hot paths should hold a workspace and use
/// [`DijkstraWorkspace::run`] directly to avoid the per-call allocations).
pub fn segment_distances_from(
    network: &RoadNetwork,
    start: SegmentId,
    max_distance_m: f64,
) -> HashMap<SegmentId, f64> {
    let mut ws = DijkstraWorkspace::new();
    ws.run(network, start, max_distance_m);
    ws.settled().collect()
}

/// Network distance in meters from `from` to `to` (end-of-segment to
/// end-of-segment), or `None` if `to` is not reachable within
/// `max_distance_m`.
pub fn shortest_segment_distance(
    network: &RoadNetwork,
    from: SegmentId,
    to: SegmentId,
    max_distance_m: f64,
) -> Option<f64> {
    let mut ws = DijkstraWorkspace::new();
    ws.run_until(network, from, max_distance_m, |seg| seg == to);
    ws.distance(to)
}

/// Shortest path between two intersections by travel distance. Returns the
/// segment sequence and the total length in meters, or `None` when `to` is
/// unreachable. Used by the taxi simulator to route trips.
pub fn shortest_path_between_nodes(
    network: &RoadNetwork,
    from: NodeId,
    to: NodeId,
) -> Option<(Vec<SegmentId>, f64)> {
    if from == to {
        return Some((Vec::new(), 0.0));
    }
    let n = network.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut via: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(Reverse(HeapEntry {
        dist: 0.0,
        item: from.0,
    }));
    while let Some(Reverse(HeapEntry { dist: d, item })) = heap.pop() {
        let node = NodeId(item);
        if node == to {
            break;
        }
        if d > dist[node.index()] {
            continue;
        }
        for &seg_id in network.segments_out_of(node) {
            let seg = network.segment(seg_id);
            let nd = d + seg.length_m;
            if nd < dist[seg.end_node.index()] {
                dist[seg.end_node.index()] = nd;
                via[seg.end_node.index()] = Some(seg_id);
                heap.push(Reverse(HeapEntry {
                    dist: nd,
                    item: seg.end_node.0,
                }));
            }
        }
    }
    if dist[to.index()].is_infinite() {
        return None;
    }
    // Reconstruct the path.
    let mut path = Vec::new();
    let mut node = to;
    while node != from {
        let seg_id = via[node.index()].expect("path reconstruction");
        path.push(seg_id);
        node = network.segment(seg_id).start_node;
    }
    path.reverse();
    Some((path, dist[to.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RawRoad, RoadNetwork};
    use crate::segment::{Direction, RoadClass};
    use streach_geo::{GeoPoint, Polyline};

    /// A 4x4 grid of two-way local streets with 500 m spacing.
    fn grid() -> RoadNetwork {
        let origin = GeoPoint::new(114.0, 22.5);
        let spacing = 500.0;
        let node = |i: i32, j: i32| origin.offset_m(i as f64 * spacing, j as f64 * spacing);
        let mut roads = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i + 1 < 4 {
                    roads.push(RawRoad {
                        geometry: Polyline::straight(node(i, j), node(i + 1, j)),
                        class: RoadClass::Local,
                        direction: Direction::TwoWay,
                    });
                }
                if j + 1 < 4 {
                    roads.push(RawRoad {
                        geometry: Polyline::straight(node(i, j), node(i, j + 1)),
                        class: RoadClass::Local,
                        direction: Direction::TwoWay,
                    });
                }
            }
        }
        RoadNetwork::from_roads(&roads)
    }

    fn node_at(net: &RoadNetwork, i: i32, j: i32) -> NodeId {
        let p = GeoPoint::new(114.0, 22.5).offset_m(i as f64 * 500.0, j as f64 * 500.0);
        (0..net.num_nodes() as u32)
            .map(NodeId)
            .min_by(|a, b| {
                net.node_position(*a)
                    .haversine_m(&p)
                    .partial_cmp(&net.node_position(*b).haversine_m(&p))
                    .unwrap()
            })
            .unwrap()
    }

    #[test]
    fn node_to_node_path_follows_manhattan_distance() {
        let net = grid();
        let from = node_at(&net, 0, 0);
        let to = node_at(&net, 3, 2);
        let (path, d) = shortest_path_between_nodes(&net, from, to).unwrap();
        // Manhattan distance: (3 + 2) * 500 = 2500 m.
        assert!((d - 2500.0).abs() < 10.0, "distance {d}");
        assert_eq!(path.len(), 5);
        // The path is connected and starts/ends at the right nodes.
        assert_eq!(net.segment(path[0]).start_node, from);
        assert_eq!(net.segment(*path.last().unwrap()).end_node, to);
        for w in path.windows(2) {
            assert_eq!(net.segment(w[0]).end_node, net.segment(w[1]).start_node);
        }
    }

    #[test]
    fn path_to_self_is_empty() {
        let net = grid();
        let n = node_at(&net, 1, 1);
        let (path, d) = shortest_path_between_nodes(&net, n, n).unwrap();
        assert!(path.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn segment_distances_respect_budget() {
        let net = grid();
        let (start, _) = net
            .nearest_segment(&GeoPoint::new(114.0, 22.5).offset_m(250.0, 0.0))
            .unwrap();
        let dist = segment_distances_from(&net, start, 1200.0);
        assert_eq!(dist[&start], 0.0);
        assert!(dist.len() > 1);
        for (&seg, &d) in &dist {
            assert!(d <= 1200.0, "segment {seg} at {d}");
        }
        // A larger budget reaches at least as many segments.
        let bigger = segment_distances_from(&net, start, 3000.0);
        assert!(bigger.len() >= dist.len());
        for (seg, d) in &dist {
            assert!((bigger[seg] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn shortest_segment_distance_matches_distance_map() {
        let net = grid();
        let (start, _) = net
            .nearest_segment(&GeoPoint::new(114.0, 22.5).offset_m(250.0, 0.0))
            .unwrap();
        let dist = segment_distances_from(&net, start, 4000.0);
        for (&seg, &d) in dist.iter().take(20) {
            let single = shortest_segment_distance(&net, start, seg, 4000.0).unwrap();
            assert!((single - d).abs() < 1e-9);
        }
        assert_eq!(
            shortest_segment_distance(&net, start, start, 100.0),
            Some(0.0)
        );
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected one-way roads.
        let a = GeoPoint::new(114.0, 22.5);
        let roads = vec![
            RawRoad {
                geometry: Polyline::straight(a, a.offset_m(300.0, 0.0)),
                class: RoadClass::Local,
                direction: Direction::OneWay,
            },
            RawRoad {
                geometry: Polyline::straight(a.offset_m(5000.0, 0.0), a.offset_m(5300.0, 0.0)),
                class: RoadClass::Local,
                direction: Direction::OneWay,
            },
        ];
        let net = RoadNetwork::from_roads(&roads);
        assert_eq!(
            shortest_segment_distance(&net, SegmentId(0), SegmentId(1), 1e9),
            None
        );
        assert!(shortest_path_between_nodes(&net, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn workspace_reuse_across_runs_matches_fresh_runs() {
        let net = grid();
        let mut ws = DijkstraWorkspace::new();
        let starts: Vec<SegmentId> = net.segment_ids().take(8).collect();
        for &start in &starts {
            ws.run(&net, start, 1700.0);
            let fresh = segment_distances_from(&net, start, 1700.0);
            assert_eq!(ws.num_settled(), fresh.len(), "start {start}");
            for (seg, d) in ws.settled() {
                assert!((fresh[&seg] - d).abs() < 1e-9, "start {start} seg {seg}");
            }
            // Segments beyond the budget are reported unreached.
            for seg in net.segment_ids() {
                assert_eq!(
                    ws.reached(seg),
                    fresh.contains_key(&seg),
                    "start {start} seg {seg}"
                );
            }
        }
    }

    #[test]
    fn settled_order_is_ascending_distance() {
        let net = grid();
        let mut ws = DijkstraWorkspace::new();
        ws.run(&net, SegmentId(0), 5000.0);
        let dists: Vec<f64> = ws.settled().map(|(_, d)| d).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Regression for the NaN-unsound `Ord` of the old `Cost` newtype: a
    /// chain of degenerate (sub-meter, effectively zero-length) segments
    /// produces many exactly-tied priorities; the heap order must stay a
    /// total order and distances must match a fresh brute-force run.
    #[test]
    fn degenerate_zero_length_segments_keep_heap_order_sound() {
        let a = GeoPoint::new(114.0, 22.5);
        let mut roads = Vec::new();
        // A star of 6 one-way micro-segments (0.3 m) all tied at ~0 cost,
        // followed by a normal road out of the cluster.
        let mut p = a;
        for _ in 0..6 {
            let q = p.offset_m(0.3, 0.0);
            roads.push(RawRoad {
                geometry: Polyline::straight(p, q),
                class: RoadClass::Local,
                direction: Direction::TwoWay,
            });
            p = q;
        }
        roads.push(RawRoad {
            geometry: Polyline::straight(p, p.offset_m(400.0, 0.0)),
            class: RoadClass::Local,
            direction: Direction::OneWay,
        });
        let net = RoadNetwork::from_roads(&roads);
        let mut ws = DijkstraWorkspace::new();
        ws.run(&net, SegmentId(0), 1e9);
        // Every segment the chain reaches is settled exactly once, with
        // finite, monotone distances.
        let mut seen = std::collections::HashSet::new();
        let mut last = 0.0f64;
        for (seg, d) in ws.settled() {
            assert!(seen.insert(seg), "segment {seg} settled twice");
            assert!(d.is_finite());
            assert!(d >= last, "settling order went backwards");
            last = d;
        }
        assert!(ws.num_settled() >= 7, "settled {}", ws.num_settled());
    }

    /// `total_cmp` heap entries are totally ordered even for NaN priorities
    /// (the old `unwrap_or(Equal)` fallback violated transitivity).
    #[test]
    fn heap_entry_total_order_with_nan() {
        let nan = HeapEntry {
            dist: f64::NAN,
            item: 1,
        };
        let one = HeapEntry { dist: 1.0, item: 2 };
        let inf = HeapEntry {
            dist: f64::INFINITY,
            item: 3,
        };
        // total_cmp places +NaN above +inf; what matters is consistency.
        assert_eq!(nan.cmp(&nan), std::cmp::Ordering::Equal);
        assert_eq!(nan.cmp(&one), std::cmp::Ordering::Greater);
        assert_eq!(one.cmp(&nan), std::cmp::Ordering::Less);
        assert_eq!(inf.cmp(&nan), std::cmp::Ordering::Less);
        // Antisymmetry + transitivity over a mixed set: sorting must not panic
        // and must be idempotent.
        let mut v = vec![
            nan,
            one,
            inf,
            HeapEntry {
                dist: f64::NAN,
                item: 0,
            },
        ];
        v.sort();
        let w = {
            let mut w = v.clone();
            w.sort();
            w
        };
        // NaN != NaN under PartialEq, so compare through the total order.
        assert!(v
            .iter()
            .zip(&w)
            .all(|(a, b)| a.cmp(b) == std::cmp::Ordering::Equal));
    }
}
