//! Shortest paths over the road network.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::graph::{NodeId, RoadNetwork};
use crate::segment::SegmentId;

#[derive(PartialEq)]
struct Cost(f64);
impl Eq for Cost {}
impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Network distances (in meters) from the *end* of `start` to the *end* of
/// every segment reachable within `max_distance_m`, traversing segments in
/// their stated direction. The start segment itself has distance zero.
///
/// This is the `dis(r0, r)` used by the MQMB overlap-elimination rule: when a
/// road segment falls inside several per-location bounding regions, it is
/// kept only for the start location it is closest to.
pub fn segment_distances_from(
    network: &RoadNetwork,
    start: SegmentId,
    max_distance_m: f64,
) -> HashMap<SegmentId, f64> {
    let mut dist: HashMap<SegmentId, f64> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<Cost>, SegmentId)> = BinaryHeap::new();
    dist.insert(start, 0.0);
    heap.push((Reverse(Cost(0.0)), start));
    while let Some((Reverse(Cost(d)), seg)) = heap.pop() {
        if d > *dist.get(&seg).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for next in network.successors(seg) {
            let nd = d + network.segment(next).length_m;
            if nd <= max_distance_m && nd < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                dist.insert(next, nd);
                heap.push((Reverse(Cost(nd)), next));
            }
        }
    }
    dist
}

/// Network distance in meters from `from` to `to` (end-of-segment to
/// end-of-segment), or `None` if `to` is not reachable within
/// `max_distance_m`.
pub fn shortest_segment_distance(
    network: &RoadNetwork,
    from: SegmentId,
    to: SegmentId,
    max_distance_m: f64,
) -> Option<f64> {
    if from == to {
        return Some(0.0);
    }
    let mut dist: HashMap<SegmentId, f64> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<Cost>, SegmentId)> = BinaryHeap::new();
    dist.insert(from, 0.0);
    heap.push((Reverse(Cost(0.0)), from));
    while let Some((Reverse(Cost(d)), seg)) = heap.pop() {
        if seg == to {
            return Some(d);
        }
        if d > *dist.get(&seg).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for next in network.successors(seg) {
            let nd = d + network.segment(next).length_m;
            if nd <= max_distance_m && nd < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                dist.insert(next, nd);
                heap.push((Reverse(Cost(nd)), next));
            }
        }
    }
    None
}

/// Shortest path between two intersections by travel distance. Returns the
/// segment sequence and the total length in meters, or `None` when `to` is
/// unreachable. Used by the taxi simulator to route trips.
pub fn shortest_path_between_nodes(
    network: &RoadNetwork,
    from: NodeId,
    to: NodeId,
) -> Option<(Vec<SegmentId>, f64)> {
    if from == to {
        return Some((Vec::new(), 0.0));
    }
    let n = network.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut via: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap: BinaryHeap<(Reverse<Cost>, NodeId)> = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push((Reverse(Cost(0.0)), from));
    while let Some((Reverse(Cost(d)), node)) = heap.pop() {
        if node == to {
            break;
        }
        if d > dist[node.index()] {
            continue;
        }
        for &seg_id in network.segments_out_of(node) {
            let seg = network.segment(seg_id);
            let nd = d + seg.length_m;
            if nd < dist[seg.end_node.index()] {
                dist[seg.end_node.index()] = nd;
                via[seg.end_node.index()] = Some(seg_id);
                heap.push((Reverse(Cost(nd)), seg.end_node));
            }
        }
    }
    if dist[to.index()].is_infinite() {
        return None;
    }
    // Reconstruct the path.
    let mut path = Vec::new();
    let mut node = to;
    while node != from {
        let seg_id = via[node.index()].expect("path reconstruction");
        path.push(seg_id);
        node = network.segment(seg_id).start_node;
    }
    path.reverse();
    Some((path, dist[to.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RawRoad, RoadNetwork};
    use crate::segment::{Direction, RoadClass};
    use streach_geo::{GeoPoint, Polyline};

    /// A 4x4 grid of two-way local streets with 500 m spacing.
    fn grid() -> RoadNetwork {
        let origin = GeoPoint::new(114.0, 22.5);
        let spacing = 500.0;
        let node = |i: i32, j: i32| origin.offset_m(i as f64 * spacing, j as f64 * spacing);
        let mut roads = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i + 1 < 4 {
                    roads.push(RawRoad {
                        geometry: Polyline::straight(node(i, j), node(i + 1, j)),
                        class: RoadClass::Local,
                        direction: Direction::TwoWay,
                    });
                }
                if j + 1 < 4 {
                    roads.push(RawRoad {
                        geometry: Polyline::straight(node(i, j), node(i, j + 1)),
                        class: RoadClass::Local,
                        direction: Direction::TwoWay,
                    });
                }
            }
        }
        RoadNetwork::from_roads(&roads)
    }

    fn node_at(net: &RoadNetwork, i: i32, j: i32) -> NodeId {
        let p = GeoPoint::new(114.0, 22.5).offset_m(i as f64 * 500.0, j as f64 * 500.0);
        (0..net.num_nodes() as u32)
            .map(NodeId)
            .min_by(|a, b| {
                net.node_position(*a)
                    .haversine_m(&p)
                    .partial_cmp(&net.node_position(*b).haversine_m(&p))
                    .unwrap()
            })
            .unwrap()
    }

    #[test]
    fn node_to_node_path_follows_manhattan_distance() {
        let net = grid();
        let from = node_at(&net, 0, 0);
        let to = node_at(&net, 3, 2);
        let (path, d) = shortest_path_between_nodes(&net, from, to).unwrap();
        // Manhattan distance: (3 + 2) * 500 = 2500 m.
        assert!((d - 2500.0).abs() < 10.0, "distance {d}");
        assert_eq!(path.len(), 5);
        // The path is connected and starts/ends at the right nodes.
        assert_eq!(net.segment(path[0]).start_node, from);
        assert_eq!(net.segment(*path.last().unwrap()).end_node, to);
        for w in path.windows(2) {
            assert_eq!(net.segment(w[0]).end_node, net.segment(w[1]).start_node);
        }
    }

    #[test]
    fn path_to_self_is_empty() {
        let net = grid();
        let n = node_at(&net, 1, 1);
        let (path, d) = shortest_path_between_nodes(&net, n, n).unwrap();
        assert!(path.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn segment_distances_respect_budget() {
        let net = grid();
        let (start, _) = net.nearest_segment(&GeoPoint::new(114.0, 22.5).offset_m(250.0, 0.0)).unwrap();
        let dist = segment_distances_from(&net, start, 1200.0);
        assert_eq!(dist[&start], 0.0);
        assert!(dist.len() > 1);
        for (&seg, &d) in &dist {
            assert!(d <= 1200.0, "segment {seg} at {d}");
        }
        // A larger budget reaches at least as many segments.
        let bigger = segment_distances_from(&net, start, 3000.0);
        assert!(bigger.len() >= dist.len());
        for (seg, d) in &dist {
            assert!((bigger[seg] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn shortest_segment_distance_matches_distance_map() {
        let net = grid();
        let (start, _) = net.nearest_segment(&GeoPoint::new(114.0, 22.5).offset_m(250.0, 0.0)).unwrap();
        let dist = segment_distances_from(&net, start, 4000.0);
        for (&seg, &d) in dist.iter().take(20) {
            let single = shortest_segment_distance(&net, start, seg, 4000.0).unwrap();
            assert!((single - d).abs() < 1e-9);
        }
        assert_eq!(shortest_segment_distance(&net, start, start, 100.0), Some(0.0));
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected one-way roads.
        let a = GeoPoint::new(114.0, 22.5);
        let roads = vec![
            RawRoad {
                geometry: Polyline::straight(a, a.offset_m(300.0, 0.0)),
                class: RoadClass::Local,
                direction: Direction::OneWay,
            },
            RawRoad {
                geometry: Polyline::straight(a.offset_m(5000.0, 0.0), a.offset_m(5300.0, 0.0)),
                class: RoadClass::Local,
                direction: Direction::OneWay,
            },
        ];
        let net = RoadNetwork::from_roads(&roads);
        assert_eq!(shortest_segment_distance(&net, SegmentId(0), SegmentId(1), 1e9), None);
        assert!(shortest_path_between_nodes(&net, NodeId(0), NodeId(3)).is_none());
    }
}
