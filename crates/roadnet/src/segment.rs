//! Road segments and their attributes.

use serde::{Deserialize, Serialize};
use streach_geo::{Mbr, Polyline};

use crate::graph::NodeId;

/// Identifier of a (directed) road segment. Segments are numbered densely
/// from zero, so the ID doubles as an index into the network's segment table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// The segment ID as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Functional class of a road, which determines its free-flow speed.
///
/// The paper distinguishes "primary or secondary" roads and observes in the
/// evaluation that "on the high-speed road segments, the region is further
/// away from the starting location, while on the local low-speed roads, the
/// query result region is smaller"; the class hierarchy below is what makes
/// that behaviour reproducible with synthetic data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Urban expressway / highway.
    Highway,
    /// Primary arterial road.
    Primary,
    /// Secondary collector road.
    Secondary,
    /// Local low-speed street.
    Local,
}

impl RoadClass {
    /// Free-flow (uncongested) travel speed in km/h.
    pub fn free_flow_kmh(self) -> f64 {
        match self {
            RoadClass::Highway => 90.0,
            RoadClass::Primary => 60.0,
            RoadClass::Secondary => 45.0,
            RoadClass::Local => 30.0,
        }
    }

    /// Free-flow travel speed in m/s.
    pub fn free_flow_ms(self) -> f64 {
        self.free_flow_kmh() / 3.6
    }

    /// All classes, ordered from fastest to slowest.
    pub fn all() -> [RoadClass; 4] {
        [
            RoadClass::Highway,
            RoadClass::Primary,
            RoadClass::Secondary,
            RoadClass::Local,
        ]
    }
}

/// Directionality of a raw road. After network construction every
/// [`RoadSegment`] is directed; a two-way road yields two segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Traversable only from the first to the last point of its polyline.
    OneWay,
    /// Traversable both ways.
    TwoWay,
}

/// A directed road segment of the (re-segmented) road network.
#[derive(Debug, Clone)]
pub struct RoadSegment {
    /// Unique segment ID.
    pub id: SegmentId,
    /// Intersection at which the segment starts.
    pub start_node: NodeId,
    /// Intersection at which the segment ends.
    pub end_node: NodeId,
    /// Shape of the segment, oriented from start to end.
    pub geometry: Polyline,
    /// Length in meters (cached from the geometry).
    pub length_m: f64,
    /// Functional class.
    pub class: RoadClass,
    /// Directionality of the originating road.
    pub direction: Direction,
    /// Spatial bounding rectangle (cached from the geometry).
    pub mbr: Mbr,
    /// For two-way roads, the segment representing the opposite direction.
    pub twin: Option<SegmentId>,
}

impl RoadSegment {
    /// Builds a segment, caching length and MBR from the geometry.
    pub fn new(
        id: SegmentId,
        start_node: NodeId,
        end_node: NodeId,
        geometry: Polyline,
        class: RoadClass,
        direction: Direction,
    ) -> Self {
        let length_m = geometry.length_m();
        let mbr = geometry.mbr();
        Self {
            id,
            start_node,
            end_node,
            geometry,
            length_m,
            class,
            direction,
            mbr,
            twin: None,
        }
    }

    /// Free-flow traversal time of the segment in seconds.
    pub fn free_flow_travel_time_s(&self) -> f64 {
        self.length_m / self.class.free_flow_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_geo::GeoPoint;

    #[test]
    fn segment_id_display_and_index() {
        let id = SegmentId(17);
        assert_eq!(id.to_string(), "r17");
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn class_speeds_are_ordered() {
        let speeds: Vec<f64> = RoadClass::all().iter().map(|c| c.free_flow_kmh()).collect();
        for w in speeds.windows(2) {
            assert!(w[0] > w[1], "classes must be ordered fastest first");
        }
        assert!((RoadClass::Highway.free_flow_ms() - 25.0).abs() < 0.1);
    }

    #[test]
    fn segment_caches_length_and_mbr() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(600.0, 0.0);
        let seg = RoadSegment::new(
            SegmentId(0),
            NodeId(0),
            NodeId(1),
            Polyline::straight(a, b),
            RoadClass::Primary,
            Direction::TwoWay,
        );
        assert!((seg.length_m - 600.0).abs() < 2.0);
        assert!(seg.mbr.contains_point(&a));
        assert!(seg.mbr.contains_point(&b));
        // 600 m at 60 km/h is 36 s.
        assert!((seg.free_flow_travel_time_s() - 36.0).abs() < 0.5);
        assert!(seg.twin.is_none());
    }
}
