//! Randomized invariant tests for the road-network substrate.
//!
//! Formerly written with proptest; the build environment is offline, so the
//! same properties are now exercised with a seeded deterministic RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streach_geo::{GeoPoint, Polyline};
use streach_roadnet::{
    expand_within_time, resegment_roads, segment_distances_from, Direction, GeneratorConfig,
    RawRoad, RoadClass, RoadNetwork, SyntheticCity,
};

fn arb_class(rng: &mut StdRng) -> RoadClass {
    match rng.gen_range(0..4u32) {
        0 => RoadClass::Highway,
        1 => RoadClass::Primary,
        2 => RoadClass::Secondary,
        _ => RoadClass::Local,
    }
}

fn arb_road(rng: &mut StdRng) -> RawRoad {
    let a = GeoPoint::new(rng.gen_range(113.9..114.3), rng.gen_range(22.45..22.75));
    let dx = rng.gen_range(-3000.0..3000.0f64);
    let dy = rng.gen_range(-3000.0..3000.0);
    // Keep roads at least 30 m long so snapping cannot collapse them.
    let dx = if dx.abs() < 30.0 { 30.0 } else { dx };
    let b = a.offset_m(dx, dy);
    RawRoad {
        geometry: Polyline::straight(a, b),
        class: arb_class(rng),
        direction: if rng.gen_bool(0.5) {
            Direction::TwoWay
        } else {
            Direction::OneWay
        },
    }
}

fn arb_roads(rng: &mut StdRng, max: usize) -> Vec<RawRoad> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| arb_road(rng)).collect()
}

/// Re-segmentation preserves total length and never produces pieces longer
/// than the granularity.
#[test]
fn resegmentation_preserves_length() {
    let mut rng = StdRng::seed_from_u64(401);
    for case in 0..48 {
        let roads = arb_roads(&mut rng, 30);
        let granularity = rng.gen_range(150.0..900.0);
        let before: f64 = roads.iter().map(|r| r.geometry.length_m()).sum();
        let out = resegment_roads(&roads, granularity);
        let after: f64 = out.iter().map(|r| r.geometry.length_m()).sum();
        assert!(
            (before - after).abs() < before.max(1.0) * 0.01 + 1.0,
            "case {case}"
        );
        for piece in &out {
            assert!(
                piece.geometry.length_m() <= granularity * 1.02 + 1.0,
                "case {case}"
            );
        }
        assert!(out.len() >= roads.len(), "case {case}");
    }
}

/// Building a network from arbitrary roads preserves the total length
/// (doubling two-way roads) and produces a consistent adjacency.
#[test]
fn network_construction_invariants() {
    let mut rng = StdRng::seed_from_u64(402);
    for case in 0..48 {
        let roads = arb_roads(&mut rng, 40);
        let net = RoadNetwork::from_roads(&roads);
        let expected_directed: f64 = roads
            .iter()
            .map(|r| match r.direction {
                Direction::TwoWay => 2.0 * r.geometry.length_m(),
                Direction::OneWay => r.geometry.length_m(),
            })
            .sum::<f64>()
            / 1000.0;
        assert!(
            (net.total_length_km() - expected_directed).abs() < expected_directed * 0.01 + 0.01,
            "case {case}"
        );

        for seg in net.segments() {
            // Successor segments start where this segment ends.
            for next in net.successors(seg.id) {
                assert_eq!(net.segment(next).start_node, seg.end_node, "case {case}");
                assert!(Some(next) != seg.twin, "case {case}");
            }
            // Twins are symmetric.
            if let Some(twin) = seg.twin {
                assert_eq!(net.segment(twin).twin, Some(seg.id), "case {case}");
            }
            // The cached MBR covers the geometry.
            for p in seg.geometry.points() {
                assert!(seg.mbr.contains_point(p), "case {case}");
            }
        }
    }
}

/// Nearest-segment lookup agrees with a brute-force scan.
#[test]
fn nearest_segment_matches_bruteforce() {
    let mut rng = StdRng::seed_from_u64(403);
    for case in 0..48 {
        let roads = arb_roads(&mut rng, 30);
        let net = RoadNetwork::from_roads(&roads);
        if net.num_segments() == 0 {
            continue;
        }
        let q = GeoPoint::new(rng.gen_range(113.9..114.3), rng.gen_range(22.45..22.75));
        let (_, d) = net.nearest_segment(&q).unwrap();
        let brute = net
            .segments()
            .iter()
            .map(|s| s.geometry.project(&q).distance_m)
            .fold(f64::INFINITY, f64::min);
        assert!(
            (d - brute).abs() < 1e-6,
            "case {case}: got {d} brute {brute}"
        );
    }
}

/// Network expansion is monotone in both the time budget and the speed.
#[test]
fn expansion_monotonicity() {
    let mut rng = StdRng::seed_from_u64(404);
    for case in 0..12 {
        let seed = rng.gen_range(0..1000u64);
        let budget = rng.gen_range(30.0..600.0);
        let city = SyntheticCity::generate(GeneratorConfig {
            seed,
            ..GeneratorConfig::small()
        });
        let net = &city.network;
        let (start, _) = net.nearest_segment(&city.central_point()).unwrap();
        let slow = expand_within_time(net, &[start], budget, |s| {
            net.segment(s).class.free_flow_ms() * 0.5
        });
        let fast = expand_within_time(net, &[start], budget, |s| {
            net.segment(s).class.free_flow_ms()
        });
        let longer = expand_within_time(net, &[start], budget * 2.0, |s| {
            net.segment(s).class.free_flow_ms() * 0.5
        });
        for seg in slow.reached() {
            assert!(
                fast.contains(seg),
                "case {case}: faster speeds must reach a superset"
            );
            assert!(
                longer.contains(seg),
                "case {case}: longer budget must reach a superset"
            );
        }
        // Arrival times never exceed the budget.
        for (_, t) in fast.arrival_s.iter() {
            assert!(*t <= budget + 1e-9, "case {case}");
        }
    }
}

/// Segment-level Dijkstra distances are consistent: they satisfy the
/// triangle inequality through direct successor relations.
#[test]
fn dijkstra_distances_are_consistent() {
    let mut rng = StdRng::seed_from_u64(405);
    for case in 0..12 {
        let seed = rng.gen_range(0..1000u64);
        let city = SyntheticCity::generate(GeneratorConfig {
            seed,
            ..GeneratorConfig::small()
        });
        let net = &city.network;
        let (start, _) = net.nearest_segment(&city.central_point()).unwrap();
        let dist = segment_distances_from(net, start, 2500.0);
        assert_eq!(dist[&start], 0.0, "case {case}");
        for (&seg, &d) in &dist {
            for next in net.successors(seg) {
                if let Some(&dn) = dist.get(&next) {
                    let edge = net.segment(next).length_m;
                    assert!(dn <= d + edge + 1e-6, "case {case}: relaxation violated");
                }
            }
        }
    }
}
