//! Property-based tests for the road-network substrate.

use proptest::prelude::*;
use streach_roadnet::{
    expand_within_time, resegment_roads, segment_distances_from, Direction, GeneratorConfig,
    RawRoad, RoadClass, RoadNetwork, SyntheticCity,
};
use streach_geo::{GeoPoint, Polyline};

fn arb_class() -> impl Strategy<Value = RoadClass> {
    prop_oneof![
        Just(RoadClass::Highway),
        Just(RoadClass::Primary),
        Just(RoadClass::Secondary),
        Just(RoadClass::Local),
    ]
}

fn arb_road() -> impl Strategy<Value = RawRoad> {
    (
        113.9f64..114.3,
        22.45f64..22.75,
        -3000.0f64..3000.0,
        -3000.0f64..3000.0,
        arb_class(),
        any::<bool>(),
    )
        .prop_map(|(lon, lat, dx, dy, class, two_way)| {
            let a = GeoPoint::new(lon, lat);
            // Keep roads at least 30 m long so snapping cannot collapse them.
            let dx = if dx.abs() < 30.0 { 30.0 } else { dx };
            let b = a.offset_m(dx, dy);
            RawRoad {
                geometry: Polyline::straight(a, b),
                class,
                direction: if two_way { Direction::TwoWay } else { Direction::OneWay },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Re-segmentation preserves total length and never produces pieces
    /// longer than the granularity.
    #[test]
    fn resegmentation_preserves_length(
        roads in proptest::collection::vec(arb_road(), 1..30),
        granularity in 150.0f64..900.0,
    ) {
        let before: f64 = roads.iter().map(|r| r.geometry.length_m()).sum();
        let out = resegment_roads(&roads, granularity);
        let after: f64 = out.iter().map(|r| r.geometry.length_m()).sum();
        prop_assert!((before - after).abs() < before.max(1.0) * 0.01 + 1.0);
        for piece in &out {
            prop_assert!(piece.geometry.length_m() <= granularity * 1.02 + 1.0);
        }
        prop_assert!(out.len() >= roads.len());
    }

    /// Building a network from arbitrary roads preserves the total length
    /// (doubling two-way roads) and produces a consistent adjacency.
    #[test]
    fn network_construction_invariants(roads in proptest::collection::vec(arb_road(), 1..40)) {
        let net = RoadNetwork::from_roads(&roads);
        let expected_directed: f64 = roads
            .iter()
            .map(|r| match r.direction {
                Direction::TwoWay => 2.0 * r.geometry.length_m(),
                Direction::OneWay => r.geometry.length_m(),
            })
            .sum::<f64>()
            / 1000.0;
        prop_assert!((net.total_length_km() - expected_directed).abs() < expected_directed * 0.01 + 0.01);

        for seg in net.segments() {
            // Successor segments start where this segment ends.
            for next in net.successors(seg.id) {
                prop_assert_eq!(net.segment(next).start_node, seg.end_node);
                prop_assert!(Some(next) != seg.twin);
            }
            // Twins are symmetric.
            if let Some(twin) = seg.twin {
                prop_assert_eq!(net.segment(twin).twin, Some(seg.id));
            }
            // The cached MBR covers the geometry.
            for p in seg.geometry.points() {
                prop_assert!(seg.mbr.contains_point(p));
            }
        }
    }

    /// Nearest-segment lookup agrees with a brute-force scan.
    #[test]
    fn nearest_segment_matches_bruteforce(
        roads in proptest::collection::vec(arb_road(), 1..30),
        qlon in 113.9f64..114.3,
        qlat in 22.45f64..22.75,
    ) {
        let net = RoadNetwork::from_roads(&roads);
        prop_assume!(net.num_segments() > 0);
        let q = GeoPoint::new(qlon, qlat);
        let (_, d) = net.nearest_segment(&q).unwrap();
        let brute = net
            .segments()
            .iter()
            .map(|s| s.geometry.project(&q).distance_m)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() < 1e-6, "got {} brute {}", d, brute);
    }

    /// Network expansion is monotone in both the time budget and the speed.
    #[test]
    fn expansion_monotonicity(seed in 0u64..1000, budget in 30.0f64..600.0) {
        let city = SyntheticCity::generate(GeneratorConfig { seed, ..GeneratorConfig::small() });
        let net = &city.network;
        let (start, _) = net.nearest_segment(&city.central_point()).unwrap();
        let slow = expand_within_time(net, &[start], budget, |s| net.segment(s).class.free_flow_ms() * 0.5);
        let fast = expand_within_time(net, &[start], budget, |s| net.segment(s).class.free_flow_ms());
        let longer = expand_within_time(net, &[start], budget * 2.0, |s| net.segment(s).class.free_flow_ms() * 0.5);
        for seg in slow.reached() {
            prop_assert!(fast.contains(seg), "faster speeds must reach a superset");
            prop_assert!(longer.contains(seg), "longer budget must reach a superset");
        }
        // Arrival times never exceed the budget.
        for (_, t) in fast.arrival_s.iter() {
            prop_assert!(*t <= budget + 1e-9);
        }
    }

    /// Segment-level Dijkstra distances are consistent: they satisfy the
    /// triangle inequality through direct successor relations.
    #[test]
    fn dijkstra_distances_are_consistent(seed in 0u64..1000) {
        let city = SyntheticCity::generate(GeneratorConfig { seed, ..GeneratorConfig::small() });
        let net = &city.network;
        let (start, _) = net.nearest_segment(&city.central_point()).unwrap();
        let dist = segment_distances_from(net, start, 2500.0);
        prop_assert_eq!(dist[&start], 0.0);
        for (&seg, &d) in &dist {
            for next in net.successors(seg) {
                if let Some(&dn) = dist.get(&next) {
                    let edge = net.segment(next).length_m;
                    prop_assert!(dn <= d + edge + 1e-6, "relaxation violated");
                }
            }
        }
    }
}
