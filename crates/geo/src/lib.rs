//! Geometry primitives shared across the `streach` workspace.
//!
//! The paper works on a metropolitan road network described in WGS-84
//! longitude/latitude coordinates (Shenzhen, China). All algorithms only need
//! a handful of geometric facilities:
//!
//! * [`GeoPoint`] — a longitude/latitude pair with great-circle and
//!   equirectangular distance helpers,
//! * [`Mbr`] — minimum bounding rectangles used by road segments and by the
//!   R-tree in `streach-spatial`,
//! * [`Polyline`] — the shape of a road segment, supporting length
//!   computation, interpolation, projection of a GPS point onto the segment
//!   and cutting (used by the pre-processing *road re-segmentation* step).
//!
//! Distances are always expressed in **meters**; all angles are degrees.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance;
pub mod mbr;
pub mod point;
pub mod polyline;

pub use distance::{equirectangular_m, haversine_m, point_segment_distance_m, EARTH_RADIUS_M};
pub use mbr::Mbr;
pub use point::GeoPoint;
pub use polyline::Polyline;
