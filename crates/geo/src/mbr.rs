//! Minimum bounding rectangles in longitude/latitude space.

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;

/// An axis-aligned minimum bounding rectangle (MBR) in lon/lat space.
///
/// Every road segment carries an MBR describing its spatial range (see the
/// *Road Network* definition in the paper), and the R-tree in
/// `streach-spatial` is built over these MBRs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    /// Western boundary (minimum longitude).
    pub min_lon: f64,
    /// Southern boundary (minimum latitude).
    pub min_lat: f64,
    /// Eastern boundary (maximum longitude).
    pub max_lon: f64,
    /// Northern boundary (maximum latitude).
    pub max_lat: f64,
}

impl Mbr {
    /// An "empty" rectangle that acts as the identity for [`Mbr::union`]:
    /// expanding it with any point yields the MBR of that point.
    pub const EMPTY: Mbr = Mbr {
        min_lon: f64::INFINITY,
        min_lat: f64::INFINITY,
        max_lon: f64::NEG_INFINITY,
        max_lat: f64::NEG_INFINITY,
    };

    /// Creates an MBR from explicit bounds. Bounds are reordered if given
    /// backwards so that the result is always well formed.
    pub fn new(min_lon: f64, min_lat: f64, max_lon: f64, max_lat: f64) -> Self {
        Self {
            min_lon: min_lon.min(max_lon),
            min_lat: min_lat.min(max_lat),
            max_lon: min_lon.max(max_lon),
            max_lat: min_lat.max(max_lat),
        }
    }

    /// The degenerate MBR of a single point.
    pub fn of_point(p: &GeoPoint) -> Self {
        Self::new(p.lon, p.lat, p.lon, p.lat)
    }

    /// Builds the MBR of an iterator of points. Returns [`Mbr::EMPTY`] when
    /// the iterator is empty.
    pub fn of_points<'a, I: IntoIterator<Item = &'a GeoPoint>>(points: I) -> Self {
        let mut mbr = Self::EMPTY;
        for p in points {
            mbr.expand_point(p);
        }
        mbr
    }

    /// Returns `true` if this is the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.min_lon > self.max_lon || self.min_lat > self.max_lat
    }

    /// Grows the rectangle to include the point `p`.
    pub fn expand_point(&mut self, p: &GeoPoint) {
        self.min_lon = self.min_lon.min(p.lon);
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lon = self.max_lon.max(p.lon);
        self.max_lat = self.max_lat.max(p.lat);
    }

    /// Grows the rectangle to include another rectangle.
    pub fn expand(&mut self, other: &Mbr) {
        self.min_lon = self.min_lon.min(other.min_lon);
        self.min_lat = self.min_lat.min(other.min_lat);
        self.max_lon = self.max_lon.max(other.max_lon);
        self.max_lat = self.max_lat.max(other.max_lat);
    }

    /// The union of two rectangles.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut m = *self;
        m.expand(other);
        m
    }

    /// Returns `true` if the point lies inside or on the boundary.
    pub fn contains_point(&self, p: &GeoPoint) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Returns `true` if `other` is fully contained in `self`.
    pub fn contains(&self, other: &Mbr) -> bool {
        other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
            && other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
    }

    /// Returns `true` if the two rectangles overlap (including touching).
    pub fn intersects(&self, other: &Mbr) -> bool {
        !(other.min_lon > self.max_lon
            || other.max_lon < self.min_lon
            || other.min_lat > self.max_lat
            || other.max_lat < self.min_lat)
    }

    /// Area in squared degrees (used for R-tree node split heuristics, where
    /// only relative comparisons matter).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_lon - self.min_lon) * (self.max_lat - self.min_lat)
        }
    }

    /// Half-perimeter ("margin") in degrees, another R-tree heuristic.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_lon - self.min_lon) + (self.max_lat - self.min_lat)
        }
    }

    /// Area of the intersection of two rectangles, zero if disjoint.
    pub fn intersection_area(&self, other: &Mbr) -> f64 {
        let w = (self.max_lon.min(other.max_lon) - self.min_lon.max(other.min_lon)).max(0.0);
        let h = (self.max_lat.min(other.max_lat) - self.min_lat.max(other.min_lat)).max(0.0);
        w * h
    }

    /// How much the area grows if `other` were merged into `self`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lon + self.max_lon) / 2.0,
            (self.min_lat + self.max_lat) / 2.0,
        )
    }

    /// Returns a copy grown by `pad_deg` degrees on every side.
    pub fn padded(&self, pad_deg: f64) -> Mbr {
        Mbr {
            min_lon: self.min_lon - pad_deg,
            min_lat: self.min_lat - pad_deg,
            max_lon: self.max_lon + pad_deg,
            max_lat: self.max_lat + pad_deg,
        }
    }

    /// Minimum distance in degrees-squared from a point to the rectangle
    /// (zero when the point is inside). Used to order R-tree nearest
    /// neighbour candidates; only relative comparisons matter.
    pub fn min_dist2_deg(&self, p: &GeoPoint) -> f64 {
        let dx = if p.lon < self.min_lon {
            self.min_lon - p.lon
        } else if p.lon > self.max_lon {
            p.lon - self.max_lon
        } else {
            0.0
        };
        let dy = if p.lat < self.min_lat {
            self.min_lat - p.lat
        } else if p.lat > self.max_lat {
            p.lat - self.max_lat
        } else {
            0.0
        };
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Mbr {
        Mbr::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn new_reorders_bounds() {
        let m = Mbr::new(2.0, 3.0, 1.0, 1.0);
        assert_eq!(m, Mbr::new(1.0, 1.0, 2.0, 3.0));
    }

    #[test]
    fn empty_identity_for_union() {
        let m = unit();
        assert_eq!(Mbr::EMPTY.union(&m), m);
        assert!(Mbr::EMPTY.is_empty());
        assert!(!m.is_empty());
        assert_eq!(Mbr::EMPTY.area(), 0.0);
        assert_eq!(Mbr::EMPTY.margin(), 0.0);
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            GeoPoint::new(114.0, 22.5),
            GeoPoint::new(114.2, 22.4),
            GeoPoint::new(113.9, 22.7),
        ];
        let m = Mbr::of_points(pts.iter());
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert_eq!(m.min_lon, 113.9);
        assert_eq!(m.max_lat, 22.7);
    }

    #[test]
    fn contains_and_intersects() {
        let outer = unit();
        let inner = Mbr::new(0.25, 0.25, 0.75, 0.75);
        let overlapping = Mbr::new(0.5, 0.5, 1.5, 1.5);
        let disjoint = Mbr::new(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.intersects(&inner));
        assert!(outer.intersects(&overlapping));
        assert!(!outer.intersects(&disjoint));
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = unit();
        let b = Mbr::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn area_margin_enlargement() {
        let a = unit();
        assert_eq!(a.area(), 1.0);
        assert_eq!(a.margin(), 2.0);
        let b = Mbr::new(1.0, 0.0, 2.0, 1.0);
        assert_eq!(a.enlargement(&b), 1.0);
        assert_eq!(a.intersection_area(&b), 0.0);
        let c = Mbr::new(0.5, 0.0, 1.5, 1.0);
        assert!((a.intersection_area(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn center_and_padding() {
        let m = unit();
        assert_eq!(m.center(), GeoPoint::new(0.5, 0.5));
        let p = m.padded(0.1);
        assert!(p.contains(&m));
        assert!((p.area() - 1.44).abs() < 1e-12);
    }

    #[test]
    fn min_dist_zero_inside_positive_outside() {
        let m = unit();
        assert_eq!(m.min_dist2_deg(&GeoPoint::new(0.5, 0.5)), 0.0);
        assert!(m.min_dist2_deg(&GeoPoint::new(2.0, 0.5)) > 0.0);
        assert_eq!(m.min_dist2_deg(&GeoPoint::new(2.0, 0.5)), 1.0);
        assert_eq!(m.min_dist2_deg(&GeoPoint::new(2.0, 2.0)), 2.0);
    }
}
