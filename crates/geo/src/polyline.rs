//! Polylines describing road-segment shapes.

use serde::{Deserialize, Serialize};

use crate::distance::{equirectangular_m, point_segment_projection_m};
use crate::mbr::Mbr;
use crate::point::GeoPoint;

/// A polyline: an ordered list of at least two points describing the shape of
/// a road segment ("a list of intermediate points (2 terminal points at the
/// beginning and the end)" in the paper's road-network definition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<GeoPoint>,
}

/// Result of projecting a point onto a polyline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Distance in meters from the query point to its closest point on the
    /// polyline.
    pub distance_m: f64,
    /// The closest point on the polyline.
    pub point: GeoPoint,
    /// Distance in meters from the start of the polyline to the closest
    /// point, measured along the polyline.
    pub offset_m: f64,
}

impl Polyline {
    /// Creates a polyline. Panics if fewer than two points are given.
    pub fn new(points: Vec<GeoPoint>) -> Self {
        assert!(points.len() >= 2, "a polyline needs at least two points");
        Self { points }
    }

    /// A straight two-point polyline.
    pub fn straight(a: GeoPoint, b: GeoPoint) -> Self {
        Self::new(vec![a, b])
    }

    /// The points of the polyline.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// First point.
    pub fn start(&self) -> GeoPoint {
        self.points[0]
    }

    /// Last point.
    pub fn end(&self) -> GeoPoint {
        *self.points.last().expect("non-empty")
    }

    /// Total length of the polyline in meters.
    pub fn length_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| equirectangular_m(&w[0], &w[1]))
            .sum()
    }

    /// Bounding rectangle of the polyline.
    pub fn mbr(&self) -> Mbr {
        Mbr::of_points(self.points.iter())
    }

    /// A copy of the polyline with the point order reversed (used to derive
    /// the opposite direction of a two-way road).
    pub fn reversed(&self) -> Polyline {
        let mut pts = self.points.clone();
        pts.reverse();
        Polyline::new(pts)
    }

    /// The point located `offset_m` meters from the start, measured along
    /// the polyline. Offsets beyond the length clamp to the end point.
    pub fn point_at_offset(&self, offset_m: f64) -> GeoPoint {
        if offset_m <= 0.0 {
            return self.start();
        }
        let mut remaining = offset_m;
        for w in self.points.windows(2) {
            let seg_len = equirectangular_m(&w[0], &w[1]);
            if remaining <= seg_len {
                let t = if seg_len <= f64::EPSILON {
                    0.0
                } else {
                    remaining / seg_len
                };
                return w[0].lerp(&w[1], t);
            }
            remaining -= seg_len;
        }
        self.end()
    }

    /// The point at a fraction `t ∈ [0, 1]` of the total length.
    pub fn point_at_fraction(&self, t: f64) -> GeoPoint {
        self.point_at_offset(self.length_m() * t.clamp(0.0, 1.0))
    }

    /// Projects `p` onto the polyline, returning the closest point, the
    /// distance to it and its offset along the polyline.
    pub fn project(&self, p: &GeoPoint) -> Projection {
        let mut best = Projection {
            distance_m: f64::INFINITY,
            point: self.start(),
            offset_m: 0.0,
        };
        let mut walked = 0.0;
        for w in self.points.windows(2) {
            let seg_len = equirectangular_m(&w[0], &w[1]);
            let (d, t) = point_segment_projection_m(p, &w[0], &w[1]);
            if d < best.distance_m {
                best = Projection {
                    distance_m: d,
                    point: w[0].lerp(&w[1], t),
                    offset_m: walked + seg_len * t,
                };
            }
            walked += seg_len;
        }
        best
    }

    /// Splits the polyline into consecutive pieces, each at most
    /// `max_piece_m` meters long. This is the geometric core of the paper's
    /// *road re-segmentation* pre-processing step (default granularity
    /// 500 m): long roads (e.g. highways) are chopped into pieces by adding
    /// new intersection points.
    ///
    /// Returns at least one piece; pieces keep the original intermediate
    /// points and add interpolated cut points.
    pub fn split_by_length(&self, max_piece_m: f64) -> Vec<Polyline> {
        assert!(max_piece_m > 0.0, "granularity must be positive");
        let total = self.length_m();
        if total <= max_piece_m {
            return vec![self.clone()];
        }
        // Use equal-length pieces so no piece exceeds the granularity and the
        // last piece is not degenerate.
        let n_pieces = (total / max_piece_m).ceil() as usize;
        let piece_len = total / n_pieces as f64;

        let mut pieces = Vec::with_capacity(n_pieces);
        let mut current = vec![self.start()];
        let mut walked_in_piece = 0.0;
        for w in self.points.windows(2) {
            let mut seg_start = w[0];
            let seg_end = w[1];
            let mut seg_len = equirectangular_m(&seg_start, &seg_end);
            // Consume the segment, cutting whenever we hit the piece length.
            while walked_in_piece + seg_len >= piece_len - 1e-9 && pieces.len() + 1 < n_pieces {
                let need = piece_len - walked_in_piece;
                let t = if seg_len <= f64::EPSILON {
                    1.0
                } else {
                    need / seg_len
                };
                let cut = seg_start.lerp(&seg_end, t);
                current.push(cut);
                pieces.push(Polyline::new(std::mem::replace(&mut current, vec![cut])));
                seg_start = cut;
                seg_len -= need;
                walked_in_piece = 0.0;
            }
            if seg_len > f64::EPSILON {
                current.push(seg_end);
                walked_in_piece += seg_len;
            } else if current.last() != Some(&seg_end)
                && equirectangular_m(current.last().unwrap(), &seg_end) > 1e-9
            {
                current.push(seg_end);
            }
        }
        if current.len() >= 2 {
            pieces.push(Polyline::new(current));
        }
        pieces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(1000.0, 0.0);
        let c = b.offset_m(0.0, 1000.0);
        Polyline::new(vec![a, b, c])
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        let _ = Polyline::new(vec![GeoPoint::new(0.0, 0.0)]);
    }

    #[test]
    fn length_of_l_shape() {
        let p = l_shape();
        assert!((p.length_m() - 2000.0).abs() < 5.0, "len {}", p.length_m());
    }

    #[test]
    fn start_end_and_reverse() {
        let p = l_shape();
        let r = p.reversed();
        assert_eq!(p.start(), r.end());
        assert_eq!(p.end(), r.start());
        assert!((p.length_m() - r.length_m()).abs() < 1e-6);
    }

    #[test]
    fn point_at_offset_clamps() {
        let p = l_shape();
        assert_eq!(p.point_at_offset(-5.0), p.start());
        assert_eq!(p.point_at_offset(1e9), p.end());
        let mid = p.point_at_offset(1000.0);
        // 1000 m along the L-shape is the corner.
        assert!(mid.haversine_m(&p.points()[1]) < 5.0);
    }

    #[test]
    fn point_at_fraction_midpoint() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(800.0, 0.0);
        let p = Polyline::straight(a, b);
        let mid = p.point_at_fraction(0.5);
        assert!(mid.haversine_m(&a.offset_m(400.0, 0.0)) < 1.0);
    }

    #[test]
    fn projection_onto_l_shape() {
        let p = l_shape();
        // A point 300m east, 50m north of the start projects onto the first leg.
        let q = p.start().offset_m(300.0, 50.0);
        let proj = p.project(&q);
        assert!(
            (proj.distance_m - 50.0).abs() < 2.0,
            "d {}",
            proj.distance_m
        );
        assert!(
            (proj.offset_m - 300.0).abs() < 2.0,
            "offset {}",
            proj.offset_m
        );
        // A point near the far end projects onto the second leg with offset ~ 1900.
        let q2 = p.end().offset_m(40.0, -100.0);
        let proj2 = p.project(&q2);
        assert!(
            (proj2.offset_m - 1900.0).abs() < 5.0,
            "offset {}",
            proj2.offset_m
        );
        assert!((proj2.distance_m - 40.0).abs() < 2.0);
    }

    #[test]
    fn split_short_polyline_is_identity() {
        let p = l_shape();
        let pieces = p.split_by_length(5000.0);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0], p);
    }

    #[test]
    fn split_preserves_total_length_and_granularity() {
        let p = l_shape(); // ~2000 m
        let pieces = p.split_by_length(500.0);
        assert_eq!(pieces.len(), 4);
        let total: f64 = pieces.iter().map(|x| x.length_m()).sum();
        assert!((total - p.length_m()).abs() < 1.0, "total {total}");
        for piece in &pieces {
            assert!(piece.length_m() <= 500.0 + 1.0);
            assert!(piece.length_m() > 100.0);
        }
        // Pieces are contiguous.
        for w in pieces.windows(2) {
            assert!(w[0].end().haversine_m(&w[1].start()) < 1e-6);
        }
        assert_eq!(pieces[0].start(), p.start());
        assert_eq!(pieces.last().unwrap().end(), p.end());
    }

    #[test]
    fn split_long_straight_road() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(10_000.0, 0.0);
        let road = Polyline::straight(a, b);
        let pieces = road.split_by_length(500.0);
        let expected = (road.length_m() / 500.0).ceil() as usize;
        assert_eq!(pieces.len(), expected);
        let nominal = road.length_m() / expected as f64;
        for piece in &pieces {
            assert!(
                piece.length_m() <= 505.0,
                "piece too long: {}",
                piece.length_m()
            );
            assert!((piece.length_m() - nominal).abs() < 5.0);
        }
    }

    #[test]
    fn mbr_covers_polyline() {
        let p = l_shape();
        let m = p.mbr();
        for pt in p.points() {
            assert!(m.contains_point(pt));
        }
    }
}
