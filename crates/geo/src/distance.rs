//! Distance computations on the WGS-84 sphere.

use crate::point::GeoPoint;

/// Mean earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two points using the haversine formula, in
/// meters.
pub fn haversine_m(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let phi1 = a.lat.to_radians();
    let phi2 = b.lat.to_radians();
    let dphi = (b.lat - a.lat).to_radians();
    let dlambda = (b.lon - a.lon).to_radians();
    let h = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// Equirectangular approximation of the distance between two points, in
/// meters.
///
/// At metropolitan scale (tens of kilometers) the relative error versus the
/// haversine distance is below 0.1%, and this formula is several times
/// cheaper, so it is used in the hot loops (map matching, R-tree nearest
/// neighbour refinement).
pub fn equirectangular_m(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let mean_lat = ((a.lat + b.lat) / 2.0).to_radians();
    let x = (b.lon - a.lon).to_radians() * mean_lat.cos();
    let y = (b.lat - a.lat).to_radians();
    EARTH_RADIUS_M * (x * x + y * y).sqrt()
}

/// Distance in meters from point `p` to the straight segment `a`–`b`,
/// together with the fraction `t ∈ [0, 1]` of the projection along the
/// segment.
///
/// The computation is done on a local tangent plane centred at `a`, which is
/// accurate for road-segment-sized geometries (hundreds of meters).
pub fn point_segment_projection_m(p: &GeoPoint, a: &GeoPoint, b: &GeoPoint) -> (f64, f64) {
    let lat0 = a.lat.to_radians();
    let scale_x = EARTH_RADIUS_M * lat0.cos() * std::f64::consts::PI / 180.0;
    let scale_y = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
    let ax = 0.0;
    let ay = 0.0;
    let bx = (b.lon - a.lon) * scale_x;
    let by = (b.lat - a.lat) * scale_y;
    let px = (p.lon - a.lon) * scale_x;
    let py = (p.lat - a.lat) * scale_y;
    let dx = bx - ax;
    let dy = by - ay;
    let len2 = dx * dx + dy * dy;
    let t = if len2 <= f64::EPSILON {
        0.0
    } else {
        ((px - ax) * dx + (py - ay) * dy) / len2
    };
    let t = t.clamp(0.0, 1.0);
    let cx = ax + t * dx;
    let cy = ay + t * dy;
    let d = ((px - cx).powi(2) + (py - cy).powi(2)).sqrt();
    (d, t)
}

/// Distance in meters from point `p` to the straight segment `a`–`b`.
#[inline]
pub fn point_segment_distance_m(p: &GeoPoint, a: &GeoPoint, b: &GeoPoint) -> f64 {
    point_segment_projection_m(p, a, b).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(114.05, 22.53);
        assert_eq!(haversine_m(&p, &p), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(114.05, 22.53);
        let b = GeoPoint::new(114.10, 22.60);
        assert!((haversine_m(&a, &b) - haversine_m(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn haversine_known_distance() {
        // One degree of latitude is roughly 111.2 km.
        let a = GeoPoint::new(114.0, 22.0);
        let b = GeoPoint::new(114.0, 23.0);
        let d = haversine_m(&a, &b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = GeoPoint::new(114.0550, 22.5311);
        let b = GeoPoint::new(114.1212, 22.5890);
        let h = haversine_m(&a, &b);
        let e = equirectangular_m(&a, &b);
        assert!((h - e).abs() / h < 1e-3, "haversine {h} vs equirect {e}");
    }

    #[test]
    fn point_on_segment_has_zero_distance() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = GeoPoint::new(114.01, 22.5);
        let mid = a.midpoint(&b);
        let (d, t) = point_segment_projection_m(&mid, &a, &b);
        assert!(d < 0.5, "distance {d}");
        assert!((t - 0.5).abs() < 1e-6);
    }

    #[test]
    fn point_beyond_endpoint_clamps() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = GeoPoint::new(114.01, 22.5);
        // A point east of b projects onto t = 1.
        let p = GeoPoint::new(114.02, 22.5);
        let (d, t) = point_segment_projection_m(&p, &a, &b);
        assert_eq!(t, 1.0);
        let expected = haversine_m(&p, &b);
        assert!((d - expected).abs() / expected < 1e-2);
    }

    #[test]
    fn degenerate_segment_distance_is_point_distance() {
        let a = GeoPoint::new(114.0, 22.5);
        let p = GeoPoint::new(114.001, 22.501);
        let (d, t) = point_segment_projection_m(&p, &a, &a);
        assert_eq!(t, 0.0);
        assert!((d - haversine_m(&p, &a)).abs() < 1.0);
    }

    #[test]
    fn perpendicular_distance() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = a.offset_m(1000.0, 0.0);
        let p = a.offset_m(500.0, 300.0);
        let d = point_segment_distance_m(&p, &a, &b);
        assert!((d - 300.0).abs() < 2.0, "got {d}");
    }
}
