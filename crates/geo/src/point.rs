//! Longitude/latitude points.

use serde::{Deserialize, Serialize};

use crate::distance::{equirectangular_m, haversine_m};

/// A WGS-84 point expressed as degrees of longitude and latitude.
///
/// The order of the fields follows the trajectory record layout of the paper
/// (`longitude`, `latitude`), and all distance helpers return meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in degrees, positive east.
    pub lon: f64,
    /// Latitude in degrees, positive north.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a new point from a longitude and latitude in degrees.
    #[inline]
    pub fn new(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// Great-circle (haversine) distance to `other`, in meters.
    #[inline]
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        haversine_m(self, other)
    }

    /// Fast equirectangular approximation of the distance to `other`, in
    /// meters. Adequate at city scale (the error is well below GPS noise).
    #[inline]
    pub fn fast_distance_m(&self, other: &GeoPoint) -> f64 {
        equirectangular_m(self, other)
    }

    /// Linear interpolation between `self` and `other`.
    ///
    /// `t = 0.0` yields `self`, `t = 1.0` yields `other`. Values outside
    /// `[0, 1]` extrapolate along the same straight (lon/lat) line.
    #[inline]
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint::new(
            self.lon + (other.lon - self.lon) * t,
            self.lat + (other.lat - self.lat) * t,
        )
    }

    /// Midpoint between the two points (in lon/lat space).
    #[inline]
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        self.lerp(other, 0.5)
    }

    /// Initial bearing from `self` to `other` in degrees, clockwise from
    /// north, in `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dl = (other.lon - self.lon).to_radians();
        let y = dl.sin() * phi2.cos();
        let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dl.cos();
        let theta = y.atan2(x).to_degrees();
        (theta + 360.0) % 360.0
    }

    /// Returns a point displaced by `dx_m` meters east and `dy_m` meters
    /// north of `self`, using a local tangent-plane approximation.
    pub fn offset_m(&self, dx_m: f64, dy_m: f64) -> GeoPoint {
        let lat_rad = self.lat.to_radians();
        let dlat = dy_m / crate::EARTH_RADIUS_M;
        let dlon = dx_m / (crate::EARTH_RADIUS_M * lat_rad.cos());
        GeoPoint::new(self.lon + dlon.to_degrees(), self.lat + dlat.to_degrees())
    }

    /// Returns `true` if both coordinates are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.lon.is_finite() && self.lat.is_finite()
    }
}

impl From<(f64, f64)> for GeoPoint {
    /// Converts a `(lon, lat)` tuple into a point.
    fn from((lon, lat): (f64, f64)) -> Self {
        GeoPoint::new(lon, lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shenzhen_center() -> GeoPoint {
        // Roughly the query location used throughout the paper's evaluation.
        GeoPoint::new(114.0550, 22.5311)
    }

    #[test]
    fn lerp_endpoints() {
        let a = GeoPoint::new(114.0, 22.5);
        let b = GeoPoint::new(114.1, 22.6);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lon - 114.05).abs() < 1e-12);
        assert!((mid.lat - 22.55).abs() < 1e-12);
    }

    #[test]
    fn midpoint_matches_half_lerp() {
        let a = GeoPoint::new(113.9, 22.4);
        let b = GeoPoint::new(114.2, 22.7);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
    }

    #[test]
    fn offset_round_trip_distance() {
        let p = shenzhen_center();
        let q = p.offset_m(500.0, 0.0);
        let d = p.haversine_m(&q);
        assert!((d - 500.0).abs() < 1.0, "offset east by 500m measured {d}");
        let r = p.offset_m(0.0, -1200.0);
        let d = p.haversine_m(&r);
        assert!(
            (d - 1200.0).abs() < 2.0,
            "offset south by 1200m measured {d}"
        );
    }

    #[test]
    fn bearing_cardinal_directions() {
        let p = shenzhen_center();
        let north = p.offset_m(0.0, 1000.0);
        let east = p.offset_m(1000.0, 0.0);
        let south = p.offset_m(0.0, -1000.0);
        let west = p.offset_m(-1000.0, 0.0);
        assert!(p.bearing_deg(&north).abs() < 1.0 || (p.bearing_deg(&north) - 360.0).abs() < 1.0);
        assert!((p.bearing_deg(&east) - 90.0).abs() < 1.0);
        assert!((p.bearing_deg(&south) - 180.0).abs() < 1.0);
        assert!((p.bearing_deg(&west) - 270.0).abs() < 1.0);
    }

    #[test]
    fn from_tuple() {
        let p: GeoPoint = (114.0, 22.5).into();
        assert_eq!(p, GeoPoint::new(114.0, 22.5));
    }

    #[test]
    fn finite_check() {
        assert!(GeoPoint::new(1.0, 2.0).is_finite());
        assert!(!GeoPoint::new(f64::NAN, 2.0).is_finite());
        assert!(!GeoPoint::new(1.0, f64::INFINITY).is_finite());
    }
}
