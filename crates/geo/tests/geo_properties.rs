//! Randomized invariant tests for the geometry primitives.
//!
//! Formerly written with proptest; the build environment is offline, so the
//! same properties are now exercised with a seeded deterministic RNG: every
//! case that ever fails can be reproduced exactly by its iteration index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streach_geo::{equirectangular_m, haversine_m, GeoPoint, Mbr, Polyline};

const CASES: usize = 128;

/// Longitude/latitude draws constrained to a Shenzhen-sized bounding box so
/// that the planar approximations stay valid (matching the paper's study
/// area).
fn city_point(rng: &mut StdRng) -> GeoPoint {
    GeoPoint::new(rng.gen_range(113.75..114.45), rng.gen_range(22.40..22.85))
}

fn points(rng: &mut StdRng, n: usize) -> Vec<GeoPoint> {
    (0..n).map(|_| city_point(rng)).collect()
}

#[test]
fn haversine_is_symmetric_and_nonnegative() {
    let mut rng = StdRng::seed_from_u64(101);
    for case in 0..CASES {
        let (a, b) = (city_point(&mut rng), city_point(&mut rng));
        let d1 = haversine_m(&a, &b);
        let d2 = haversine_m(&b, &a);
        assert!(d1 >= 0.0, "case {case}");
        assert!((d1 - d2).abs() < 1e-6, "case {case}");
    }
}

#[test]
fn haversine_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(102);
    for case in 0..CASES {
        let (a, b, c) = (
            city_point(&mut rng),
            city_point(&mut rng),
            city_point(&mut rng),
        );
        let ab = haversine_m(&a, &b);
        let bc = haversine_m(&b, &c);
        let ac = haversine_m(&a, &c);
        assert!(ac <= ab + bc + 1e-6, "case {case}");
    }
}

#[test]
fn equirectangular_tracks_haversine() {
    let mut rng = StdRng::seed_from_u64(103);
    for case in 0..CASES {
        let (a, b) = (city_point(&mut rng), city_point(&mut rng));
        let h = haversine_m(&a, &b);
        let e = equirectangular_m(&a, &b);
        // At city scale the two must agree within 0.5%.
        assert!(
            (h - e).abs() <= 0.005 * h.max(1.0),
            "case {case}: h {h} vs e {e}"
        );
    }
}

#[test]
fn offset_distance_round_trip() {
    let mut rng = StdRng::seed_from_u64(104);
    for case in 0..CASES {
        let p = city_point(&mut rng);
        let dx = rng.gen_range(-2000.0..2000.0);
        let dy = rng.gen_range(-2000.0..2000.0);
        let q = p.offset_m(dx, dy);
        let expect = (dx * dx + dy * dy).sqrt();
        let got = haversine_m(&p, &q);
        assert!(
            (got - expect).abs() < expect.max(1.0) * 0.01 + 1.0,
            "case {case}"
        );
    }
}

#[test]
fn mbr_union_contains_both() {
    let mut rng = StdRng::seed_from_u64(105);
    for case in 0..CASES {
        let pts = points(&mut rng, 4);
        let m1 = Mbr::of_points(pts[..2].iter());
        let m2 = Mbr::of_points(pts[2..].iter());
        let u = m1.union(&m2);
        assert!(u.contains(&m1), "case {case}");
        assert!(u.contains(&m2), "case {case}");
        assert!(u.area() + 1e-15 >= m1.area().max(m2.area()), "case {case}");
    }
}

#[test]
fn mbr_intersection_area_is_commutative_and_bounded() {
    let mut rng = StdRng::seed_from_u64(106);
    for case in 0..CASES {
        let pts = points(&mut rng, 4);
        let m1 = Mbr::of_points(pts[..2].iter());
        let m2 = Mbr::of_points(pts[2..].iter());
        let i12 = m1.intersection_area(&m2);
        let i21 = m2.intersection_area(&m1);
        assert!((i12 - i21).abs() < 1e-15, "case {case}");
        assert!(i12 <= m1.area() + 1e-15, "case {case}");
        assert!(i12 <= m2.area() + 1e-15, "case {case}");
        if i12 > 0.0 {
            assert!(m1.intersects(&m2), "case {case}");
        }
    }
}

#[test]
fn mbr_min_dist_zero_iff_contained() {
    let mut rng = StdRng::seed_from_u64(107);
    for case in 0..CASES {
        let p = city_point(&mut rng);
        let pts = points(&mut rng, 2);
        let m = Mbr::of_points(pts.iter());
        let d = m.min_dist2_deg(&p);
        if m.contains_point(&p) {
            assert_eq!(d, 0.0, "case {case}");
        } else {
            assert!(d > 0.0, "case {case}");
        }
    }
}

#[test]
fn projection_distance_not_larger_than_endpoint_distance() {
    let mut rng = StdRng::seed_from_u64(108);
    for case in 0..CASES {
        let p = city_point(&mut rng);
        let n = rng.gen_range(2..8usize);
        let line = Polyline::new(points(&mut rng, n));
        let proj = line.project(&p);
        let to_start = equirectangular_m(&p, &line.start());
        let to_end = equirectangular_m(&p, &line.end());
        // Allow 1% slack: the projection uses a tangent plane anchored at each
        // segment's start while the endpoint distances use the equirectangular
        // formula, so the two approximations diverge slightly on long segments.
        assert!(proj.distance_m <= to_start * 1.01 + 1.0, "case {case}");
        assert!(proj.distance_m <= to_end * 1.01 + 1.0, "case {case}");
        assert!(proj.offset_m >= -1e-9, "case {case}");
        assert!(proj.offset_m <= line.length_m() + 1.0, "case {case}");
    }
}

#[test]
fn split_by_length_preserves_length_and_endpoints() {
    let mut rng = StdRng::seed_from_u64(109);
    for case in 0..CASES {
        let n = rng.gen_range(2..6usize);
        let line = Polyline::new(points(&mut rng, n));
        let granularity = rng.gen_range(200.0..2000.0);
        let pieces = line.split_by_length(granularity);
        assert!(!pieces.is_empty(), "case {case}");
        let total: f64 = pieces.iter().map(|p| p.length_m()).sum();
        assert!(
            (total - line.length_m()).abs() < line.length_m().max(1.0) * 0.01 + 1.0,
            "case {case}"
        );
        assert_eq!(pieces[0].start(), line.start(), "case {case}");
        assert_eq!(pieces.last().unwrap().end(), line.end(), "case {case}");
        for piece in &pieces {
            assert!(
                piece.length_m() <= granularity + granularity * 0.01 + 1.0,
                "case {case}"
            );
        }
        // Contiguity between consecutive pieces.
        for w in pieces.windows(2) {
            assert!(w[0].end().haversine_m(&w[1].start()) < 1.0, "case {case}");
        }
    }
}

#[test]
fn point_at_offset_is_on_or_near_polyline() {
    let mut rng = StdRng::seed_from_u64(110);
    for case in 0..CASES {
        let n = rng.gen_range(2..6usize);
        let line = Polyline::new(points(&mut rng, n));
        let frac = rng.gen_range(0.0..1.0);
        let p = line.point_at_fraction(frac);
        let proj = line.project(&p);
        assert!(
            proj.distance_m < 1.0,
            "case {case}: distance {}",
            proj.distance_m
        );
    }
}
