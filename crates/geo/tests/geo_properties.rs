//! Property-based tests for the geometry primitives.

use proptest::prelude::*;
use streach_geo::{equirectangular_m, haversine_m, GeoPoint, Mbr, Polyline};

/// Longitude/latitude generator constrained to a Shenzhen-sized bounding box
/// so that the planar approximations stay valid (matching the paper's study
/// area).
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (113.75f64..114.45f64, 22.40f64..22.85f64).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

proptest! {
    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in city_point(), b in city_point()) {
        let d1 = haversine_m(&a, &b);
        let d2 = haversine_m(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn haversine_triangle_inequality(a in city_point(), b in city_point(), c in city_point()) {
        let ab = haversine_m(&a, &b);
        let bc = haversine_m(&b, &c);
        let ac = haversine_m(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn equirectangular_tracks_haversine(a in city_point(), b in city_point()) {
        let h = haversine_m(&a, &b);
        let e = equirectangular_m(&a, &b);
        // At city scale the two must agree within 0.5%.
        prop_assert!((h - e).abs() <= 0.005 * h.max(1.0));
    }

    #[test]
    fn offset_distance_round_trip(p in city_point(), dx in -2000.0f64..2000.0, dy in -2000.0f64..2000.0) {
        let q = p.offset_m(dx, dy);
        let expect = (dx * dx + dy * dy).sqrt();
        let got = haversine_m(&p, &q);
        prop_assert!((got - expect).abs() < expect.max(1.0) * 0.01 + 1.0);
    }

    #[test]
    fn mbr_union_contains_both(a in city_point(), b in city_point(), c in city_point(), d in city_point()) {
        let m1 = Mbr::of_points([a, b].iter());
        let m2 = Mbr::of_points([c, d].iter());
        let u = m1.union(&m2);
        prop_assert!(u.contains(&m1));
        prop_assert!(u.contains(&m2));
        prop_assert!(u.area() + 1e-15 >= m1.area().max(m2.area()));
    }

    #[test]
    fn mbr_intersection_area_is_commutative_and_bounded(
        a in city_point(), b in city_point(), c in city_point(), d in city_point()
    ) {
        let m1 = Mbr::of_points([a, b].iter());
        let m2 = Mbr::of_points([c, d].iter());
        let i12 = m1.intersection_area(&m2);
        let i21 = m2.intersection_area(&m1);
        prop_assert!((i12 - i21).abs() < 1e-15);
        prop_assert!(i12 <= m1.area() + 1e-15);
        prop_assert!(i12 <= m2.area() + 1e-15);
        if i12 > 0.0 {
            prop_assert!(m1.intersects(&m2));
        }
    }

    #[test]
    fn mbr_min_dist_zero_iff_contained(p in city_point(), a in city_point(), b in city_point()) {
        let m = Mbr::of_points([a, b].iter());
        let d = m.min_dist2_deg(&p);
        if m.contains_point(&p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn projection_distance_not_larger_than_endpoint_distance(
        p in city_point(), pts in proptest::collection::vec(city_point(), 2..8)
    ) {
        let line = Polyline::new(pts);
        let proj = line.project(&p);
        let to_start = equirectangular_m(&p, &line.start());
        let to_end = equirectangular_m(&p, &line.end());
        // Allow 1% slack: the projection uses a tangent plane anchored at each
        // segment's start while the endpoint distances use the equirectangular
        // formula, so the two approximations diverge slightly on long segments.
        prop_assert!(proj.distance_m <= to_start * 1.01 + 1.0);
        prop_assert!(proj.distance_m <= to_end * 1.01 + 1.0);
        prop_assert!(proj.offset_m >= -1e-9);
        prop_assert!(proj.offset_m <= line.length_m() + 1.0);
    }

    #[test]
    fn split_by_length_preserves_length_and_endpoints(
        pts in proptest::collection::vec(city_point(), 2..6),
        granularity in 200.0f64..2000.0
    ) {
        let line = Polyline::new(pts);
        let pieces = line.split_by_length(granularity);
        prop_assert!(!pieces.is_empty());
        let total: f64 = pieces.iter().map(|p| p.length_m()).sum();
        prop_assert!((total - line.length_m()).abs() < line.length_m().max(1.0) * 0.01 + 1.0);
        prop_assert_eq!(pieces[0].start(), line.start());
        prop_assert_eq!(pieces.last().unwrap().end(), line.end());
        for piece in &pieces {
            prop_assert!(piece.length_m() <= granularity + granularity * 0.01 + 1.0);
        }
        // Contiguity between consecutive pieces.
        for w in pieces.windows(2) {
            prop_assert!(w[0].end().haversine_m(&w[1].start()) < 1.0);
        }
    }

    #[test]
    fn point_at_offset_is_on_or_near_polyline(
        pts in proptest::collection::vec(city_point(), 2..6),
        frac in 0.0f64..1.0
    ) {
        let line = Polyline::new(pts);
        let p = line.point_at_fraction(frac);
        let proj = line.project(&p);
        prop_assert!(proj.distance_m < 1.0, "distance {}", proj.distance_m);
    }
}
