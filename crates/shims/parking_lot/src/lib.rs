//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free locking API
//! (`lock()` returning the guard directly). Lock poisoning is translated to
//! "keep going with the inner data", matching parking_lot's behaviour of not
//! poisoning at all.

use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive (std-backed, parking_lot-flavoured API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (std-backed, parking_lot-flavoured API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_conflicts() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
