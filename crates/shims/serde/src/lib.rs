//! Offline shim for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream ergonomics, but nothing in the repository serializes through
//! serde at runtime (GeoJSON export is hand-rolled). The build environment is
//! fully network-isolated, so instead of the real serde this shim provides
//! marker traits plus no-op derive macros with the same names. Swapping the
//! real serde back in is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
