//! Offline shim for `rand`.
//!
//! Provides the tiny API subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over half-open ranges —
//! backed by xoshiro256++ seeded through SplitMix64. The streams differ from
//! the real `rand` crate, but every consumer in the workspace only relies on
//! *determinism for a fixed seed*, which this shim guarantees.

use std::ops::Range;

/// Construction of reproducible RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

/// The user-facing random-value API.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::*;

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
            assert!(
                range.start < range.end,
                "gen_range requires a non-empty range"
            );
            T::sample_half_open(self, range.start, range.end)
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Guard against rounding up to `high` for extreme spans.
        if v >= high {
            low
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Modulo bias is negligible for the spans used here and
                // irrelevant for the synthetic-data use cases of this
                // workspace; determinism is the property that matters.
                low.wrapping_add((rng.next_u64() % span) as Self)
            }
        }
    )*};
}
impl_sample_uniform_int!(u16, u32, u64, usize, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.5..2.5f64);
            assert!((-3.5..2.5).contains(&f));
            let u = rng.gen_range(10..20usize);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let draws: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let lo = draws.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = draws.iter().cloned().fold(0.0, f64::max);
        assert!(lo < 0.05, "minimum draw {lo}");
        assert!(hi > 0.95, "maximum draw {hi}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "{hits} hits of 10000 at p=0.25"
        );
    }
}
