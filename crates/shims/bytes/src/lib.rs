//! Offline shim for `bytes`.
//!
//! Implements the `Buf` (advancing reader over `&[u8]`) and `BufMut`
//! (appending writer over `Vec<u8>`) trait subset this workspace's posting
//! and B-tree serialization uses: little-endian fixed-width integers plus
//! `remaining`/`advance`/`put_slice`.

/// An advancing read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Copies `dst.len()` bytes out of the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

/// An appending write sink for bytes.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
