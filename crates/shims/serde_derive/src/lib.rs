//! Offline shim for `serde_derive`: emits empty `Serialize`/`Deserialize`
//! marker-trait impls so that `#[derive(Serialize, Deserialize)]` attributes
//! in the workspace compile without the real serde machinery (nothing in this
//! repository serializes through serde at runtime; see the `serde` shim).
//!
//! The parser is intentionally tiny: it extracts the type name (and any
//! generic parameter names) following the `struct`/`enum`/`union` keyword.
//! Lifetime/const generics and where-clauses are not supported — the
//! workspace only derives on plain named types.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generic_idents)` from an item definition.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [ ... ]`) and visibility/keyword tokens until the
    // `struct`/`enum`/`union` keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ref id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    // Collect generic type parameter idents between `<` and `>`, if any.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_ident = true;
            for tt in tokens.by_ref() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_ident = true,
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_ident = false,
                    TokenTree::Ident(id) if depth == 1 && expect_ident => {
                        generics.push(id.to_string());
                        expect_ident = false;
                    }
                    _ => {}
                }
            }
        }
    }
    (name, generics)
}

fn impl_marker(trait_name: &str, input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let code = if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        format!("impl<{params}> ::serde::{trait_name} for {name}<{params}> {{}}")
    };
    code.parse()
        .expect("serde shim derive: generated impl must parse")
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker("Serialize", input)
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker("Deserialize", input)
}
