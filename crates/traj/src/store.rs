//! The map-matched trajectory dataset.

use serde::{Deserialize, Serialize};
use streach_roadnet::RoadNetwork;

use crate::map_matching::{map_match, MatchedTrajectory};
use crate::simulator::{FleetConfig, FleetSimulator};

/// Summary statistics of a trajectory dataset — the contents of Table 4.1
/// ("Dataset Description") for whatever dataset is actually loaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of distinct taxis (moving objects).
    pub num_taxis: usize,
    /// Number of days covered.
    pub num_days: u16,
    /// Number of trajectories (taxis × days with data).
    pub num_trajectories: usize,
    /// Total number of segment visits (after map matching).
    pub num_segment_visits: u64,
    /// Total number of raw GPS records, when known (0 for datasets generated
    /// directly in matched form).
    pub num_gps_records: u64,
}

/// One map-matched trajectory point in flattened *streaming* form: the unit
/// of the ingest pipeline. A [`MatchedTrajectory`] is the batch view of the
/// same data ([`points_of`] flattens one into its points); an online feed
/// delivers points directly in this shape as taxis report in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrajPoint {
    /// Trajectory ID (same numbering as [`MatchedTrajectory::traj_id`]).
    pub traj_id: u32,
    /// Day index of the observation.
    pub date: u16,
    /// The road segment entered.
    pub segment: streach_roadnet::SegmentId,
    /// Time of day (seconds after midnight) the segment was entered.
    pub enter_time_s: u32,
}

/// Flattens a [`MatchedTrajectory`] into its stream of [`TrajPoint`]s, in
/// visit order. Feeding these points to a streaming ingest in order is
/// equivalent to having had the trajectory in the batch dataset.
pub fn points_of(traj: &MatchedTrajectory) -> impl Iterator<Item = TrajPoint> + '_ {
    traj.visits.iter().map(|visit| TrajPoint {
        traj_id: traj.traj_id,
        date: traj.date,
        segment: visit.segment,
        enter_time_s: visit.enter_time_s,
    })
}

/// The historical trajectory database `TR` over which reachability queries
/// are answered.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryDataset {
    trajectories: Vec<MatchedTrajectory>,
    num_taxis: usize,
    num_days: u16,
    num_gps_records: u64,
}

impl TrajectoryDataset {
    /// Wraps already map-matched trajectories.
    pub fn from_matched(
        trajectories: Vec<MatchedTrajectory>,
        num_taxis: usize,
        num_days: u16,
    ) -> Self {
        Self {
            trajectories,
            num_taxis,
            num_days,
            num_gps_records: 0,
        }
    }

    /// Simulates a fleet and returns its (ground-truth matched) dataset.
    /// This is the standard way the examples and benchmarks build their data.
    pub fn simulate(network: &RoadNetwork, config: FleetConfig) -> Self {
        let num_taxis = config.num_taxis;
        let num_days = config.num_days;
        let sim = FleetSimulator::new(network, config);
        Self::from_matched(sim.simulate_matched(), num_taxis, num_days)
    }

    /// Simulates a fleet with raw GPS emission and runs the full
    /// pre-processing pipeline (map matching) on it. Slower, but exercises
    /// the same code path a real GPS dataset would go through.
    pub fn simulate_with_map_matching(network: &RoadNetwork, config: FleetConfig) -> Self {
        let num_taxis = config.num_taxis;
        let num_days = config.num_days;
        let sim = FleetSimulator::new(network, config);
        let pairs = sim.simulate_with_gps();
        let num_gps_records: u64 = pairs.iter().map(|(raw, _)| raw.len() as u64).sum();
        let raws: Vec<_> = pairs.into_iter().map(|(raw, _)| raw).collect();
        let matched = map_match(network, &raws);
        Self {
            trajectories: matched,
            num_taxis,
            num_days,
            num_gps_records,
        }
    }

    /// The trajectories.
    pub fn trajectories(&self) -> &[MatchedTrajectory] {
        &self.trajectories
    }

    /// Number of days the dataset spans (`m` in Eq. 3.1).
    pub fn num_days(&self) -> u16 {
        self.num_days
    }

    /// Number of distinct taxis.
    pub fn num_taxis(&self) -> usize {
        self.num_taxis
    }

    /// Dataset statistics (Table 4.1).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            num_taxis: self.num_taxis,
            num_days: self.num_days,
            num_trajectories: self.trajectories.len(),
            num_segment_visits: self.trajectories.iter().map(|t| t.len() as u64).sum(),
            num_gps_records: self.num_gps_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_matching::match_agreement;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};

    #[test]
    fn simulate_builds_consistent_stats() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let cfg = FleetConfig::tiny();
        let ds = TrajectoryDataset::simulate(&city.network, cfg.clone());
        let stats = ds.stats();
        assert_eq!(stats.num_taxis, cfg.num_taxis);
        assert_eq!(stats.num_days, cfg.num_days);
        assert_eq!(
            stats.num_trajectories,
            cfg.num_taxis * cfg.num_days as usize
        );
        assert!(stats.num_segment_visits > 0);
        assert_eq!(stats.num_gps_records, 0);
        assert_eq!(ds.trajectories().len(), stats.num_trajectories);
    }

    #[test]
    fn map_matched_pipeline_agrees_with_ground_truth() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let cfg = FleetConfig {
            num_taxis: 3,
            num_days: 1,
            ..FleetConfig::tiny()
        };
        // Ground truth.
        let sim = FleetSimulator::new(&city.network, cfg.clone());
        let pairs = sim.simulate_with_gps();
        let matcher_input: Vec<_> = pairs.iter().map(|(raw, _)| raw.clone()).collect();
        let matched = map_match(&city.network, &matcher_input);
        let mut total_agreement = 0.0;
        for (m, (_, truth)) in matched.iter().zip(&pairs) {
            total_agreement += match_agreement(&city.network, m, truth);
        }
        let avg = total_agreement / matched.len() as f64;
        assert!(avg > 0.8, "map matching agreement too low: {avg}");

        // The full pipeline constructor produces the same number of trajectories.
        let ds = TrajectoryDataset::simulate_with_map_matching(&city.network, cfg);
        assert_eq!(ds.trajectories().len(), pairs.len());
        assert!(ds.stats().num_gps_records > 0);
    }

    #[test]
    fn from_matched_preserves_input() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let ds1 = TrajectoryDataset::simulate(&city.network, FleetConfig::tiny());
        let ds2 = TrajectoryDataset::from_matched(
            ds1.trajectories().to_vec(),
            ds1.num_taxis(),
            ds1.num_days(),
        );
        assert_eq!(
            ds1.stats().num_segment_visits,
            ds2.stats().num_segment_visits
        );
    }
}
