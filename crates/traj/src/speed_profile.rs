//! Time-of-day speed profiles.
//!
//! The paper's evaluation shows that "at around 7am and 6pm, the running
//! time drops significantly, which [is] primarily because of the effect of
//! rush hours. The traffic condition goes down during these rush hours, which
//! leads to smaller reachable regions" (Section 4.2.3). The synthetic fleet
//! reproduces this with a deterministic congestion profile: a multiplicative
//! factor on the free-flow speed that dips during the morning and evening
//! peaks.

use serde::{Deserialize, Serialize};
use streach_roadnet::RoadClass;

/// A deterministic time-of-day congestion profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedProfile {
    /// Lowest congestion factor reached at the centre of a rush-hour peak
    /// (e.g. 0.35 = traffic moves at 35% of free-flow speed).
    pub rush_hour_floor: f64,
    /// Baseline daytime factor outside rush hours.
    pub daytime_factor: f64,
    /// Night-time factor (free-flowing).
    pub night_factor: f64,
}

impl Default for SpeedProfile {
    fn default() -> Self {
        Self {
            rush_hour_floor: 0.35,
            daytime_factor: 0.85,
            night_factor: 1.0,
        }
    }
}

/// Gaussian-ish bump used to shape the rush-hour dips.
fn bump(hour: f64, center: f64, width: f64) -> f64 {
    let x = (hour - center) / width;
    (-x * x).exp()
}

impl SpeedProfile {
    /// Congestion factor in `(0, 1]` at `time_s` seconds after midnight.
    ///
    /// The profile has a morning peak centred at 07:45 and an evening peak
    /// centred at 18:00, free-flowing nights, and a mild daytime baseline.
    pub fn congestion_factor(&self, time_s: u32) -> f64 {
        let hour = (time_s % crate::SECONDS_PER_DAY) as f64 / 3600.0;
        // Night: before 06:00 or after 22:00.
        let day_blend = bump(hour, 13.0, 7.0); // ~1 during the day, ~0 at night
        let base = self.night_factor + (self.daytime_factor - self.night_factor) * day_blend;
        let morning = bump(hour, 7.75, 1.1);
        let evening = bump(hour, 18.0, 1.3);
        let peak = morning.max(evening);
        let factor = base - (base - self.rush_hour_floor) * peak;
        factor.clamp(0.05, 1.0)
    }

    /// Actual travel speed in m/s on a road of the given class at the given
    /// time of day.
    ///
    /// Rush-hour congestion hits the arterial classes (highway/primary)
    /// hardest — matching the observation that long highway trips dominate
    /// the far part of the reachable region while congestion reshapes it.
    pub fn speed_ms(&self, class: RoadClass, time_s: u32) -> f64 {
        let factor = self.congestion_factor(time_s);
        let class_sensitivity = match class {
            RoadClass::Highway => 1.0,
            RoadClass::Primary => 0.95,
            RoadClass::Secondary => 0.85,
            RoadClass::Local => 0.75,
        };
        // Blend the congestion factor toward 1.0 for less sensitive classes.
        let effective = 1.0 - (1.0 - factor) * class_sensitivity;
        class.free_flow_ms() * effective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hhmm(h: u32, m: u32) -> u32 {
        h * 3600 + m * 60
    }

    #[test]
    fn night_is_free_flowing() {
        let p = SpeedProfile::default();
        assert!(p.congestion_factor(hhmm(2, 0)) > 0.9);
        assert!(p.congestion_factor(hhmm(23, 30)) > 0.85);
    }

    #[test]
    fn rush_hours_are_congested() {
        let p = SpeedProfile::default();
        let morning = p.congestion_factor(hhmm(7, 45));
        let evening = p.congestion_factor(hhmm(18, 0));
        let midday = p.congestion_factor(hhmm(12, 0));
        let night = p.congestion_factor(hhmm(1, 0));
        assert!(morning < 0.5, "morning factor {morning}");
        assert!(evening < 0.5, "evening factor {evening}");
        assert!(
            midday > morning + 0.2,
            "midday {midday} vs morning {morning}"
        );
        assert!(night > midday, "night {night} vs midday {midday}");
    }

    #[test]
    fn factor_is_always_in_range() {
        let p = SpeedProfile::default();
        for t in (0..crate::SECONDS_PER_DAY).step_by(60) {
            let f = p.congestion_factor(t);
            assert!((0.05..=1.0).contains(&f), "factor {f} at {t}");
        }
    }

    #[test]
    fn speeds_ordered_by_class_at_all_times() {
        let p = SpeedProfile::default();
        for t in (0..crate::SECONDS_PER_DAY).step_by(1800) {
            let h = p.speed_ms(RoadClass::Highway, t);
            let pr = p.speed_ms(RoadClass::Primary, t);
            let s = p.speed_ms(RoadClass::Secondary, t);
            let l = p.speed_ms(RoadClass::Local, t);
            assert!(
                h > pr && pr > s && s > l,
                "speeds not ordered at t={t}: {h} {pr} {s} {l}"
            );
            assert!(l > 1.0, "local speed collapsed at t={t}");
        }
    }

    #[test]
    fn rush_hour_slows_highways_more_in_relative_terms() {
        let p = SpeedProfile::default();
        let highway_ratio =
            p.speed_ms(RoadClass::Highway, hhmm(7, 45)) / RoadClass::Highway.free_flow_ms();
        let local_ratio =
            p.speed_ms(RoadClass::Local, hhmm(7, 45)) / RoadClass::Local.free_flow_ms();
        assert!(highway_ratio < local_ratio);
    }

    #[test]
    fn time_wraps_across_midnight() {
        let p = SpeedProfile::default();
        let same = p.congestion_factor(hhmm(1, 0));
        let wrapped = p.congestion_factor(crate::SECONDS_PER_DAY + hhmm(1, 0));
        assert!((same - wrapped).abs() < 1e-12);
    }
}
