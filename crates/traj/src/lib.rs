//! Trajectory substrate: GPS records, a taxi-fleet simulator and map
//! matching.
//!
//! The paper's evaluation uses 30 days of GPS traces from 21,385 taxis in
//! Shenzhen (407 million records, 194 GB). That dataset is proprietary, so
//! this crate provides a faithful synthetic stand-in:
//!
//! * [`gps`] — raw GPS records and trajectories (trajectory ID, longitude,
//!   latitude, speed, timestamp — the five core attributes of Table 4.1),
//! * [`speed_profile`] — time-of-day congestion profiles that create the
//!   rush-hour effects the evaluation studies in Fig. 4.5/4.6,
//! * [`simulator`] — a deterministic taxi-fleet simulator that routes trips
//!   over the road network and emits GPS points every ~30 seconds,
//! * [`map_matching`] — the pre-processing *map-matching* step that converts
//!   raw GPS points into sequences of road-segment visits (standing in for
//!   the interactive-voting map matcher [29] the paper uses),
//! * [`store`] — the map-matched trajectory dataset consumed by the index
//!   construction in `streach-core`, together with the statistics reported
//!   in Table 4.1.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gps;
pub mod map_matching;
pub mod simulator;
pub mod speed_profile;
pub mod store;

pub use gps::{GpsRecord, RawTrajectory};
pub use map_matching::{map_match, MatchedTrajectory, SegmentVisit};
pub use simulator::{FleetConfig, FleetSimulator};
pub use speed_profile::SpeedProfile;
pub use store::{points_of, DatasetStats, TrajPoint, TrajectoryDataset};

/// Number of seconds in a day.
pub const SECONDS_PER_DAY: u32 = 24 * 3600;
