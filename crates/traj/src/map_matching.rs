//! Map matching (pre-processing step 2).
//!
//! "In this step, we map the raw trajectory data onto the newly segmented
//! road network. [...] At first, we map GPS points to corresponding road
//! segments and then connect all road segments to make up the mapped
//! trajectory." (Section 3.1)
//!
//! The paper uses the interactive-voting map matcher of Yuan et al. [29];
//! here we implement a lighter nearest-segment matcher with a path-continuity
//! bonus, which is sufficient for the simulator's 10 m GPS noise and keeps
//! the pre-processing pipeline end-to-end testable (the simulator knows the
//! ground-truth segments, so matching quality is asserted in tests).

use serde::{Deserialize, Serialize};
use streach_geo::Mbr;
use streach_roadnet::{RoadNetwork, SegmentId};
use streach_spatial::GridIndex;

use crate::gps::RawTrajectory;

/// One visit of a trajectory to a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentVisit {
    /// The visited segment.
    pub segment: SegmentId,
    /// Time of day (seconds after midnight) at which the trajectory entered
    /// the segment.
    pub enter_time_s: u32,
}

/// A map-matched trajectory: the ordered list of segments visited during one
/// day by one moving object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchedTrajectory {
    /// Unique trajectory ID (same numbering as the raw trajectory).
    pub traj_id: u32,
    /// Day index within the dataset.
    pub date: u16,
    /// Ordered segment visits.
    pub visits: Vec<SegmentVisit>,
}

impl MatchedTrajectory {
    /// Creates an empty matched trajectory.
    pub fn new(traj_id: u32, date: u16) -> Self {
        Self {
            traj_id,
            date,
            visits: Vec::new(),
        }
    }

    /// Number of segment visits.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// Returns `true` when there are no visits.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    /// Appends a visit, merging consecutive visits to the same segment.
    pub fn push(&mut self, visit: SegmentVisit) {
        if let Some(last) = self.visits.last() {
            if last.segment == visit.segment {
                return;
            }
            debug_assert!(
                visit.enter_time_s >= last.enter_time_s,
                "visits must be time-ordered"
            );
        }
        self.visits.push(visit);
    }
}

/// A reusable map-matcher holding the candidate grid for a road network.
pub struct MapMatcher<'a> {
    network: &'a RoadNetwork,
    grid: GridIndex<SegmentId>,
    /// GPS points farther than this from every segment are dropped as noise.
    max_match_distance_m: f64,
    /// Bonus (in meters of equivalent distance) granted to candidates that
    /// continue the previous segment.
    continuity_bonus_m: f64,
}

impl<'a> MapMatcher<'a> {
    /// Builds a matcher for the network. `max_match_distance_m` is the
    /// largest GPS-to-segment distance still considered a valid match
    /// (50 m by default in [`map_match`]).
    pub fn new(network: &'a RoadNetwork, max_match_distance_m: f64) -> Self {
        let bounds = network.bounds().padded(0.01);
        let mut grid = GridIndex::new(bounds, 250.0);
        for seg in network.segments() {
            grid.insert(&seg.mbr, seg.id);
        }
        Self {
            network,
            grid,
            max_match_distance_m,
            continuity_bonus_m: 25.0,
        }
    }

    /// Matches one raw trajectory.
    pub fn match_trajectory(&self, raw: &RawTrajectory) -> MatchedTrajectory {
        let mut matched = MatchedTrajectory::new(raw.traj_id, raw.date);
        let mut previous: Option<SegmentId> = None;
        for rec in &raw.records {
            let candidates = self.grid.candidates_near(&rec.point);
            let mut best: Option<(SegmentId, f64)> = None;
            for cand in candidates {
                let seg = self.network.segment(cand);
                let d = seg.geometry.project(&rec.point).distance_m;
                if d > self.max_match_distance_m {
                    continue;
                }
                let mut score = d;
                if let Some(prev) = previous {
                    if cand == prev
                        || self.network.successors(prev).contains(&cand)
                        || self.network.segment(prev).twin == Some(cand)
                    {
                        score -= self.continuity_bonus_m;
                    }
                }
                if best.map(|(_, s)| score < s).unwrap_or(true) {
                    best = Some((cand, score));
                }
            }
            // Fall back to the R-tree when the grid neighbourhood was empty.
            let chosen = best.map(|(c, _)| c).or_else(|| {
                self.network
                    .nearest_segment(&rec.point)
                    .filter(|(_, d)| *d <= self.max_match_distance_m)
                    .map(|(id, _)| id)
            });
            if let Some(seg) = chosen {
                matched.push(SegmentVisit {
                    segment: seg,
                    enter_time_s: rec.time_s,
                });
                previous = Some(seg);
            }
        }
        matched
    }
}

/// Convenience wrapper: builds a matcher and matches a batch of raw
/// trajectories with a 50 m matching radius.
pub fn map_match(network: &RoadNetwork, raw: &[RawTrajectory]) -> Vec<MatchedTrajectory> {
    let matcher = MapMatcher::new(network, 50.0);
    raw.iter().map(|t| matcher.match_trajectory(t)).collect()
}

/// Returns the fraction of visits in `matched` whose segment (or its twin)
/// also appears in `truth` — a simple quality metric used by tests and the
/// pre-processing example.
pub fn match_agreement(
    network: &RoadNetwork,
    matched: &MatchedTrajectory,
    truth: &MatchedTrajectory,
) -> f64 {
    if matched.visits.is_empty() {
        return 0.0;
    }
    let truth_set: std::collections::HashSet<SegmentId> = truth
        .visits
        .iter()
        .flat_map(|v| {
            let twin = network.segment(v.segment).twin;
            std::iter::once(v.segment).chain(twin)
        })
        .collect();
    let hits = matched
        .visits
        .iter()
        .filter(|v| truth_set.contains(&v.segment))
        .count();
    hits as f64 / matched.visits.len() as f64
}

/// A window, used by tests, that covers all geometry of a matched trajectory.
pub fn matched_mbr(network: &RoadNetwork, matched: &MatchedTrajectory) -> Mbr {
    let mut mbr = Mbr::EMPTY;
    for v in &matched.visits {
        mbr.expand(&network.segment(v.segment).mbr);
    }
    mbr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gps::GpsRecord;
    use streach_geo::{GeoPoint, Polyline};
    use streach_roadnet::{Direction, RawRoad, RoadClass};

    /// A straight two-way road of 4 chained 500 m segments.
    fn straight_net() -> RoadNetwork {
        let origin = GeoPoint::new(114.0, 22.5);
        let mut roads = Vec::new();
        for i in 0..4 {
            let a = origin.offset_m(i as f64 * 500.0, 0.0);
            let b = origin.offset_m((i + 1) as f64 * 500.0, 0.0);
            roads.push(RawRoad {
                geometry: Polyline::straight(a, b),
                class: RoadClass::Primary,
                direction: Direction::TwoWay,
            });
        }
        RoadNetwork::from_roads(&roads)
    }

    fn gps_along_road(offsets_m: &[f64], noise_m: f64) -> RawTrajectory {
        let origin = GeoPoint::new(114.0, 22.5);
        let mut raw = RawTrajectory::new(1, 0);
        for (i, &off) in offsets_m.iter().enumerate() {
            let noise = if i % 2 == 0 { noise_m } else { -noise_m };
            raw.push(GpsRecord {
                traj_id: 1,
                point: origin.offset_m(off, noise),
                speed_ms: 12.0,
                time_s: 36000 + (i as u32) * 30,
                date: 0,
            });
        }
        raw
    }

    #[test]
    fn matches_points_to_consecutive_segments() {
        let net = straight_net();
        let raw = gps_along_road(&[50.0, 400.0, 700.0, 1100.0, 1600.0, 1950.0], 8.0);
        let matched = map_match(&net, &[raw])[0].clone();
        assert!(matched.len() >= 4, "visits {}", matched.len());
        // Visits must be time ordered and cover increasing offsets.
        for w in matched.visits.windows(2) {
            assert!(w[0].enter_time_s <= w[1].enter_time_s);
            assert_ne!(w[0].segment, w[1].segment);
        }
        // All matched segments are among the 8 directed segments of the road.
        for v in &matched.visits {
            assert!(v.segment.index() < net.num_segments());
        }
    }

    #[test]
    fn consecutive_duplicates_are_merged() {
        let net = straight_net();
        // Many fixes on the same segment.
        let raw = gps_along_road(&[50.0, 100.0, 180.0, 260.0, 380.0], 5.0);
        let matched = map_match(&net, &[raw])[0].clone();
        assert_eq!(matched.len(), 1, "all points lie on the first segment");
    }

    #[test]
    fn noisy_points_far_from_roads_are_dropped() {
        let net = straight_net();
        let origin = GeoPoint::new(114.0, 22.5);
        let mut raw = RawTrajectory::new(2, 3);
        raw.push(GpsRecord {
            traj_id: 2,
            point: origin.offset_m(100.0, 5.0),
            speed_ms: 10.0,
            time_s: 100,
            date: 3,
        });
        // An outlier 3 km off the road.
        raw.push(GpsRecord {
            traj_id: 2,
            point: origin.offset_m(200.0, 3000.0),
            speed_ms: 10.0,
            time_s: 130,
            date: 3,
        });
        let matched = map_match(&net, &[raw])[0].clone();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched.date, 3);
        assert_eq!(matched.traj_id, 2);
    }

    #[test]
    fn continuity_prefers_previous_direction() {
        let net = straight_net();
        // Points exactly on the centre line are equidistant from the two
        // directed twins; continuity must keep the matcher on one of them
        // rather than flip-flopping.
        let raw = gps_along_road(&[50.0, 300.0, 550.0, 800.0, 1050.0], 0.0);
        let matched = map_match(&net, &[raw])[0].clone();
        // No segment may be immediately followed by its twin.
        for w in matched.visits.windows(2) {
            assert_ne!(
                Some(w[1].segment),
                net.segment(w[0].segment).twin,
                "U-turn artefact"
            );
        }
    }

    #[test]
    fn empty_trajectory_matches_to_empty() {
        let net = straight_net();
        let raw = RawTrajectory::new(9, 0);
        let matched = map_match(&net, &[raw])[0].clone();
        assert!(matched.is_empty());
    }

    #[test]
    fn agreement_metric_bounds() {
        let net = straight_net();
        let raw = gps_along_road(&[50.0, 700.0, 1200.0, 1700.0], 5.0);
        let matched = map_match(&net, &[raw])[0].clone();
        let agreement = match_agreement(&net, &matched, &matched);
        assert_eq!(agreement, 1.0);
        let empty = MatchedTrajectory::new(1, 0);
        assert_eq!(match_agreement(&net, &empty, &matched), 0.0);
    }

    #[test]
    fn matched_mbr_covers_visited_segments() {
        let net = straight_net();
        let raw = gps_along_road(&[50.0, 700.0, 1200.0], 5.0);
        let matched = map_match(&net, &[raw])[0].clone();
        let mbr = matched_mbr(&net, &matched);
        for v in &matched.visits {
            assert!(mbr.contains(&net.segment(v.segment).mbr));
        }
    }
}
