//! Raw GPS records and trajectories.

use serde::{Deserialize, Serialize};
use streach_geo::GeoPoint;

/// One GPS fix.
///
/// "Each record has five core attributes including trajectory ID, longitude,
/// latitude, speed and time." (Section 4.1) — plus the date, since the
/// Prob-reachable computation treats the same taxi on different days as
/// different trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsRecord {
    /// Trajectory this record belongs to.
    pub traj_id: u32,
    /// Position of the fix.
    pub point: GeoPoint,
    /// Instantaneous speed in m/s.
    pub speed_ms: f64,
    /// Seconds since midnight (local time of day).
    pub time_s: u32,
    /// Day index within the dataset (0-based).
    pub date: u16,
}

/// A raw trajectory: the ordered GPS records of one moving object during one
/// day ("one moving object only has one trajectory per day").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawTrajectory {
    /// Unique trajectory ID (taxi × date).
    pub traj_id: u32,
    /// Day index within the dataset.
    pub date: u16,
    /// GPS records ordered by time.
    pub records: Vec<GpsRecord>,
}

impl RawTrajectory {
    /// Creates an empty trajectory.
    pub fn new(traj_id: u32, date: u16) -> Self {
        Self {
            traj_id,
            date,
            records: Vec::new(),
        }
    }

    /// Appends a record, asserting that time does not go backwards.
    pub fn push(&mut self, record: GpsRecord) {
        if let Some(last) = self.records.last() {
            debug_assert!(
                record.time_s >= last.time_s,
                "GPS records must be time-ordered"
            );
        }
        self.records.push(record);
    }

    /// Number of GPS records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the trajectory has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time span covered by the trajectory, in seconds (0 for < 2 records).
    pub fn duration_s(&self) -> u32 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.time_s.saturating_sub(a.time_s),
            _ => 0,
        }
    }

    /// Straight-line sampled length: the sum of distances between
    /// consecutive fixes, in meters.
    pub fn sampled_length_m(&self) -> f64 {
        self.records
            .windows(2)
            .map(|w| w[0].point.haversine_m(&w[1].point))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u32, lon: f64, lat: f64) -> GpsRecord {
        GpsRecord {
            traj_id: 1,
            point: GeoPoint::new(lon, lat),
            speed_ms: 10.0,
            time_s: t,
            date: 0,
        }
    }

    #[test]
    fn empty_trajectory() {
        let t = RawTrajectory::new(1, 0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.duration_s(), 0);
        assert_eq!(t.sampled_length_m(), 0.0);
    }

    #[test]
    fn push_and_measures() {
        let mut t = RawTrajectory::new(1, 0);
        let p0 = GeoPoint::new(114.0, 22.5);
        let p1 = p0.offset_m(300.0, 0.0);
        let p2 = p1.offset_m(0.0, 400.0);
        t.push(record(100, p0.lon, p0.lat));
        t.push(record(130, p1.lon, p1.lat));
        t.push(record(160, p2.lon, p2.lat));
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration_s(), 60);
        assert!((t.sampled_length_m() - 700.0).abs() < 3.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_records_rejected_in_debug() {
        let mut t = RawTrajectory::new(1, 0);
        t.push(record(100, 114.0, 22.5));
        t.push(record(50, 114.0, 22.5));
    }
}
