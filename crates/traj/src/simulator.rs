//! The taxi-fleet simulator.
//!
//! The simulator drives a configurable fleet over the road network for a
//! configurable number of days, producing either raw GPS streams (to exercise
//! the map-matching pre-processing) or directly map-matched trajectories (the
//! ground truth, used to build large datasets cheaply).
//!
//! The movement model is a class-weighted network walk rather than
//! origin–destination routing: taxis prefer faster road classes and rarely
//! U-turn, they pause between "trips" to model passenger pick-ups, and their
//! speed on every segment follows the time-of-day [`SpeedProfile`] plus
//! per-taxi noise. This reproduces the structural properties the paper's
//! evaluation depends on — dense coverage of central segments, long-range
//! movement along highways, rush-hour slowdowns — without the cost of
//! millions of shortest-path computations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use streach_roadnet::{RoadNetwork, SegmentId};

use crate::gps::{GpsRecord, RawTrajectory};
use crate::map_matching::{MatchedTrajectory, SegmentVisit};
use crate::speed_profile::SpeedProfile;

/// Configuration of the simulated fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of taxis in the fleet.
    pub num_taxis: usize,
    /// Number of days simulated.
    pub num_days: u16,
    /// Time of day at which taxis start operating (seconds after midnight).
    pub day_start_s: u32,
    /// Time of day at which taxis stop operating.
    pub day_end_s: u32,
    /// Interval between GPS fixes in seconds (the paper's fleet reports
    /// roughly every 30 seconds).
    pub gps_interval_s: u32,
    /// Standard deviation of the GPS position noise in meters.
    pub gps_noise_m: f64,
    /// Mean driving time between passenger stops, in seconds.
    pub mean_trip_duration_s: f64,
    /// Mean idle time at a stop, in seconds.
    pub mean_idle_s: f64,
    /// Relative speed noise per taxi and segment (0.15 = ±15%).
    pub speed_noise: f64,
    /// Time-of-day congestion profile.
    pub profile: SpeedProfile,
    /// RNG seed; the same seed reproduces the same fleet.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_taxis: 200,
            num_days: 30,
            day_start_s: 0,
            day_end_s: crate::SECONDS_PER_DAY,
            gps_interval_s: 30,
            gps_noise_m: 8.0,
            mean_trip_duration_s: 15.0 * 60.0,
            mean_idle_s: 6.0 * 60.0,
            speed_noise: 0.15,
            profile: SpeedProfile::default(),
            seed: 2014,
        }
    }
}

impl FleetConfig {
    /// A tiny fleet for unit tests: 5 taxis, 3 days, daytime only.
    pub fn tiny() -> Self {
        Self {
            num_taxis: 5,
            num_days: 3,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 1,
            ..Self::default()
        }
    }
}

/// Drives the fleet over a road network.
pub struct FleetSimulator<'a> {
    network: &'a RoadNetwork,
    config: FleetConfig,
}

/// Result of simulating one taxi-day with ground truth attached.
struct DayResult {
    raw: RawTrajectory,
    matched: MatchedTrajectory,
}

impl<'a> FleetSimulator<'a> {
    /// Creates a simulator. Panics on an empty network or inconsistent
    /// configuration.
    pub fn new(network: &'a RoadNetwork, config: FleetConfig) -> Self {
        assert!(
            network.num_segments() > 0,
            "cannot simulate on an empty network"
        );
        assert!(
            config.day_end_s > config.day_start_s,
            "day must have positive length"
        );
        assert!(config.gps_interval_s > 0, "GPS interval must be positive");
        Self { network, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Simulates the whole fleet, returning only the map-matched ground
    /// truth (cheap; used to build large datasets).
    pub fn simulate_matched(&self) -> Vec<MatchedTrajectory> {
        self.simulate_internal(false)
            .into_iter()
            .map(|d| d.matched)
            .collect()
    }

    /// Simulates the whole fleet, returning raw GPS trajectories together
    /// with their ground-truth matched counterparts (used to validate the
    /// map-matching step).
    pub fn simulate_with_gps(&self) -> Vec<(RawTrajectory, MatchedTrajectory)> {
        self.simulate_internal(true)
            .into_iter()
            .map(|d| (d.raw, d.matched))
            .collect()
    }

    fn simulate_internal(&self, emit_gps: bool) -> Vec<DayResult> {
        let cfg = &self.config;
        let mut out = Vec::with_capacity(cfg.num_taxis * cfg.num_days as usize);
        for taxi in 0..cfg.num_taxis {
            for date in 0..cfg.num_days {
                let traj_id = (taxi as u32) * cfg.num_days as u32 + date as u32;
                // Derive a per-(taxi, date) seed so each day is independent
                // yet reproducible.
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((taxi as u64) << 20)
                    .wrapping_add(date as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                out.push(self.simulate_day(traj_id, date, &mut rng, emit_gps));
            }
        }
        out
    }

    /// Exponentially distributed duration with the given mean.
    fn exp_duration(rng: &mut StdRng, mean_s: f64) -> f64 {
        let u: f64 = rng.gen_range(1e-6..1.0);
        -mean_s * u.ln()
    }

    fn pick_start_segment(&self, rng: &mut StdRng) -> SegmentId {
        let idx = rng.gen_range(0..self.network.num_segments());
        SegmentId(idx as u32)
    }

    /// Chooses the next segment of the walk: successors weighted by the
    /// square of their free-flow speed (taxis prefer arterials), with a dead
    /// end falling back to the twin (U-turn).
    fn pick_next_segment(&self, current: SegmentId, rng: &mut StdRng) -> Option<SegmentId> {
        let succ = self.network.successors(current);
        if succ.is_empty() {
            return self.network.segment(current).twin;
        }
        let weights: Vec<f64> = succ
            .iter()
            .map(|s| {
                let v = self.network.segment(*s).class.free_flow_ms();
                v * v
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        for (seg, w) in succ.iter().zip(&weights) {
            if pick < *w {
                return Some(*seg);
            }
            pick -= w;
        }
        succ.last().copied()
    }

    fn simulate_day(&self, traj_id: u32, date: u16, rng: &mut StdRng, emit_gps: bool) -> DayResult {
        let cfg = &self.config;
        let mut raw = RawTrajectory::new(traj_id, date);
        let mut matched = MatchedTrajectory::new(traj_id, date);

        let mut current = self.pick_start_segment(rng);
        let mut time = cfg.day_start_s as f64 + rng.gen_range(0.0..300.0);
        let mut next_fix = time;
        let mut trip_remaining = Self::exp_duration(rng, cfg.mean_trip_duration_s);

        while time < cfg.day_end_s as f64 {
            let seg = self.network.segment(current);
            matched.push(SegmentVisit {
                segment: current,
                enter_time_s: time as u32,
            });

            // Travel speed on this segment right now.
            let noise = 1.0 + rng.gen_range(-cfg.speed_noise..cfg.speed_noise);
            let speed = (cfg.profile.speed_ms(seg.class, time as u32) * noise).max(1.0);
            let traversal = seg.length_m / speed;
            let enter_time = time;
            let exit_time = time + traversal;

            if emit_gps {
                while next_fix < exit_time && next_fix < cfg.day_end_s as f64 {
                    let frac = ((next_fix - enter_time) / traversal).clamp(0.0, 1.0);
                    let on_road = seg.geometry.point_at_fraction(frac);
                    let jitter_x = rng.gen_range(-cfg.gps_noise_m..cfg.gps_noise_m);
                    let jitter_y = rng.gen_range(-cfg.gps_noise_m..cfg.gps_noise_m);
                    raw.push(GpsRecord {
                        traj_id,
                        point: on_road.offset_m(jitter_x, jitter_y),
                        speed_ms: speed,
                        time_s: next_fix as u32,
                        date,
                    });
                    next_fix += cfg.gps_interval_s as f64;
                }
            }

            time = exit_time;
            trip_remaining -= traversal;
            if trip_remaining <= 0.0 {
                // Passenger stop: idle, then start a new trip from here.
                let idle = Self::exp_duration(rng, cfg.mean_idle_s);
                time += idle;
                next_fix = next_fix.max(time);
                trip_remaining = Self::exp_duration(rng, cfg.mean_trip_duration_s);
            }
            match self.pick_next_segment(current, rng) {
                Some(next) => current = next,
                None => break,
            }
        }
        DayResult { raw, matched }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};

    fn small_city() -> SyntheticCity {
        SyntheticCity::generate(GeneratorConfig::small())
    }

    #[test]
    fn simulation_is_deterministic() {
        let city = small_city();
        let sim = FleetSimulator::new(&city.network, FleetConfig::tiny());
        let a = sim.simulate_matched();
        let b = sim.simulate_matched();
        assert_eq!(a, b);
    }

    #[test]
    fn produces_one_trajectory_per_taxi_per_day() {
        let city = small_city();
        let cfg = FleetConfig::tiny();
        let sim = FleetSimulator::new(&city.network, cfg.clone());
        let matched = sim.simulate_matched();
        assert_eq!(matched.len(), cfg.num_taxis * cfg.num_days as usize);
        // Trajectory IDs are unique.
        let mut ids: Vec<u32> = matched.iter().map(|t| t.traj_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), matched.len());
        // Dates span 0..num_days.
        assert!(matched.iter().all(|t| t.date < cfg.num_days));
    }

    #[test]
    fn visits_are_time_ordered_and_within_operating_hours() {
        let city = small_city();
        let cfg = FleetConfig::tiny();
        let sim = FleetSimulator::new(&city.network, cfg.clone());
        for traj in sim.simulate_matched() {
            assert!(!traj.is_empty());
            for w in traj.visits.windows(2) {
                assert!(w[0].enter_time_s <= w[1].enter_time_s);
            }
            assert!(traj.visits.first().unwrap().enter_time_s >= cfg.day_start_s);
            assert!(traj.visits.last().unwrap().enter_time_s <= cfg.day_end_s + 3600);
        }
    }

    #[test]
    fn consecutive_visits_are_adjacent_segments() {
        let city = small_city();
        let sim = FleetSimulator::new(&city.network, FleetConfig::tiny());
        let matched = sim.simulate_matched();
        for traj in &matched {
            for w in traj.visits.windows(2) {
                let a = w[0].segment;
                let b = w[1].segment;
                let ok = city.network.successors(a).contains(&b)
                    || city.network.segment(a).twin == Some(b);
                assert!(ok, "visit jump from {a} to {b}");
            }
        }
    }

    #[test]
    fn gps_fixes_are_near_the_visited_segments() {
        let city = small_city();
        let sim = FleetSimulator::new(
            &city.network,
            FleetConfig {
                num_taxis: 2,
                num_days: 1,
                ..FleetConfig::tiny()
            },
        );
        let pairs = sim.simulate_with_gps();
        assert_eq!(pairs.len(), 2);
        for (raw, matched) in &pairs {
            assert!(!raw.is_empty(), "GPS stream must not be empty");
            assert!(!matched.is_empty());
            // Fix interval is respected (allowing idle gaps).
            for w in raw.records.windows(2) {
                assert!(w[1].time_s >= w[0].time_s + sim.config().gps_interval_s - 1);
            }
            // Every fix lies close to some segment of the network.
            for rec in &raw.records {
                let (_, d) = city.network.nearest_segment(&rec.point).unwrap();
                assert!(d < 60.0, "GPS fix {d} m away from every road");
            }
        }
    }

    #[test]
    fn rush_hour_days_cover_fewer_segments_per_hour() {
        // At rush hour taxis are slower, so in a fixed wall-clock window they
        // traverse fewer segments than at free-flow night time.
        let city = small_city();
        let mk = |start: u32| FleetConfig {
            num_taxis: 8,
            num_days: 2,
            day_start_s: start,
            day_end_s: start + 3600,
            seed: 3,
            ..FleetConfig::default()
        };
        let night = FleetSimulator::new(&city.network, mk(2 * 3600)).simulate_matched();
        let rush = FleetSimulator::new(&city.network, mk(7 * 3600 + 1800)).simulate_matched();
        let night_visits: usize = night.iter().map(|t| t.len()).sum();
        let rush_visits: usize = rush.iter().map(|t| t.len()).sum();
        assert!(
            night_visits as f64 > rush_visits as f64 * 1.2,
            "night {night_visits} vs rush {rush_visits}"
        );
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn invalid_day_window_rejected() {
        let city = small_city();
        let cfg = FleetConfig {
            day_start_s: 10,
            day_end_s: 10,
            ..FleetConfig::tiny()
        };
        let _ = FleetSimulator::new(&city.network, cfg);
    }
}
