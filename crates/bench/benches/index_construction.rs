//! Criterion benchmarks for the offline index-construction stages: the
//! ST-Index build, the per-slot Con-Index connection tables and the two
//! spatial indexes (ablation: R-tree STR bulk load vs incremental insert).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streach_bench::ScenarioSize;
use streach_core::{ConIndex, IndexConfig, SpeedStats, StIndex};
use streach_roadnet::SyntheticCity;
use streach_spatial::RTree;
use streach_traj::TrajectoryDataset;

fn bench_st_index_build(c: &mut Criterion) {
    let city = SyntheticCity::generate(ScenarioSize::Smoke.city());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(&network, ScenarioSize::Smoke.fleet());
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("st_index", |b| {
        b.iter(|| StIndex::build(network.clone(), &dataset, &IndexConfig::default()))
    });
    group.bench_function("speed_stats", |b| {
        b.iter(|| SpeedStats::from_dataset(&network, &dataset, 300))
    });
    let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, 300));
    group.bench_function("con_index_one_slot", |b| {
        b.iter(|| {
            // A fresh index each iteration so the slot is really rebuilt.
            let con = ConIndex::new(network.clone(), stats.clone(), &IndexConfig::default());
            con.build_slots(&[132]);
            con
        })
    });
    group.finish();
}

fn bench_rtree_loading(c: &mut Criterion) {
    let city = SyntheticCity::generate(ScenarioSize::Smoke.city());
    let items: Vec<_> = city
        .network
        .segments()
        .iter()
        .map(|s| (s.mbr, s.id))
        .collect();
    let mut group = c.benchmark_group("rtree_ablation");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("str_bulk_load", items.len()), &items, |b, items| {
        b.iter(|| RTree::bulk_load(items.clone()))
    });
    group.bench_with_input(BenchmarkId::new("incremental_insert", items.len()), &items, |b, items| {
        b.iter(|| {
            let mut t = RTree::new();
            for (mbr, id) in items {
                t.insert(*mbr, *id);
            }
            t
        })
    });
    group.finish();
}

criterion_group!(index_construction, bench_st_index_build, bench_rtree_loading);
criterion_main!(index_construction);
