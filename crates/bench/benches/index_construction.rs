//! Benchmarks for the offline index-construction stages: the ST-Index build
//! (parallel sort-based grouping), the per-slot Con-Index connection tables
//! and the two spatial index loading strategies (ablation: R-tree STR bulk
//! load vs incremental insert).
//!
//! Run with `cargo bench -p streach-bench --bench index_construction`.

use std::sync::Arc;

use streach_bench::timing::measure;
use streach_bench::ScenarioSize;
use streach_core::{ConIndex, IndexConfig, SpeedStats, StIndex};
use streach_roadnet::SyntheticCity;
use streach_spatial::RTree;
use streach_traj::TrajectoryDataset;

fn report(group: &str, name: &str, ms: f64) {
    println!("{group:<16} {name:<22} {ms:>10.3} ms");
}

fn main() {
    let city = SyntheticCity::generate(ScenarioSize::Smoke.city());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(&network, ScenarioSize::Smoke.fleet());
    println!("{:<16} {:<22} {:>13}", "group", "benchmark", "median");

    let m = measure(1, 9, || {
        StIndex::build(network.clone(), &dataset, &IndexConfig::default())
    });
    report("index_build", "st_index", m.median_ms());

    let m = measure(1, 9, || SpeedStats::from_dataset(&network, &dataset, 300));
    report("index_build", "speed_stats", m.median_ms());

    let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, 300));
    let m = measure(1, 9, || {
        // A fresh index each iteration so the slot is really rebuilt.
        let con = ConIndex::new(network.clone(), stats.clone(), &IndexConfig::default());
        con.build_slots(&[132]);
        con
    });
    report("index_build", "con_index_one_slot", m.median_ms());

    let items: Vec<_> = network.segments().iter().map(|s| (s.mbr, s.id)).collect();
    let m = measure(2, 19, || RTree::bulk_load(items.clone()));
    report("rtree_ablation", "str_bulk_load", m.median_ms());

    let m = measure(2, 19, || {
        let mut t = RTree::new();
        for (mbr, id) in &items {
            t.insert(*mbr, *id);
        }
        t
    });
    report("rtree_ablation", "incremental_insert", m.median_ms());
}
