//! Criterion micro-benchmarks mirroring the timing figures of the paper's
//! evaluation on the smoke-sized scenario (one Criterion group per figure).
//!
//! The full-scale numbers reported in `EXPERIMENTS.md` come from the `repro`
//! harness; these benches exist to track regressions of each code path with
//! statistical rigour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streach_bench::{Scenario, ScenarioSize};
use streach_core::query::{Algorithm, MQuery, MQueryAlgorithm, SQuery};

fn scenario() -> Scenario {
    Scenario::build(ScenarioSize::Smoke)
}

/// Fig 4.1(a): ES vs SQMB+TBS as the duration grows.
fn bench_duration(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("fig4_1_duration");
    group.sample_size(10);
    for minutes in [5u32, 15, 25] {
        let q = s.canonical_squery(minutes);
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        group.bench_with_input(BenchmarkId::new("es", minutes), &q, |b, q| {
            b.iter(|| s.engine.s_query(q, Algorithm::ExhaustiveSearch))
        });
        group.bench_with_input(BenchmarkId::new("sqmb_tbs", minutes), &q, |b, q| {
            b.iter(|| s.engine.s_query(q, Algorithm::SqmbTbs))
        });
    }
    group.finish();
}

/// Fig 4.3(a): running time vs probability threshold (should be flat).
fn bench_probability(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("fig4_3_probability");
    group.sample_size(10);
    for prob in [20u32, 60, 100] {
        let q = SQuery { prob: prob as f64 / 100.0, ..s.canonical_squery(10) };
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        group.bench_with_input(BenchmarkId::new("sqmb_tbs", prob), &q, |b, q| {
            b.iter(|| s.engine.s_query(q, Algorithm::SqmbTbs))
        });
    }
    group.finish();
}

/// Fig 4.5(a): running time vs start time (rush hour vs free flow).
fn bench_start_time(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("fig4_5_start_time");
    group.sample_size(10);
    for hour in [3u32, 8, 12, 18] {
        let q = SQuery { start_time_s: hour * 3600, ..s.canonical_squery(10) };
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        group.bench_with_input(BenchmarkId::new("sqmb_tbs", hour), &q, |b, q| {
            b.iter(|| s.engine.s_query(q, Algorithm::SqmbTbs))
        });
    }
    group.finish();
}

/// Fig 4.7: running time vs the index granularity Δt.
fn bench_interval(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("fig4_7_interval");
    group.sample_size(10);
    for dt_min in [5u32, 10, 20] {
        let engine = s.engine_with_slot(dt_min * 60);
        let q = s.canonical_squery(10);
        engine.warm_con_index(q.start_time_s, q.duration_s);
        group.bench_with_input(BenchmarkId::new("sqmb_tbs", dt_min), &q, |b, q| {
            b.iter(|| engine.s_query(q, Algorithm::SqmbTbs))
        });
    }
    group.finish();
}

/// Fig 4.8: m-query answered as repeated s-queries vs MQMB.
fn bench_mquery(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("fig4_8_mquery");
    group.sample_size(10);
    for n in [1usize, 3, 6] {
        let q = MQuery {
            locations: s.mquery_locations(n),
            start_time_s: 10 * 3600,
            duration_s: 20 * 60,
            prob: 0.2,
        };
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        group.bench_with_input(BenchmarkId::new("repeated_squery", n), &q, |b, q| {
            b.iter(|| s.engine.m_query(q, MQueryAlgorithm::RepeatedSQuery))
        });
        group.bench_with_input(BenchmarkId::new("mqmb_tbs", n), &q, |b, q| {
            b.iter(|| s.engine.m_query(q, MQueryAlgorithm::MqmbTbs))
        });
    }
    group.finish();
}

criterion_group!(
    queries,
    bench_duration,
    bench_probability,
    bench_start_time,
    bench_interval,
    bench_mquery
);
criterion_main!(queries);
