//! Micro-benchmarks mirroring the timing figures of the paper's evaluation
//! on the smoke-sized scenario (one group per figure), using the in-repo
//! harness (`streach_bench::timing`; criterion is unavailable offline).
//!
//! The full-scale numbers reported in `EXPERIMENTS.md` come from the `repro`
//! harness; these benches exist to track regressions of each code path.
//! Run with `cargo bench -p streach-bench --bench queries`.

use streach_bench::timing::measure;
use streach_bench::{Scenario, ScenarioSize};
use streach_core::query::{Algorithm, MQuery, MQueryAlgorithm, SQuery};

fn report(group: &str, name: &str, ms: f64) {
    println!("{group:<22} {name:<24} {ms:>10.3} ms");
}

/// Fig 4.1(a): ES vs SQMB+TBS as the duration grows.
fn bench_duration(s: &Scenario) {
    for minutes in [5u32, 15, 25] {
        let q = s.canonical_squery(minutes);
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        let es = measure(1, 9, || s.engine.s_query(&q, Algorithm::ExhaustiveSearch));
        report("fig4_1_duration", &format!("es/{minutes}"), es.median_ms());
        let fast = measure(1, 9, || s.engine.s_query(&q, Algorithm::SqmbTbs));
        report(
            "fig4_1_duration",
            &format!("sqmb_tbs/{minutes}"),
            fast.median_ms(),
        );
    }
}

/// Fig 4.3(a): running time vs probability threshold (should be flat).
fn bench_probability(s: &Scenario) {
    for prob in [20u32, 60, 100] {
        let q = SQuery {
            prob: prob as f64 / 100.0,
            ..s.canonical_squery(10)
        };
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        let m = measure(1, 9, || s.engine.s_query(&q, Algorithm::SqmbTbs));
        report(
            "fig4_3_probability",
            &format!("sqmb_tbs/{prob}"),
            m.median_ms(),
        );
    }
}

/// Fig 4.5(a): running time vs start time (rush hour vs free flow).
fn bench_start_time(s: &Scenario) {
    for hour in [3u32, 8, 12, 18] {
        let q = SQuery {
            start_time_s: hour * 3600,
            ..s.canonical_squery(10)
        };
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        let m = measure(1, 9, || s.engine.s_query(&q, Algorithm::SqmbTbs));
        report(
            "fig4_5_start_time",
            &format!("sqmb_tbs/{hour}h"),
            m.median_ms(),
        );
    }
}

/// Fig 4.7: running time vs the index granularity Δt.
fn bench_interval(s: &Scenario) {
    for dt_min in [5u32, 10, 20] {
        let engine = s.engine_with_slot(dt_min * 60);
        let q = s.canonical_squery(10);
        engine.warm_con_index(q.start_time_s, q.duration_s);
        let m = measure(1, 9, || engine.s_query(&q, Algorithm::SqmbTbs));
        report(
            "fig4_7_interval",
            &format!("sqmb_tbs/dt{dt_min}min"),
            m.median_ms(),
        );
    }
}

/// Fig 4.8: m-query answered as repeated s-queries vs MQMB.
fn bench_mquery(s: &Scenario) {
    for n in [1usize, 3, 6] {
        let q = MQuery {
            locations: s.mquery_locations(n),
            start_time_s: 10 * 3600,
            duration_s: 20 * 60,
            prob: 0.2,
        };
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        let rep = measure(1, 5, || {
            s.engine.m_query(&q, MQueryAlgorithm::RepeatedSQuery)
        });
        report(
            "fig4_8_mquery",
            &format!("repeated_squery/{n}"),
            rep.median_ms(),
        );
        let uni = measure(1, 5, || s.engine.m_query(&q, MQueryAlgorithm::MqmbTbs));
        report("fig4_8_mquery", &format!("mqmb_tbs/{n}"), uni.median_ms());
    }
}

fn main() {
    let s = Scenario::build(ScenarioSize::Smoke);
    println!("{:<22} {:<24} {:>13}", "group", "benchmark", "median");
    bench_duration(&s);
    bench_probability(&s);
    bench_start_time(&s);
    bench_interval(&s);
    bench_mquery(&s);
}
