//! `repro` — regenerates every table and figure of the paper's evaluation
//! (Chapter 4) against the synthetic Shenzhen-like scenario.
//!
//! ```text
//! cargo run --release -p streach-bench --bin repro -- all            # everything
//! cargo run --release -p streach-bench --bin repro -- fig4_1a        # one experiment
//! cargo run --release -p streach-bench --bin repro -- all --quick    # smaller scenario
//! ```
//!
//! Output: one aligned table per experiment on stdout, plus GeoJSON files
//! for the map figures under `results/`.

use std::path::PathBuf;
use std::time::Instant;

use streach_bench::{Scenario, ScenarioSize, Table};
use streach_core::geojson::region_to_geojson;
use streach_core::query::{Algorithm, MQuery, MQueryAlgorithm, SQuery};
use streach_core::time::format_hhmm;

struct Ctx {
    scenario: Scenario,
    results_dir: PathBuf,
}

impl Ctx {
    fn new(size: ScenarioSize) -> Self {
        eprintln!("[repro] building scenario ({size:?}) ...");
        let t0 = Instant::now();
        let scenario = Scenario::build(size);
        eprintln!(
            "[repro] scenario ready in {:.1}s: {} segments, {} trajectories",
            t0.elapsed().as_secs_f64(),
            scenario.network.num_segments(),
            scenario.dataset.stats().num_trajectories
        );
        let results_dir = PathBuf::from("results");
        std::fs::create_dir_all(&results_dir).expect("create results directory");
        Self {
            scenario,
            results_dir,
        }
    }

    fn squery(&self, start_time_s: u32, duration_min: u32, prob: f64) -> SQuery {
        SQuery {
            location: self.scenario.query_location,
            start_time_s,
            duration_s: duration_min * 60,
            prob,
        }
    }

    fn run(&self, q: &SQuery, algo: Algorithm) -> streach_core::query::QueryOutcome {
        self.scenario
            .engine
            .warm_con_index(q.start_time_s, q.duration_s);
        self.scenario.engine.s_query(q, algo)
    }

    fn write_geojson(&self, name: &str, region: &streach_core::ReachableRegion) {
        let path = self.results_dir.join(format!("{name}.geojson"));
        std::fs::write(&path, region_to_geojson(&self.scenario.network, region))
            .expect("write GeoJSON");
        eprintln!("[repro] wrote {}", path.display());
    }
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

fn table4_1(ctx: &Ctx) -> Table {
    let stats = ctx.scenario.dataset.stats();
    let net = &ctx.scenario.network;
    let bounds = net.bounds();
    let diag_km = streach_core::prelude::GeoPoint::new(bounds.min_lon, bounds.min_lat).haversine_m(
        &streach_core::prelude::GeoPoint::new(bounds.max_lon, bounds.max_lat),
    ) / 1000.0;
    let mut t = Table::new(
        "Table 4.1 — Dataset description (synthetic stand-in for the Shenzhen taxi dataset)",
        &["statistic", "value"],
    );
    t.row(vec![
        "city extent (diagonal)".into(),
        format!("{diag_km:.1} km"),
    ]);
    t.row(vec![
        "road segments (directed, re-segmented at 500 m)".into(),
        net.num_segments().to_string(),
    ]);
    t.row(vec!["intersections".into(), net.num_nodes().to_string()]);
    t.row(vec![
        "total road length".into(),
        format!("{:.0} km", net.total_length_km()),
    ]);
    t.row(vec!["duration".into(), format!("{} days", stats.num_days)]);
    t.row(vec!["number of taxis".into(), stats.num_taxis.to_string()]);
    t.row(vec![
        "number of trajectories".into(),
        stats.num_trajectories.to_string(),
    ]);
    t.row(vec![
        "segment visits (map-matched observations)".into(),
        stats.num_segment_visits.to_string(),
    ]);
    let st = ctx.scenario.engine.st_index().stats();
    t.row(vec![
        "ST-Index time lists".into(),
        st.num_time_lists.to_string(),
    ]);
    t.row(vec![
        "ST-Index posting pages (4 KiB)".into(),
        st.posting_pages.to_string(),
    ]);
    t
}

fn table4_2(_ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Table 4.2 — Evaluation configuration",
        &["parameter", "settings"],
    );
    t.row(vec!["duration L".into(), "{5, 10, ..., 35} min".into()]);
    t.row(vec!["probability Prob".into(), "{20%, ..., 100%}".into()]);
    t.row(vec![
        "start time T".into(),
        "[00:00 - 24:00] (2-hour steps)".into(),
    ]);
    t.row(vec!["interval Δt".into(), "{1, 5, 10, 20} min".into()]);
    t.row(vec!["s-query algorithms".into(), "ES, SQMB+TBS".into()]);
    t.row(vec![
        "m-query algorithms".into(),
        "SQMB+TBS (repeated), MQMB+TBS".into(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Figure 4.1 — effect of duration L
// ---------------------------------------------------------------------------

fn fig4_1a(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.1(a) — processing time vs duration L (T=11:00, Prob=20%)",
        &[
            "L (min)",
            "ES (ms)",
            "SQMB+TBS Δt=5 (ms)",
            "SQMB+TBS Δt=10 (ms)",
            "reduction vs ES",
        ],
    );
    let engine10 = ctx.scenario.engine_with_slot(600);
    for l in (5..=35).step_by(5) {
        let q = ctx.squery(11 * 3600, l, 0.2);
        let es = ctx.run(&q, Algorithm::ExhaustiveSearch);
        let fast5 = ctx.run(&q, Algorithm::SqmbTbs);
        engine10.warm_con_index(q.start_time_s, q.duration_s);
        let fast10 = engine10.s_query(&q, Algorithm::SqmbTbs);
        let best = fast5
            .stats
            .running_time_ms()
            .min(fast10.stats.running_time_ms());
        let reduction = 100.0 * (1.0 - best / es.stats.running_time_ms().max(1e-9));
        t.row(vec![
            l.to_string(),
            format!("{:.1}", es.stats.running_time_ms()),
            format!("{:.1}", fast5.stats.running_time_ms()),
            format!("{:.1}", fast10.stats.running_time_ms()),
            format!("{reduction:.0}%"),
        ]);
    }
    t
}

fn fig4_1b(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.1(b) — reachable road length vs duration L (T=11:00, Prob=20%)",
        &[
            "L (min)",
            "road km (Δt=5)",
            "road km (Δt=10)",
            "segments (Δt=5)",
        ],
    );
    let engine10 = ctx.scenario.engine_with_slot(600);
    for l in (5..=35).step_by(5) {
        let q = ctx.squery(11 * 3600, l, 0.2);
        let fast5 = ctx.run(&q, Algorithm::SqmbTbs);
        engine10.warm_con_index(q.start_time_s, q.duration_s);
        let fast10 = engine10.s_query(&q, Algorithm::SqmbTbs);
        t.row(vec![
            l.to_string(),
            format!("{:.1}", fast5.region.total_length_km),
            format!("{:.1}", fast10.region.total_length_km),
            fast5.region.len().to_string(),
        ]);
    }
    t
}

fn fig4_2(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.2 — Prob-reachable region maps (Prob=20%), exported as GeoJSON",
        &["L (min)", "segments", "road km", "file"],
    );
    for l in [5u32, 10] {
        let q = ctx.squery(11 * 3600, l, 0.2);
        let out = ctx.run(&q, Algorithm::SqmbTbs);
        let name = format!("fig4_2_L{l}min");
        ctx.write_geojson(&name, &out.region);
        t.row(vec![
            l.to_string(),
            out.region.len().to_string(),
            format!("{:.1}", out.region.total_length_km),
            format!("results/{name}.geojson"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 4.3 / 4.4 — effect of probability Prob
// ---------------------------------------------------------------------------

fn fig4_3a(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.3(a) — processing time vs probability (T=11:00)",
        &[
            "Prob",
            "ES L=10 (ms)",
            "SQMB+TBS L=10 (ms)",
            "SQMB+TBS L=15 (ms)",
        ],
    );
    for prob in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let q10 = ctx.squery(11 * 3600, 10, prob);
        let q15 = ctx.squery(11 * 3600, 15, prob);
        let es = ctx.run(&q10, Algorithm::ExhaustiveSearch);
        let fast10 = ctx.run(&q10, Algorithm::SqmbTbs);
        let fast15 = ctx.run(&q15, Algorithm::SqmbTbs);
        t.row(vec![
            format!("{:.0}%", prob * 100.0),
            format!("{:.1}", es.stats.running_time_ms()),
            format!("{:.1}", fast10.stats.running_time_ms()),
            format!("{:.1}", fast15.stats.running_time_ms()),
        ]);
    }
    t
}

fn fig4_3b(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.3(b) — reachable road length vs probability (T=11:00)",
        &["Prob", "road km L=10", "road km L=15"],
    );
    for prob in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let out10 = ctx.run(&ctx.squery(11 * 3600, 10, prob), Algorithm::SqmbTbs);
        let out15 = ctx.run(&ctx.squery(11 * 3600, 15, prob), Algorithm::SqmbTbs);
        t.row(vec![
            format!("{:.0}%", prob * 100.0),
            format!("{:.1}", out10.region.total_length_km),
            format!("{:.1}", out15.region.total_length_km),
        ]);
    }
    t
}

fn fig4_4(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.4 — region maps for Prob = 20/60/80/100% (L=10 min, T=11:00)",
        &["Prob", "segments", "road km", "file"],
    );
    for prob in [0.2, 0.6, 0.8, 1.0] {
        let out = ctx.run(&ctx.squery(11 * 3600, 10, prob), Algorithm::SqmbTbs);
        let name = format!("fig4_4_prob{:03}", (prob * 100.0) as u32);
        ctx.write_geojson(&name, &out.region);
        t.row(vec![
            format!("{:.0}%", prob * 100.0),
            out.region.len().to_string(),
            format!("{:.1}", out.region.total_length_km),
            format!("results/{name}.geojson"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 4.5 / 4.6 — effect of start time T
// ---------------------------------------------------------------------------

fn fig4_5(ctx: &Ctx, lengths: bool) -> Table {
    let (title, header): (&str, &[&str]) = if lengths {
        (
            "Fig 4.5(b) — reachable road length vs start time (Prob=20%)",
            &["start time", "road km L=5", "road km L=10"],
        )
    } else {
        (
            "Fig 4.5(a) — processing time vs start time (Prob=20%)",
            &["start time", "SQMB+TBS L=5 (ms)", "SQMB+TBS L=10 (ms)"],
        )
    };
    let mut t = Table::new(title, header);
    for hour in (0..24).step_by(2) {
        let start = hour * 3600;
        let out5 = ctx.run(&ctx.squery(start, 5, 0.2), Algorithm::SqmbTbs);
        let out10 = ctx.run(&ctx.squery(start, 10, 0.2), Algorithm::SqmbTbs);
        let (a, b) = if lengths {
            (out5.region.total_length_km, out10.region.total_length_km)
        } else {
            (out5.stats.running_time_ms(), out10.stats.running_time_ms())
        };
        t.row(vec![
            format_hhmm(start),
            format!("{a:.1}"),
            format!("{b:.1}"),
        ]);
    }
    t
}

fn fig4_6(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.6 — region maps at T = 01:00 / 06:00 / 12:00 / 18:00 (L=5 min, Prob=80%)",
        &["start time", "segments", "road km", "file"],
    );
    for hour in [1u32, 6, 12, 18] {
        let out = ctx.run(&ctx.squery(hour * 3600, 5, 0.8), Algorithm::SqmbTbs);
        let name = format!("fig4_6_T{hour:02}h");
        ctx.write_geojson(&name, &out.region);
        t.row(vec![
            format_hhmm(hour * 3600),
            out.region.len().to_string(),
            format!("{:.1}", out.region.total_length_km),
            format!("results/{name}.geojson"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 4.7 — effect of Δt
// ---------------------------------------------------------------------------

fn fig4_7(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.7 — processing time vs time interval Δt (T=11:00, Prob=20%)",
        &[
            "Δt (min)",
            "SQMB+TBS L=5 (ms)",
            "SQMB+TBS L=10 (ms)",
            "ES L=10 (ms)",
        ],
    );
    let q10 = ctx.squery(11 * 3600, 10, 0.2);
    let es = ctx.run(&q10, Algorithm::ExhaustiveSearch);
    for dt_min in [1u32, 5, 10, 20] {
        let engine = ctx.scenario.engine_with_slot(dt_min * 60);
        let mut times = Vec::new();
        for l in [5u32, 10] {
            let q = ctx.squery(11 * 3600, l, 0.2);
            engine.warm_con_index(q.start_time_s, q.duration_s);
            let out = engine.s_query(&q, Algorithm::SqmbTbs);
            times.push(out.stats.running_time_ms());
        }
        t.row(vec![
            dt_min.to_string(),
            format!("{:.1}", times[0]),
            format!("{:.1}", times[1]),
            format!("{:.1}", es.stats.running_time_ms()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 4.8 / 4.9 — m-query
// ---------------------------------------------------------------------------

fn fig4_8a(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.8(a) — m-query vs repeated s-query over duration (3 locations, Prob=20%, T=10:00)",
        &[
            "L (min)",
            "s-query x3 (ms)",
            "m-query (ms)",
            "saving",
            "bound max/min",
        ],
    );
    let locations = ctx.scenario.mquery_locations(3);
    for l in (5..=35).step_by(5) {
        let q = MQuery {
            locations: locations.clone(),
            start_time_s: 10 * 3600,
            duration_s: l * 60,
            prob: 0.2,
        };
        ctx.scenario
            .engine
            .warm_con_index(q.start_time_s, q.duration_s);
        let repeated = ctx
            .scenario
            .engine
            .m_query(&q, MQueryAlgorithm::RepeatedSQuery);
        let unified = ctx.scenario.engine.m_query(&q, MQueryAlgorithm::MqmbTbs);
        let saving = 100.0
            * (1.0 - unified.stats.running_time_ms() / repeated.stats.running_time_ms().max(1e-9));
        t.row(vec![
            l.to_string(),
            format!("{:.1}", repeated.stats.running_time_ms()),
            format!("{:.1}", unified.stats.running_time_ms()),
            format!("{saving:.0}%"),
            // Merged per-location extremes: widest max / tightest min
            // bounding region across the sub-queries (not their sums).
            format!(
                "{}/{}",
                repeated.stats.max_bounding_size, repeated.stats.min_bounding_size
            ),
        ]);
    }
    t
}

fn fig4_8b(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.8(b) — m-query vs repeated s-query over #locations (L=20 min, Prob=20%, T=10:00)",
        &[
            "#locations",
            "s-query x n (ms)",
            "m-query (ms)",
            "saving",
            "bound max/min",
        ],
    );
    for n in 1..=10usize {
        let q = MQuery {
            locations: ctx.scenario.mquery_locations(n),
            start_time_s: 10 * 3600,
            duration_s: 20 * 60,
            prob: 0.2,
        };
        ctx.scenario
            .engine
            .warm_con_index(q.start_time_s, q.duration_s);
        let repeated = ctx
            .scenario
            .engine
            .m_query(&q, MQueryAlgorithm::RepeatedSQuery);
        let unified = ctx.scenario.engine.m_query(&q, MQueryAlgorithm::MqmbTbs);
        let saving = 100.0
            * (1.0 - unified.stats.running_time_ms() / repeated.stats.running_time_ms().max(1e-9));
        t.row(vec![
            n.to_string(),
            format!("{:.1}", repeated.stats.running_time_ms()),
            format!("{:.1}", unified.stats.running_time_ms()),
            format!("{saving:.0}%"),
            format!(
                "{}/{}",
                repeated.stats.max_bounding_size, repeated.stats.min_bounding_size
            ),
        ]);
    }
    t
}

fn fig4_9(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Fig 4.9 — m-query region of 3 locations and its per-location parts (L=20 min, Prob=20%)",
        &["result", "segments", "road km", "file"],
    );
    let locations = ctx.scenario.mquery_locations(3);
    let q = MQuery {
        locations: locations.clone(),
        start_time_s: 10 * 3600,
        duration_s: 20 * 60,
        prob: 0.2,
    };
    ctx.scenario
        .engine
        .warm_con_index(q.start_time_s, q.duration_s);
    let union = ctx.scenario.engine.m_query(&q, MQueryAlgorithm::MqmbTbs);
    ctx.write_geojson("fig4_9_all", &union.region);
    t.row(vec![
        "all 3 locations".into(),
        union.region.len().to_string(),
        format!("{:.1}", union.region.total_length_km),
        "results/fig4_9_all.geojson".into(),
    ]);
    for (i, &loc) in locations.iter().enumerate() {
        let sq = SQuery {
            location: loc,
            start_time_s: q.start_time_s,
            duration_s: q.duration_s,
            prob: q.prob,
        };
        let out = ctx.scenario.engine.s_query(&sq, Algorithm::SqmbTbs);
        let name = format!("fig4_9_location_{}", (b'A' + i as u8) as char);
        ctx.write_geojson(&name, &out.region);
        t.row(vec![
            format!("location {}", (b'A' + i as u8) as char),
            out.region.len().to_string(),
            format!("{:.1}", out.region.total_length_km),
            format!("results/{name}.geojson"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

fn ablation(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Ablation — where the speedup comes from (T=11:00, L=10 min, Prob=20%)",
        &[
            "variant",
            "runtime (ms)",
            "segments verified",
            "posting page requests",
        ],
    );
    let q = ctx.squery(11 * 3600, 10, 0.2);
    let es = ctx.run(&q, Algorithm::ExhaustiveSearch);
    let fast = ctx.run(&q, Algorithm::SqmbTbs);
    // Cold-cache run of the index-based algorithm.
    ctx.scenario.engine.st_index().clear_cache();
    let cold = ctx.run(&q, Algorithm::SqmbTbs);
    for (name, o) in [
        ("ES (baseline)", &es),
        ("SQMB+TBS (warm cache)", &fast),
        ("SQMB+TBS (cold cache)", &cold),
    ] {
        t.row(vec![
            name.into(),
            format!("{:.1}", o.stats.running_time_ms()),
            o.stats.segments_verified.to_string(),
            (o.stats.io.cache_hits + o.stats.io.cache_misses).to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Snapshot persistence — cold vs warm start
// ---------------------------------------------------------------------------

/// Cold-start experiment: persist the engine, reopen it from disk without
/// the trajectory dataset, and compare (a) startup cost against a full
/// rebuild and (b) query results bit-for-bit. The reopened engine serves
/// its postings from a real `FilePageStore`, so the reported page reads are
/// genuine disk I/O.
fn snapshot(ctx: &Ctx) -> Table {
    use streach_core::prelude::ReachabilityEngine;
    use streach_core::EngineBuilder;

    let dir = std::env::temp_dir().join(format!("streach-repro-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let network = ctx.scenario.network.clone();
    let config = ctx.scenario.engine.config().clone();

    let t0 = Instant::now();
    ctx.scenario
        .engine
        .save_snapshot(&dir)
        .expect("save snapshot");
    let save_s = t0.elapsed().as_secs_f64();

    // Warm start: rebuild everything from the raw trajectory dataset.
    let t1 = Instant::now();
    let rebuilt = EngineBuilder::new(network.clone(), &ctx.scenario.dataset)
        .index_config(config.clone())
        .build();
    let rebuild_s = t1.elapsed().as_secs_f64();

    // Cold start: reopen from disk; the dataset is not consulted at all.
    let t2 = Instant::now();
    let reopened = ReachabilityEngine::open_snapshot(&dir, network).expect("open snapshot");
    let open_s = t2.elapsed().as_secs_f64();

    // Round-trip check: the canonical query answers bit-identically on the
    // rebuilt and the reopened engine, and the cold engine pays real I/O.
    let q = ctx.squery(11 * 3600, 10, 0.2);
    rebuilt.warm_con_index(q.start_time_s, q.duration_s);
    reopened.warm_con_index(q.start_time_s, q.duration_s);
    let warm_out = rebuilt.s_query(&q, Algorithm::SqmbTbs);
    reopened.st_index().clear_cache();
    reopened.st_index().io_stats().reset();
    let cold_out = reopened.s_query(&q, Algorithm::SqmbTbs);
    assert_eq!(
        warm_out.region.segments, cold_out.region.segments,
        "snapshot round-trip must answer bit-identically"
    );
    assert!(
        cold_out.stats.io.page_reads > 0,
        "cold open must read pages from disk"
    );

    let snap_bytes: u64 = std::fs::read_dir(&dir)
        .expect("snapshot dir")
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    let _ = std::fs::remove_dir_all(&dir);

    let mut t = Table::new(
        "Snapshot persistence — cold start (open from disk) vs warm start (rebuild)",
        &["stage", "value"],
    );
    t.row(vec![
        "rebuild indexes from trajectories".into(),
        format!("{rebuild_s:.2} s"),
    ]);
    t.row(vec![
        "save snapshot (fsync)".into(),
        format!("{save_s:.2} s"),
    ]);
    t.row(vec![
        "open snapshot (cold start)".into(),
        format!("{open_s:.2} s"),
    ]);
    t.row(vec![
        "cold-start speedup over rebuild".into(),
        format!("{:.0}x", rebuild_s / open_s.max(1e-9)),
    ]);
    t.row(vec![
        "snapshot size on disk".into(),
        format!("{:.1} MiB", snap_bytes as f64 / (1024.0 * 1024.0)),
    ]);
    t.row(vec![
        "cold s-query page reads (real disk)".into(),
        cold_out.stats.io.page_reads.to_string(),
    ]);
    t.row(vec![
        "round-trip result".into(),
        "bit-identical to rebuilt engine".into(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    let size = if quick {
        ScenarioSize::Quick
    } else {
        ScenarioSize::Standard
    };
    let ctx = Ctx::new(size);

    type ExperimentFn = fn(&Ctx) -> Table;
    let experiments: Vec<(&str, ExperimentFn)> = vec![
        ("table4_1", table4_1),
        ("table4_2", table4_2),
        ("fig4_1a", fig4_1a),
        ("fig4_1b", fig4_1b),
        ("fig4_2", fig4_2),
        ("fig4_3a", fig4_3a),
        ("fig4_3b", fig4_3b),
        ("fig4_4", fig4_4),
        ("fig4_5a", |c| fig4_5(c, false)),
        ("fig4_5b", |c| fig4_5(c, true)),
        ("fig4_6", fig4_6),
        ("fig4_7", fig4_7),
        ("fig4_8a", fig4_8a),
        ("fig4_8b", fig4_8b),
        ("fig4_9", fig4_9),
        ("ablation", ablation),
        ("snapshot", snapshot),
    ];

    let run_all = which.contains(&"all");
    let mut ran = 0;
    for (name, f) in &experiments {
        if run_all || which.contains(name) {
            let t0 = Instant::now();
            let table = f(&ctx);
            println!("{}", table.render());
            eprintln!(
                "[repro] {name} done in {:.1}s\n",
                t0.elapsed().as_secs_f64()
            );
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment; available: all, {}",
            experiments
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}
