//! `hotpath` — measures the optimized query hot path against the naive
//! pre-refactor reference implementations and records the result in
//! `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p streach-bench --bin hotpath
//! ```
//!
//! Scenario: `GeneratorConfig::small()` city, all-day smoke fleet, Δt = 5
//! minutes, zero simulated disk latency (the hot path being measured is the
//! CPU side: posting decoding, ID intersection, Dijkstra, scheduling). The
//! baseline runs the same SQMB bounds but verifies through the naive
//! hash-map verifier, sequentially — the exact structure of the code before
//! the zero-allocation refactor (see `streach_core::query::reference`).

use std::sync::Arc;

use streach_bench::timing::{measure, Measurement};
use streach_core::con_index::ConIndex;
use streach_core::config::IndexConfig;
use streach_core::query::reference::{naive_exhaustive_search, naive_trace_back_search};
use streach_core::query::sqmb::{num_hops, sqmb};
use streach_core::query::tbs::trace_back_search;
use streach_core::query::verifier::ReachabilityVerifier;
use streach_core::query::{es::exhaustive_search, SQuery};
use streach_core::speed_stats::SpeedStats;
use streach_core::st_index::StIndex;
use streach_core::time::slot_of;
use streach_geo::GeoPoint;
use streach_roadnet::{GeneratorConfig, RoadNetwork, SegmentId, SyntheticCity};
use streach_traj::{FleetConfig, TrajectoryDataset};

struct Row {
    name: String,
    baseline: Measurement,
    optimized: Measurement,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline.median.as_secs_f64() / self.optimized.median.as_secs_f64().max(1e-12)
    }
}

fn main() {
    eprintln!("[hotpath] building scenario (GeneratorConfig::small, all-day smoke fleet)...");
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 60,
            num_days: 10,
            day_start_s: 0,
            day_end_s: 86_400,
            seed: 2014,
            ..FleetConfig::default()
        },
    );
    let config = IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    };
    let st = StIndex::build(network.clone(), &dataset, &config);
    let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
    let con = ConIndex::new(network.clone(), stats, &config);
    let start = network.nearest_segment(&center).unwrap().0;
    eprintln!(
        "[hotpath] scenario ready: {} segments, {} trajectories, {} time lists",
        network.num_segments(),
        dataset.trajectories().len(),
        st.stats().num_time_lists
    );

    let mut rows: Vec<Row> = Vec::new();
    let start_time = 11 * 3600u32;
    for minutes in [3u32, 5, 8, 10, 15, 25] {
        let duration = minutes * 60;
        // Pre-build the Con-Index slots so timings cover query processing
        // only (the paper's indexes are built offline).
        let slots: Vec<u32> = (0..num_hops(duration, config.slot_s))
            .map(|step| slot_of(start_time + step * config.slot_s, config.slot_s))
            .collect();
        con.build_slots(&slots);

        rows.push(bench_squery(
            &network, &st, &con, start, start_time, duration, minutes,
        ));
        rows.push(bench_es(
            &network, &st, center, start, start_time, duration, minutes,
        ));
    }

    // Report.
    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "benchmark", "baseline (ms)", "optimized (ms)", "speedup"
    );
    for row in &rows {
        println!(
            "{:<24} {:>14.3} {:>14.3} {:>8.2}x",
            row.name,
            row.baseline.median_ms(),
            row.optimized.median_ms(),
            row.speedup()
        );
    }
    let squery_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.name.starts_with("sqmb_tbs"))
        .map(Row::speedup)
        .collect();
    let geomean =
        (squery_speedups.iter().map(|s| s.ln()).sum::<f64>() / squery_speedups.len() as f64).exp();
    println!("geomean SQMB+TBS speedup: {geomean:.2}x");

    // BENCH_hotpath.json (hand-rolled: no JSON dependency offline).
    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_median_ms\": {:.4}, \"optimized_median_ms\": {:.4}, \"baseline_min_ms\": {:.4}, \"optimized_min_ms\": {:.4}, \"speedup\": {:.3}}}",
            row.name,
            row.baseline.median_ms(),
            row.optimized.median_ms(),
            row.baseline.min.as_secs_f64() * 1e3,
            row.optimized.min.as_secs_f64() * 1e3,
            row.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"scenario\": {{\"city\": \"GeneratorConfig::small\", \"segments\": {}, \"taxis\": 60, \"days\": 10, \"slot_s\": {}, \"read_latency_us\": 0}},\n  \"baseline\": \"naive pre-refactor reference (hash-map verifier, sequential verification, hash-map Dijkstra)\",\n  \"threads\": {},\n  \"benchmarks\": [\n{}\n  ],\n  \"geomean_sqmb_tbs_speedup\": {:.3}\n}}\n",
        network.num_segments(),
        config.slot_s,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        entries,
        geomean
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    eprintln!("[hotpath] wrote BENCH_hotpath.json");

    if geomean < 2.0 {
        eprintln!(
            "[hotpath] WARNING: geomean SQMB+TBS speedup {geomean:.2}x is below the 2x target"
        );
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_squery(
    network: &Arc<RoadNetwork>,
    st: &StIndex,
    con: &ConIndex,
    start: SegmentId,
    start_time: u32,
    duration: u32,
    minutes: u32,
) -> Row {
    let prob = 0.2;
    let baseline = measure(2, 9, || {
        let bounds = sqmb(con, network.num_segments(), start, start_time, duration);
        naive_trace_back_search(st.network(), st, &bounds, start, start_time, duration, prob)
            .expect("fault-free store")
    });
    let optimized = measure(2, 9, || {
        let bounds = sqmb(con, network.num_segments(), start, start_time, duration);
        let verifier =
            ReachabilityVerifier::new(st, start, start_time, duration).expect("fault-free store");
        trace_back_search(st.network(), verifier.core(), &bounds, prob).expect("fault-free store")
    });
    Row {
        name: format!("sqmb_tbs_L{minutes}min"),
        baseline,
        optimized,
    }
}

fn bench_es(
    network: &Arc<RoadNetwork>,
    st: &StIndex,
    center: GeoPoint,
    start: SegmentId,
    start_time: u32,
    duration: u32,
    minutes: u32,
) -> Row {
    let q = SQuery {
        location: center,
        start_time_s: start_time,
        duration_s: duration,
        prob: 0.2,
    };
    let baseline = measure(1, 5, || {
        naive_exhaustive_search(network, st, &q, start).expect("fault-free store")
    });
    let optimized = measure(1, 5, || {
        exhaustive_search(network, st, &q, start).expect("fault-free store")
    });
    Row {
        name: format!("es_L{minutes}min"),
        baseline,
        optimized,
    }
}
