//! `ingest` — measures the streaming-ingest subsystem end to end and
//! records the result in `BENCH_ingest.json`.
//!
//! ```text
//! cargo run --release -p streach-bench --bin ingest [-- --quick]
//! ```
//!
//! Scenario: a base fleet is built and snapshotted, the snapshot is
//! reopened as a serving engine, and the remaining fleet-days arrive as
//! trajectory-point batches. Measured:
//!
//! * **WAL-backed ingest throughput** (points/s through append + fsync +
//!   delta merge) and **volatile ingest throughput** (no WAL — isolates
//!   the durability cost),
//! * **query latency** (SQMB+TBS median) before ingest, over base + delta,
//!   and after compaction,
//! * **incremental vs full snapshot save** (the incremental path skips the
//!   unchanged base page file) and **compaction** wall time.
//!
//! The run doubles as a correctness smoke: the ingested engine's answer to
//! a probe workload must be bit-identical to a from-scratch build on the
//! combined dataset, and the process exits non-zero otherwise.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use streach_bench::timing::measure;
use streach_core::prelude::*;
use streach_core::EngineBuilder;
use streach_traj::points_of;

struct Scale {
    label: &'static str,
    taxis: usize,
    base_days: u16,
    extra_days: u16,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            label: "quick",
            taxis: 10,
            base_days: 3,
            extra_days: 2,
        }
    } else {
        Scale {
            label: "standard",
            taxis: 40,
            base_days: 6,
            extra_days: 3,
        }
    };
    eprintln!(
        "[ingest] scenario ({}): {} taxis, {} base + {} ingested days",
        scale.label, scale.taxis, scale.base_days, scale.extra_days
    );

    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let center = network.bounds().center();
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: scale.taxis,
            num_days: scale.base_days + scale.extra_days,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 77,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < scale.base_days)
            .cloned()
            .collect(),
        scale.taxis,
        scale.base_days,
    );
    let batches: Vec<Vec<streach_traj::TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= scale.base_days)
        .map(|t| points_of(t).collect())
        .collect();
    let total_points: usize = batches.iter().map(Vec::len).sum();
    let config = IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    };

    let dir = tmp_dir("bench");
    let t0 = Instant::now();
    EngineBuilder::new(network.clone(), &base)
        .index_config(config.clone())
        .save_snapshot(&dir)
        .expect("save base snapshot");
    let base_build_s = t0.elapsed().as_secs_f64();

    let probe = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };

    // Serving engine: reopen + WAL-backed ingest.
    let engine = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open snapshot");
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let latency_before = measure(2, 9, || engine.s_query(&probe, Algorithm::SqmbTbs));

    let wal_path = dir.join("ingest.wal");
    engine.attach_wal(&wal_path).expect("attach WAL");
    let t0 = Instant::now();
    for batch in &batches {
        engine.ingest(batch).expect("WAL-backed ingest");
    }
    let wal_ingest_s = t0.elapsed().as_secs_f64();

    // Volatile ingest on a second reopen, for the durability overhead.
    let volatile = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("reopen");
    let t0 = Instant::now();
    for batch in &batches {
        volatile.ingest(batch).expect("volatile ingest");
    }
    let volatile_ingest_s = t0.elapsed().as_secs_f64();
    drop(volatile);

    let delta = engine.st_index().delta_stats();
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let latency_delta = measure(2, 9, || engine.s_query(&probe, Algorithm::SqmbTbs));

    // Snapshot costs: incremental (base page file reused) vs full.
    let t0 = Instant::now();
    engine
        .save_incremental_snapshot(&dir)
        .expect("incremental save");
    let incremental_save_s = t0.elapsed().as_secs_f64();
    let full_dir = tmp_dir("bench-full");
    let t0 = Instant::now();
    engine.save_snapshot(&full_dir).expect("full save");
    let full_save_s = t0.elapsed().as_secs_f64();

    // Compaction, then the sealed-base query latency.
    let mut engine = engine;
    let t0 = Instant::now();
    engine.compact().expect("compact");
    let compact_s = t0.elapsed().as_secs_f64();
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let latency_compacted = measure(2, 9, || engine.s_query(&probe, Algorithm::SqmbTbs));

    // Correctness smoke: bit-identical to the from-scratch combined build.
    let rebuilt = EngineBuilder::new(network.clone(), &full)
        .index_config(config.clone())
        .build();
    let a = engine.s_query(&probe, Algorithm::SqmbTbs);
    let b = rebuilt.s_query(&probe, Algorithm::SqmbTbs);
    let identical = a.region.segments == b.region.segments
        && a.region.total_length_km.to_bits() == b.region.total_length_km.to_bits();

    let wal_points_per_s = total_points as f64 / wal_ingest_s.max(1e-9);
    let volatile_points_per_s = total_points as f64 / volatile_ingest_s.max(1e-9);
    println!("{:<38} {:>14}", "metric", "value");
    println!("{:<38} {:>14}", "ingested points", total_points);
    println!(
        "{:<38} {:>14}",
        "ingest batches (WAL records)",
        batches.len()
    );
    println!(
        "{:<38} {:>14.0}",
        "WAL-backed ingest points/s", wal_points_per_s
    );
    println!(
        "{:<38} {:>14.0}",
        "volatile ingest points/s", volatile_points_per_s
    );
    println!("{:<38} {:>14}", "delta lists", delta.delta_lists);
    println!("{:<38} {:>14}", "delta bytes", delta.delta_bytes);
    println!("{:<38} {:>14.3}", "base build+save (s)", base_build_s);
    println!(
        "{:<38} {:>14.3}",
        "incremental save (s)", incremental_save_s
    );
    println!("{:<38} {:>14.3}", "full save (s)", full_save_s);
    println!("{:<38} {:>14.3}", "compaction (s)", compact_s);
    println!(
        "{:<38} {:>14.3}",
        "s-query before ingest (ms)",
        latency_before.median_ms()
    );
    println!(
        "{:<38} {:>14.3}",
        "s-query base+delta (ms)",
        latency_delta.median_ms()
    );
    println!(
        "{:<38} {:>14.3}",
        "s-query compacted (ms)",
        latency_compacted.median_ms()
    );
    println!("{:<38} {:>14}", "ingested == rebuilt (probe)", identical);

    let json = format!(
        "{{\n  \"scenario\": {{\"city\": \"GeneratorConfig::small\", \"scale\": \"{}\", \"taxis\": {}, \"base_days\": {}, \"extra_days\": {}, \"read_latency_us\": 0}},\n  \"ingested_points\": {},\n  \"wal_records\": {},\n  \"wal_ingest_points_per_s\": {:.0},\n  \"volatile_ingest_points_per_s\": {:.0},\n  \"delta_lists\": {},\n  \"delta_bytes\": {},\n  \"base_build_save_s\": {:.4},\n  \"incremental_save_s\": {:.4},\n  \"full_save_s\": {:.4},\n  \"compaction_s\": {:.4},\n  \"squery_before_ms\": {:.4},\n  \"squery_base_plus_delta_ms\": {:.4},\n  \"squery_compacted_ms\": {:.4},\n  \"ingested_matches_rebuilt\": {}\n}}\n",
        scale.label,
        scale.taxis,
        scale.base_days,
        scale.extra_days,
        total_points,
        batches.len(),
        wal_points_per_s,
        volatile_points_per_s,
        delta.delta_lists,
        delta.delta_bytes,
        base_build_s,
        incremental_save_s,
        full_save_s,
        compact_s,
        latency_before.median_ms(),
        latency_delta.median_ms(),
        latency_compacted.median_ms(),
        identical
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    eprintln!("[ingest] wrote BENCH_ingest.json");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&full_dir).ok();
    if !identical {
        eprintln!("[ingest] ERROR: ingested engine diverged from the from-scratch rebuild");
        std::process::exit(1);
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "streach-ingest-bench-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
