//! `ingest` — measures the streaming-ingest subsystem end to end and
//! records the result in `BENCH_ingest.json`.
//!
//! ```text
//! cargo run --release -p streach-bench --bin ingest [-- --quick] [-- --group-commit] [-- --concurrent-queries] [-- --cold-path] [-- --sharded] [-- --serving] [-- --subscriptions] [-- --replication]
//! ```
//!
//! `--group-commit` runs only the multi-writer WAL group-commit comparison
//! (1 vs 4 concurrent ingest threads sharing fsyncs); `--concurrent-queries`
//! runs only the queries-under-ingest-load section (query latency while a
//! writer ingests and a background [`MaintenanceController`] auto-checkpoints
//! and compacts); `--cold-path` runs only the cold-path storage comparison
//! (bytes on disk, cold-open time and cold-query latency, raw vs
//! delta/varint-compressed postings × file vs mmap backend — **gated**: the
//! compressed `postings.pages` must be at least [`COLD_PATH_RATIO_GATE`]×
//! smaller than the raw one and the mmap backend must answer bit-identically
//! to the file backend, or the process exits non-zero); `--sharded` runs only
//! the shard-scaling section (aggregate s-query throughput through a 1-, 2-
//! and 4-shard scatter-gather router, **gated**: every sharded answer must be
//! bit-identical to the unsharded baseline); `--serving` runs only the
//! serving front-end matrix (open-loop p50/p99 submission-to-answer latency
//! through a [`QueryServer`] at 1/4/16/64 simulated clients × coalescing
//! on/off × result cache on/off, **gated**: every ticket's region must be
//! bit-identical to the serial uncoalesced answer); `--subscriptions` runs
//! only the standing-subscription matrix (incremental footprint-filtered
//! re-evaluation vs forced full re-evaluation at 100/1k/10k standing
//! queries — **gated**: every subscription's region must stay bit-identical
//! across the two modes after every batch, and the incremental side must
//! issue strictly fewer engine queries than the full side on slot-disjoint
//! batches); `--replication` runs only the replication tier (WAL ship
//! throughput to 1/2/4 replicas and lag-recovery time after an ingest
//! burst under the background `ReplicationController` — **gated**: every
//! replica must answer bit-identically to its leader after convergence and
//! the controller must land every replica under the lag SLO). With no mode
//! flag every section runs and the results — including the `cold_path`,
//! `serving`, `subscriptions` and `replication` objects — are written to
//! `BENCH_ingest.json`; a mode-only run prints its table (and enforces its
//! gates) without touching the JSON — **except `--serving`,
//! `--subscriptions` and `--replication`**, which merge their section into
//! an existing `BENCH_ingest.json` (or create a stub) so CI can smoke-test
//! the section without paying for the full bench.
//!
//! Scenario: a base fleet is built and snapshotted, the snapshot is
//! reopened as a serving engine, and the remaining fleet-days arrive as
//! trajectory-point batches. Measured:
//!
//! * **WAL-backed ingest throughput** (points/s through append + fsync +
//!   delta merge) and **volatile ingest throughput** (no WAL — isolates
//!   the durability cost),
//! * **query latency** (SQMB+TBS median) before ingest, over base + delta,
//!   and after compaction,
//! * **incremental vs full snapshot save** (the incremental path skips the
//!   unchanged base page file) and **compaction** wall time.
//!
//! The run doubles as a correctness smoke: the ingested engine's answer to
//! a probe workload must be bit-identical to a from-scratch build on the
//! combined dataset, and the process exits non-zero otherwise.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use streach_bench::timing::measure;
use streach_core::prelude::*;
use streach_core::{
    EngineBuilder, MaintenanceConfig, MaintenanceController, PostingEncoding, StorageBackend,
};
use streach_traj::points_of;

/// The compressed `postings.pages` must be at least this factor smaller
/// than the raw-encoded one (checked on every `--cold-path` run).
const COLD_PATH_RATIO_GATE: f64 = 1.5;

/// One cold-path measurement cell: a snapshot encoding served by a backend.
struct ColdCell {
    label: &'static str,
    open_s: f64,
    cold_query_ms: f64,
}

/// Cold-path storage comparison: the same fleet snapshotted twice — raw
/// (untagged fixed-width) and delta/varint-compressed postings — then each
/// snapshot cold-opened and probed through both sealed-page backends
/// (buffered file reads and the read-only memory mapping). Returns the
/// page-file sizes, the four measurement cells, the compressed run's
/// decoded/resident ratio, and whether every backend/encoding combination
/// answered the probe bit-identically.
fn run_cold_path(
    network: &Arc<RoadNetwork>,
    dataset: &TrajectoryDataset,
    config: &IndexConfig,
    probe: &SQuery,
) -> (u64, u64, Vec<ColdCell>, f64, bool) {
    let mut pages_bytes = [0u64; 2];
    let mut dirs = Vec::new();
    for (i, encoding) in [PostingEncoding::LegacyRaw, PostingEncoding::Delta]
        .into_iter()
        .enumerate()
    {
        let dir = tmp_dir(&format!("bench-cold-{i}"));
        EngineBuilder::new(network.clone(), dataset)
            .index_config(IndexConfig {
                posting_encoding: encoding,
                ..config.clone()
            })
            .save_snapshot(&dir)
            .expect("save cold-path snapshot");
        pages_bytes[i] = std::fs::metadata(dir.join(streach_core::snapshot::PAGES_FILE))
            .expect("pages file")
            .len();
        dirs.push(dir);
    }

    let labels = ["raw/file", "raw/mmap", "compressed/file", "compressed/mmap"];
    let mut cells = Vec::new();
    let mut regions: Vec<(Vec<SegmentId>, u64)> = Vec::new();
    let mut decode_ratio = 1.0;
    for (i, dir) in dirs.iter().enumerate() {
        for (j, backend) in [StorageBackend::File, StorageBackend::Mmap]
            .into_iter()
            .enumerate()
        {
            let t0 = Instant::now();
            let engine =
                ReachabilityEngine::open_snapshot_with_backend(dir, network.clone(), backend)
                    .expect("cold open");
            let open_s = t0.elapsed().as_secs_f64();
            engine.warm_con_index(probe.start_time_s, probe.duration_s);
            engine.st_index().clear_cache();
            engine.st_index().io_stats().reset();
            let t0 = Instant::now();
            let outcome = engine.s_query(probe, Algorithm::SqmbTbs);
            let cold_query_ms = t0.elapsed().as_secs_f64() * 1e3;
            let io = engine.st_index().io_stats().snapshot();
            if i == 1 {
                decode_ratio = io.decode_ratio();
            }
            cells.push(ColdCell {
                label: labels[i * 2 + j],
                open_s,
                cold_query_ms,
            });
            regions.push((
                outcome.region.segments,
                outcome.region.total_length_km.to_bits(),
            ));
        }
    }
    // Every cell must answer identically: mmap vs file within an encoding,
    // and compressed vs raw across encodings.
    let identical = regions.iter().all(|r| *r == regions[0]);
    for dir in dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
    (
        pages_bytes[0],
        pages_bytes[1],
        cells,
        decode_ratio,
        identical,
    )
}

/// Multi-writer group-commit comparison: the same batch stream ingested by
/// 1 and by `writers` concurrent threads through one WAL each (round-robin
/// partition). Returns points/s per writer count; asserts both converge on
/// the same probe answer.
fn run_group_commit(
    dir: &std::path::Path,
    network: &Arc<RoadNetwork>,
    batches: &[Vec<TrajPoint>],
    probe: &SQuery,
    writers: usize,
) -> (f64, f64) {
    let total_points: usize = batches.iter().map(Vec::len).sum();
    let mut throughput = [0.0f64; 2];
    let mut expected: Option<Vec<SegmentId>> = None;
    for (case, count) in [(0usize, 1usize), (1, writers)] {
        let engine = Arc::new(
            ReachabilityEngine::open_snapshot(dir, network.clone()).expect("open snapshot"),
        );
        let wal = dir.join(format!("group-{count}.wal"));
        let _ = std::fs::remove_file(&wal);
        engine.attach_wal(&wal).expect("attach WAL");
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..count {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    for batch in batches.iter().skip(w).step_by(count) {
                        engine.ingest(batch).expect("group-commit ingest");
                    }
                });
            }
        });
        throughput[case] = total_points as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let region = engine.s_query(probe, Algorithm::SqmbTbs).region.segments;
        match &expected {
            None => expected = Some(region),
            Some(e) => assert_eq!(
                e, &region,
                "concurrent group-commit ingest diverged from single-writer"
            ),
        }
        std::fs::remove_file(&wal).ok();
    }
    (throughput[0], throughput[1])
}

/// Queries racing ingest + background maintenance: 2 query threads hammer
/// the probe while the main thread ingests every batch through the WAL and
/// a [`MaintenanceController`] auto-checkpoints / compacts on its own
/// cadence. Returns (ingest points/s, query median ms under load,
/// checkpoints, compactions).
fn run_concurrent_queries(
    dir: &std::path::Path,
    network: &Arc<RoadNetwork>,
    batches: &[Vec<TrajPoint>],
    probe: &SQuery,
) -> (f64, f64, u64, u64) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let total_points: usize = batches.iter().map(Vec::len).sum();
    let engine =
        Arc::new(ReachabilityEngine::open_snapshot(dir, network.clone()).expect("open snapshot"));
    engine.attach_wal(dir.join("ingest.wal")).expect("attach");
    let controller =
        MaintenanceController::spawn(Arc::clone(&engine), dir, MaintenanceConfig::default());
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let stop = AtomicBool::new(false);
    let (elapsed, mut latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = &stop;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        let _ = engine.s_query(probe, Algorithm::SqmbTbs);
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    lat
                })
            })
            .collect();
        let t0 = Instant::now();
        for batch in batches {
            engine.ingest(batch).expect("ingest under query load");
        }
        let elapsed = t0.elapsed();
        controller.run_now();
        stop.store(true, Ordering::Relaxed);
        let latencies: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("query thread"))
            .collect();
        (elapsed, latencies)
    });
    let stats = controller.stats();
    let errors = controller.shutdown();
    assert!(
        errors.is_empty(),
        "maintenance errors under load: {errors:?}"
    );
    latencies.sort_by(f64::total_cmp);
    let median = latencies
        .get(latencies.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    (
        total_points as f64 / elapsed.as_secs_f64().max(1e-9),
        median,
        stats.checkpoints,
        stats.compactions,
    )
}

/// Shard-scaling comparison: the same dataset served through a 1-, 2- and
/// 4-shard scatter-gather router ([`ShardedEngine`]); per shard count,
/// measures partition + per-shard index build time and aggregate s-query
/// throughput over a spread workload (locations across the network, so
/// reachable annuli straddle shard boundaries). Every sharded answer is
/// checked bit-identical to the unsharded baseline. Returns
/// `(shards, build_s, queries_per_s)` cells plus the identity verdict.
fn run_shard_scaling(
    network: &Arc<RoadNetwork>,
    dataset: &TrajectoryDataset,
    config: &IndexConfig,
    iterations: usize,
) -> (Vec<(u16, f64, f64)>, bool) {
    let b = network.bounds();
    let center = b.center();
    let (dlon, dlat) = (b.max_lon - b.min_lon, b.max_lat - b.min_lat);
    let mut workload = Vec::new();
    for (fx, fy) in [
        (0.0, 0.0),
        (0.2, 0.1),
        (-0.15, -0.1),
        (0.1, -0.2),
        (-0.2, 0.15),
    ] {
        for (start, duration) in [(9 * 3600u32, 600u32), (10 * 3600, 900)] {
            workload.push(SQuery {
                location: GeoPoint::new(center.lon + dlon * fx, center.lat + dlat * fy),
                start_time_s: start,
                duration_s: duration,
                prob: 0.25,
            });
        }
    }
    let baseline = EngineBuilder::new(network.clone(), dataset)
        .index_config(config.clone())
        .build();
    let expected: Vec<(Vec<SegmentId>, u64)> = workload
        .iter()
        .map(|q| {
            let o = baseline.s_query(q, Algorithm::SqmbTbs);
            (o.region.segments, o.region.total_length_km.to_bits())
        })
        .collect();

    let mut cells = Vec::new();
    let mut identical = true;
    for shards in [1u16, 2, 4] {
        let t0 = Instant::now();
        let map = Arc::new(ShardMap::partition(network, shards));
        let leaders: Vec<Arc<ReachabilityEngine>> = (0..shards)
            .map(|shard_id| {
                Arc::new(
                    EngineBuilder::new(network.clone(), dataset)
                        .index_config(config.clone())
                        .shard(map.clone(), shard_id)
                        .build(),
                )
            })
            .collect();
        let router = ShardedEngine::new(map, leaders);
        let build_s = t0.elapsed().as_secs_f64();

        // One warmup sweep so the throughput loop measures routed posting
        // reads rather than first-touch Con-Index table construction.
        for q in &workload {
            router.try_s_query(q, Algorithm::SqmbTbs).expect("warmup");
        }
        let t0 = Instant::now();
        let mut answered = 0usize;
        for _ in 0..iterations {
            for (i, q) in workload.iter().enumerate() {
                let o = router
                    .try_s_query(q, Algorithm::SqmbTbs)
                    .expect("sharded query");
                answered += 1;
                if (o.region.segments, o.region.total_length_km.to_bits()) != expected[i] {
                    identical = false;
                }
            }
        }
        let queries_per_s = answered as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        cells.push((shards, build_s, queries_per_s));
    }
    (cells, identical)
}

/// One serving-matrix measurement cell.
struct ServingCell {
    clients: usize,
    coalesce: bool,
    cache: bool,
    p50_ms: f64,
    p99_ms: f64,
    coalesced: u64,
    cache_hits: u64,
}

/// SplitMix64 — deterministic client query draws.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serving front-end matrix: an open-loop latency harness over a quiesced
/// engine. Simulated clients submit seeded-random draws from a ~16-query
/// workload on a fixed aggregate arrival schedule (paced at ~2× one serial
/// query lane, so high client counts genuinely queue and coalesce);
/// latency is submission-schedule to answer-completion, so backpressure
/// waits count. Every ticket's region is checked bit-identical to the
/// serial uncoalesced `try_s_query` answer — the identity verdict gates
/// the run. Returns the cells, the workload size, the scheduled arrivals
/// per cell, and the verdict.
fn run_serving(
    dir: &std::path::Path,
    network: &Arc<RoadNetwork>,
    quick: bool,
) -> (Vec<ServingCell>, usize, usize, bool) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use streach_core::{QueryServer, ServeConfig};

    let engine = Arc::new(
        ReachabilityEngine::open_snapshot(dir, network.clone()).expect("open serving snapshot"),
    );
    let b = network.bounds();
    let center = b.center();
    let (dlon, dlat) = (b.max_lon - b.min_lon, b.max_lat - b.min_lat);
    let mut workload = Vec::new();
    for (fx, fy) in [(0.0, 0.0), (0.18, 0.12), (-0.15, -0.08), (0.1, -0.17)] {
        for (start, duration) in [(9 * 3600u32, 600u32), (10 * 3600, 900)] {
            for prob in [0.25, 0.6] {
                workload.push(SQuery {
                    location: GeoPoint::new(center.lon + dlon * fx, center.lat + dlat * fy),
                    start_time_s: start,
                    duration_s: duration,
                    prob,
                });
            }
        }
    }
    engine.warm_con_index(9 * 3600, 900);
    engine.warm_con_index(10 * 3600, 900);

    // Serial references: the bit-identity gate every ticket checks against.
    let expected: Vec<(Vec<SegmentId>, u64)> = workload
        .iter()
        .map(|q| {
            let o = engine
                .try_s_query(q, Algorithm::SqmbTbs)
                .expect("serial reference");
            (o.region.segments, o.region.total_length_km.to_bits())
        })
        .collect();
    // A warm serial sweep paces the open-loop schedule.
    let t0 = Instant::now();
    for q in &workload {
        engine
            .try_s_query(q, Algorithm::SqmbTbs)
            .expect("pacing sweep");
    }
    let serial_mean_s = t0.elapsed().as_secs_f64() / workload.len() as f64;
    let interval_s = (serial_mean_s / 2.0).max(1e-5);

    let total_arrivals = if quick { 120usize } else { 400 };
    let mut cells = Vec::new();
    let mismatches = AtomicU64::new(0);
    for clients in [1usize, 4, 16, 64] {
        for (coalesce, cache) in [(true, true), (true, false), (false, true), (false, false)] {
            let per_client = (total_arrivals / clients).max(8);
            let server = QueryServer::start(
                Arc::clone(&engine),
                ServeConfig {
                    workers: 2,
                    queue_depth: 64,
                    coalesce,
                    cache_capacity: if cache { 1024 } else { 0 },
                    ..Default::default()
                },
            );
            let t_start = Instant::now();
            let mut latencies: Vec<f64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let server = &server;
                        let workload = &workload;
                        let expected = &expected;
                        let mismatches = &mismatches;
                        scope.spawn(move || {
                            let mut pending = Vec::with_capacity(per_client);
                            for k in 0..per_client {
                                // Fixed aggregate schedule, interleaved
                                // round-robin across clients.
                                let at = t_start
                                    + std::time::Duration::from_secs_f64(
                                        (k * clients + c) as f64 * interval_s,
                                    );
                                let now = Instant::now();
                                if at > now {
                                    std::thread::sleep(at - now);
                                }
                                let pick = (mix(
                                    77,
                                    (clients as u64) * 1_000_003 + (c as u64) * 7_919 + k as u64,
                                ) % workload.len() as u64)
                                    as usize;
                                pending.push((
                                    pick,
                                    at,
                                    server.submit(workload[pick], Algorithm::SqmbTbs),
                                ));
                            }
                            let mut lat = Vec::with_capacity(per_client);
                            for (pick, at, ticket) in pending {
                                let (result, done) = ticket.wait_timed();
                                let outcome = result.expect("serving query");
                                if outcome.region.segments != expected[pick].0
                                    || outcome.region.total_length_km.to_bits() != expected[pick].1
                                {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                lat.push(done.saturating_duration_since(at).as_secs_f64() * 1e3);
                            }
                            lat
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .collect()
            });
            let stats = server.stats();
            server.shutdown();
            latencies.sort_by(f64::total_cmp);
            cells.push(ServingCell {
                clients,
                coalesce,
                cache,
                p50_ms: percentile(&latencies, 0.5),
                p99_ms: percentile(&latencies, 0.99),
                coalesced: stats.coalesced,
                cache_hits: stats.cache_hits,
            });
        }
    }
    let identical = mismatches.load(Ordering::Relaxed) == 0;
    (cells, workload.len(), total_arrivals, identical)
}

struct SubsCell {
    subs: usize,
    batches: usize,
    disjoint_batches: usize,
    incremental_queries: u64,
    full_queries: u64,
    incremental_eval_s: f64,
    full_eval_s: f64,
    disjoint_incremental_queries: u64,
    disjoint_full_queries: u64,
    events: u64,
}

/// Standing-subscription matrix: N standing s-queries registered against
/// two engines opened from the same snapshot — one re-evaluated
/// incrementally (footprint-filtered, the [`SubscriptionManager`] default)
/// and one forced into full re-evaluation (`invalidate_all` before every
/// batch). Both sides ingest the same live batches; after every batch each
/// subscription's region must be bit-identical across the two modes (the
/// identity gate). A second phase ingests slot-disjoint afternoon batches
/// (fresh trajectory ids, wrapped dates, +5 h shift) that no morning
/// subscription's footprint covers: the incremental side must issue
/// strictly fewer engine queries than the full side there (the work gate —
/// the expected split is 0 vs N per batch). Returns the cells plus the
/// two gate verdicts.
fn run_subscriptions(
    dir: &std::path::Path,
    network: &Arc<RoadNetwork>,
    batches: &[Vec<streach_traj::TrajPoint>],
    base_days: u16,
    quick: bool,
) -> (Vec<SubsCell>, bool, bool) {
    use std::time::Duration;
    use streach_core::{SubscribeConfig, SubscriptionManager, Trigger};

    let counts: &[usize] = if quick {
        &[100, 1000]
    } else {
        &[100, 1000, 10_000]
    };
    let live_batches = batches.len().min(if quick { 3 } else { 4 });
    let disjoint_batches = batches.len().min(2);
    // Kick-driven only: a timeout wake between `invalidate_all` and the
    // ingest that follows would burn a spurious full pass and skew the
    // query accounting.
    let config = SubscribeConfig {
        poll_interval: Duration::from_secs(3600),
        ..Default::default()
    };

    let b = network.bounds();
    let center = b.center();
    let (dlon, dlat) = (b.max_lon - b.min_lon, b.max_lat - b.min_lat);
    let unit = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64;

    let mut cells = Vec::new();
    let mut identical = true;
    let mut strictly_fewer = true;
    for &n in counts {
        // Subscription windows stay inside the fleet's [08:00, 11:45]
        // data window — data-backed bounding keeps a single evaluation
        // cheap, and the +5 h disjoint batches (13:00+) can never touch a
        // footprint slot.
        let subs: Vec<SQuery> = (0..n)
            .map(|i| {
                let i = i as u64;
                SQuery {
                    location: GeoPoint::new(
                        center.lon + dlon * (unit(mix(909, i)) - 0.5) * 0.8,
                        center.lat + dlat * (unit(mix(910, i)) - 0.5) * 0.8,
                    ),
                    start_time_s: 8 * 3600 + (mix(911, i) % 15) as u32 * 900,
                    duration_s: 300 + (mix(912, i) % 3) as u32 * 300,
                    prob: if mix(913, i).is_multiple_of(2) {
                        0.25
                    } else {
                        0.6
                    },
                }
            })
            .collect();

        let open = || {
            Arc::new(
                ReachabilityEngine::open_snapshot(dir, network.clone())
                    .expect("open subscription snapshot"),
            )
        };
        let (eng_inc, eng_full) = (open(), open());
        for eng in [&eng_inc, &eng_full] {
            eng.warm_con_index(9 * 3600, 900);
        }
        let mgr_inc = SubscriptionManager::spawn(eng_inc.clone(), config.clone());
        let mgr_full = SubscriptionManager::spawn(eng_full.clone(), config.clone());
        for q in &subs {
            mgr_inc
                .subscribe(*q, Algorithm::SqmbTbs, Trigger::AnyRegionChange)
                .expect("register incremental subscription");
            mgr_full
                .subscribe(*q, Algorithm::SqmbTbs, Trigger::AnyRegionChange)
                .expect("register full-mode subscription");
        }
        mgr_inc.poll_events();
        mgr_full.poll_events();
        let ids = mgr_inc.subscription_ids();
        assert_eq!(ids, mgr_full.subscription_ids());

        let mut check_identical = |label: &str| {
            for &id in &ids {
                let a = mgr_inc.last_region(id).expect("incremental region");
                let b = mgr_full.last_region(id).expect("full-mode region");
                let same = match (&a, &b) {
                    (Some(a), Some(b)) => {
                        a.segments == b.segments
                            && a.total_length_km.to_bits() == b.total_length_km.to_bits()
                    }
                    (None, None) => true,
                    _ => false,
                };
                if !same {
                    eprintln!(
                        "[ingest] subscriptions: {id} diverged between incremental and full re-evaluation ({label}, {n} subs)"
                    );
                    identical = false;
                }
            }
        };

        let (q_inc0, q_full0) = (
            mgr_inc.stats().engine_queries,
            mgr_full.stats().engine_queries,
        );
        let (mut inc_eval_s, mut full_eval_s) = (0.0f64, 0.0f64);
        for batch in &batches[..live_batches] {
            eng_inc.ingest(batch).expect("incremental-side ingest");
            let t = Instant::now();
            mgr_inc.run_now();
            inc_eval_s += t.elapsed().as_secs_f64();

            mgr_full.invalidate_all();
            eng_full.ingest(batch).expect("full-side ingest");
            let t = Instant::now();
            mgr_full.run_now();
            full_eval_s += t.elapsed().as_secs_f64();

            mgr_inc.poll_events();
            mgr_full.poll_events();
        }
        check_identical("live batch");
        let inc_queries = mgr_inc.stats().engine_queries - q_inc0;
        let full_queries = mgr_full.stats().engine_queries - q_full0;

        // Slot-disjoint phase: the incremental side should do zero work.
        let (dq_inc0, dq_full0) = (
            mgr_inc.stats().engine_queries,
            mgr_full.stats().engine_queries,
        );
        for (round, batch) in batches[..disjoint_batches].iter().enumerate() {
            let shifted: Vec<streach_traj::TrajPoint> = batch
                .iter()
                .map(|p| streach_traj::TrajPoint {
                    traj_id: p.traj_id + 1_000_000 + round as u32 * 10_000,
                    date: p.date % base_days,
                    segment: p.segment,
                    enter_time_s: (p.enter_time_s + 5 * 3600)
                        .min(streach_traj::SECONDS_PER_DAY - 1),
                })
                .collect();
            eng_inc
                .ingest(&shifted)
                .expect("incremental disjoint ingest");
            mgr_inc.run_now();
            mgr_full.invalidate_all();
            eng_full.ingest(&shifted).expect("full disjoint ingest");
            mgr_full.run_now();
            mgr_inc.poll_events();
            mgr_full.poll_events();
        }
        check_identical("disjoint batch");
        let dq_inc = mgr_inc.stats().engine_queries - dq_inc0;
        let dq_full = mgr_full.stats().engine_queries - dq_full0;
        if dq_inc >= dq_full {
            eprintln!(
                "[ingest] subscriptions: incremental issued {dq_inc} engine queries on slot-disjoint batches, full issued {dq_full} ({n} subs) — expected strictly fewer"
            );
            strictly_fewer = false;
        }

        let events = mgr_inc.stats().events_emitted;
        cells.push(SubsCell {
            subs: n,
            batches: live_batches,
            disjoint_batches,
            incremental_queries: inc_queries,
            full_queries,
            incremental_eval_s: inc_eval_s,
            full_eval_s,
            disjoint_incremental_queries: dq_inc,
            disjoint_full_queries: dq_full,
            events,
        });
        mgr_inc.shutdown();
        mgr_full.shutdown();
    }
    (cells, identical, strictly_fewer)
}

/// One replication measurement cell: a leader shipping to N replicas.
struct ReplCell {
    replicas: usize,
    ship_records: u64,
    ship_points_per_s: f64,
    burst_records: u64,
    recovery_ms: f64,
    final_lag: u64,
    slo_met: bool,
}

/// Copies a snapshot directory file by file — the artifact shipping a
/// replica host would do out of band.
fn copy_snapshot(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create replica dir");
    for entry in std::fs::read_dir(src).expect("read snapshot dir").flatten() {
        if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy artifact");
        }
    }
}

/// Replication tier: WAL ship throughput to 1/2/4 replicas (one drain of
/// the whole ingested backlog), then lag-recovery time after a fresh
/// ingest burst with the background [`ReplicationController`] shipping on
/// its cadence under a lag SLO. Returns the cells, the SLO, and whether
/// every replica answered the probe bit-identically to its leader after
/// convergence.
fn run_replication(
    dir: &std::path::Path,
    network: &Arc<RoadNetwork>,
    batches: &[Vec<streach_traj::TrajPoint>],
    probe: &SQuery,
) -> (Vec<ReplCell>, u64, bool) {
    let slo_records = 64u64;
    let total_points: usize = batches.iter().map(Vec::len).sum();
    let mut cells = Vec::new();
    let mut identical = true;
    for replicas in [1usize, 2, 4] {
        let home = tmp_dir(&format!("bench-repl-{replicas}"));
        copy_snapshot(dir, &home);
        let leader = Arc::new(
            ReachabilityEngine::open_snapshot(&home, network.clone())
                .expect("open replication leader"),
        );
        leader
            .attach_wal(home.join("ingest.wal"))
            .expect("attach leader WAL");
        let set = Arc::new(ReplicaSet::new(leader.clone(), home.join("ingest.wal")));
        let mut replica_homes = Vec::new();
        for r in 0..replicas {
            let replica_home = tmp_dir(&format!("bench-repl-{replicas}-r{r}"));
            copy_snapshot(dir, &replica_home);
            let replica = Arc::new(
                ReachabilityEngine::open_snapshot(&replica_home, network.clone())
                    .expect("open replica"),
            );
            set.add_replica(replica, replica_home.join("follower.wal"))
                .expect("register replica");
            replica_homes.push(replica_home);
        }

        // Ship throughput: the whole fleet-day backlog is durable at the
        // leader; one ship call drains it to every replica (log persist +
        // replicated apply).
        for batch in batches {
            leader.ingest(batch).expect("leader ingest");
        }
        let t0 = Instant::now();
        let shipped = set.ship().expect("ship backlog");
        let ship_s = t0.elapsed().as_secs_f64();
        assert!(set.converged(), "replicas converge after the backlog ships");

        // Lag recovery: a burst of re-tagged batches lands while the
        // background controller ships on a 1 ms cadence; the clock runs
        // from the last acked record to convergence.
        let ctl = ReplicationController::spawn(
            set.clone(),
            ReplicationConfig {
                poll_interval: std::time::Duration::from_millis(1),
                lag_slo_records: slo_records,
                ..ReplicationConfig::default()
            },
        );
        let burst: Vec<Vec<streach_traj::TrajPoint>> = batches
            .iter()
            .map(|b| {
                b.iter()
                    .map(|p| streach_traj::TrajPoint {
                        traj_id: p.traj_id + 700_000,
                        date: p.date,
                        segment: p.segment,
                        enter_time_s: p.enter_time_s,
                    })
                    .collect()
            })
            .collect();
        for batch in &burst {
            leader.ingest(batch).expect("burst ingest");
        }
        let t0 = Instant::now();
        ctl.kick();
        while !set.converged() && t0.elapsed().as_secs_f64() < 30.0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        let final_lag = ctl.lag().into_iter().max().unwrap_or(0);
        let slo_met = set.converged() && final_lag <= slo_records;

        // The bit-identity gate: every replica answers the probe exactly
        // as its leader does.
        let want = leader
            .try_s_query(probe, Algorithm::SqmbTbs)
            .expect("leader probe");
        for r in 0..replicas {
            let got = set
                .replica(r)
                .try_s_query(probe, Algorithm::SqmbTbs)
                .expect("replica probe");
            identical &= want.region.segments == got.region.segments
                && want.region.total_length_km.to_bits() == got.region.total_length_km.to_bits();
        }
        ctl.shutdown();
        cells.push(ReplCell {
            replicas,
            ship_records: shipped,
            ship_points_per_s: total_points as f64 / ship_s.max(1e-9),
            burst_records: burst.len() as u64,
            recovery_ms,
            final_lag,
            slo_met,
        });
        std::fs::remove_dir_all(&home).ok();
        for replica_home in replica_homes {
            std::fs::remove_dir_all(replica_home).ok();
        }
    }
    (cells, slo_records, identical)
}

/// Splices a section (a leading-comma, single-line fragment) into
/// `BENCH_ingest.json`: replaces the existing `key` section in place
/// (sections are one line each, so anything after it survives) or appends
/// before the final closing brace; creates a stub file when none exists.
/// Unlike the other mode-only sections the callers of this deliberately
/// *do* touch the JSON — the CI smokes assert their section lands without
/// paying for a full bench run.
fn merge_section_json(key: &str, fragment: &str) {
    let path = "BENCH_ingest.json";
    let marker = format!(",\n  \"{key}\":");
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let without = match existing.find(&marker) {
                Some(pos) => {
                    let rest = match existing[pos + 2..].find('\n') {
                        Some(nl) => &existing[pos + 2 + nl..],
                        None => "",
                    };
                    format!("{}{}", &existing[..pos], rest)
                }
                None => existing,
            };
            let last = without.rfind('}').unwrap_or(without.len());
            format!("{}{fragment}\n}}\n", without[..last].trim_end())
        }
        Err(_) => {
            format!("{{\n  \"scenario\": {{\"note\": \"{key}-only run\"}}{fragment}\n}}\n")
        }
    };
    std::fs::write(path, merged).expect("write BENCH_ingest.json");
}

struct Scale {
    label: &'static str,
    taxis: usize,
    base_days: u16,
    extra_days: u16,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only_group = args.iter().any(|a| a == "--group-commit");
    let only_concurrent = args.iter().any(|a| a == "--concurrent-queries");
    let only_cold = args.iter().any(|a| a == "--cold-path");
    let only_sharded = args.iter().any(|a| a == "--sharded");
    let only_serving = args.iter().any(|a| a == "--serving");
    let only_subscriptions = args.iter().any(|a| a == "--subscriptions");
    let only_replication = args.iter().any(|a| a == "--replication");
    let run_all = !(only_group
        || only_concurrent
        || only_cold
        || only_sharded
        || only_serving
        || only_subscriptions
        || only_replication);
    let scale = if quick {
        Scale {
            label: "quick",
            taxis: 10,
            base_days: 3,
            extra_days: 2,
        }
    } else {
        Scale {
            label: "standard",
            taxis: 40,
            base_days: 6,
            extra_days: 3,
        }
    };
    eprintln!(
        "[ingest] scenario ({}): {} taxis, {} base + {} ingested days",
        scale.label, scale.taxis, scale.base_days, scale.extra_days
    );

    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let center = network.bounds().center();
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: scale.taxis,
            num_days: scale.base_days + scale.extra_days,
            day_start_s: 8 * 3600,
            day_end_s: 12 * 3600,
            seed: 77,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < scale.base_days)
            .cloned()
            .collect(),
        scale.taxis,
        scale.base_days,
    );
    let batches: Vec<Vec<streach_traj::TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= scale.base_days)
        .map(|t| points_of(t).collect())
        .collect();
    let total_points: usize = batches.iter().map(Vec::len).sum();
    let config = IndexConfig {
        read_latency_us: 0,
        // Low enough that the concurrent-queries section genuinely fires
        // auto-checkpoints at bench scale.
        auto_checkpoint_bytes: 64 * 1024,
        ..Default::default()
    };

    let dir = tmp_dir("bench");
    let t0 = Instant::now();
    let built = EngineBuilder::new(network.clone(), &base)
        .index_config(config.clone())
        .save_snapshot(&dir)
        .expect("save base snapshot");
    let base_build_s = t0.elapsed().as_secs_f64();

    let probe = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };

    // --- Group commit: 1 vs N concurrent WAL writers (pristine snapshot) --
    let group_writers = 4usize;
    let (mut group_1w, mut group_nw) = (f64::NAN, f64::NAN);
    if run_all || only_group {
        let (one, many) = run_group_commit(&dir, &network, &batches, &probe, group_writers);
        group_1w = one;
        group_nw = many;
        println!(
            "{:<38} {:>14.0}",
            "group-commit 1 writer points/s", group_1w
        );
        println!(
            "{:<38} {:>14.0}",
            format!("group-commit {group_writers} writers points/s"),
            group_nw
        );
    }

    // --- Queries racing ingest + background maintenance (own dir copy) ----
    let (mut cq_ingest, mut cq_median, mut cq_ckpts, mut cq_compactions) =
        (f64::NAN, f64::NAN, 0u64, 0u64);
    if run_all || only_concurrent {
        let cq_dir = tmp_dir("bench-concurrent");
        built
            .save_snapshot(&cq_dir)
            .expect("save concurrent-section snapshot");
        let (ingest_ps, median, ckpts, compactions) =
            run_concurrent_queries(&cq_dir, &network, &batches, &probe);
        cq_ingest = ingest_ps;
        cq_median = median;
        cq_ckpts = ckpts;
        cq_compactions = compactions;
        println!(
            "{:<38} {:>14.0}",
            "ingest points/s under query load", cq_ingest
        );
        println!(
            "{:<38} {:>14.3}",
            "s-query median under ingest (ms)", cq_median
        );
        println!("{:<38} {:>14}", "auto-checkpoints under load", cq_ckpts);
        println!(
            "{:<38} {:>14}",
            "background compactions under load", cq_compactions
        );
        std::fs::remove_dir_all(&cq_dir).ok();
    }

    // --- Cold path: raw vs compressed postings × file vs mmap backend -----
    let mut cold_json = String::new();
    if run_all || only_cold {
        let (raw_bytes, compressed_bytes, cells, decode_ratio, cold_identical) =
            run_cold_path(&network, &full, &config, &probe);
        let ratio = raw_bytes as f64 / (compressed_bytes as f64).max(1.0);
        println!(
            "{:<38} {:>14}",
            "cold-path raw postings.pages bytes", raw_bytes
        );
        println!(
            "{:<38} {:>14}",
            "cold-path compressed bytes", compressed_bytes
        );
        println!("{:<38} {:>14.2}", "cold-path compression ratio", ratio);
        println!(
            "{:<38} {:>14.2}",
            "cold-path decode ratio (logical/disk)", decode_ratio
        );
        for cell in &cells {
            println!(
                "{:<38} {:>6.3}s {:>6.3}ms",
                format!("cold open / query [{}]", cell.label),
                cell.open_s,
                cell.cold_query_ms
            );
        }
        println!(
            "{:<38} {:>14}",
            "cold-path all cells identical", cold_identical
        );
        let cell_json: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"combo\": \"{}\", \"open_s\": {:.4}, \"cold_query_ms\": {:.4}}}",
                    c.label, c.open_s, c.cold_query_ms
                )
            })
            .collect();
        cold_json = format!(
            ",\n  \"cold_path\": {{\"raw_pages_bytes\": {}, \"compressed_pages_bytes\": {}, \"compression_ratio\": {:.4}, \"ratio_gate\": {:.1}, \"decode_ratio\": {:.4}, \"mmap_matches_file\": {}, \"cells\": [{}]}}",
            raw_bytes,
            compressed_bytes,
            ratio,
            COLD_PATH_RATIO_GATE,
            decode_ratio,
            cold_identical,
            cell_json.join(", ")
        );
        let mut cold_failed = false;
        if ratio < COLD_PATH_RATIO_GATE {
            eprintln!(
                "[ingest] ERROR: cold-path compression ratio {ratio:.2} is below the {COLD_PATH_RATIO_GATE}x gate"
            );
            cold_failed = true;
        }
        if !cold_identical {
            eprintln!(
                "[ingest] ERROR: cold-path backend/encoding combinations diverged on the probe"
            );
            cold_failed = true;
        }
        if cold_failed {
            std::process::exit(1);
        }
    }

    // --- Shard scaling: s-queries through the scatter-gather router --------
    let mut sharded_json = String::new();
    if run_all || only_sharded {
        let iterations = if quick { 2 } else { 4 };
        let (cells, sharded_identical) = run_shard_scaling(&network, &full, &config, iterations);
        for &(shards, build_s, queries_per_s) in &cells {
            println!(
                "{:<38} {:>6.3}s {:>8.0}/s",
                format!("sharded serving [{shards} shard(s)]"),
                build_s,
                queries_per_s
            );
        }
        println!(
            "{:<38} {:>14}",
            "sharded answers identical", sharded_identical
        );
        let cell_json: Vec<String> = cells
            .iter()
            .map(|&(shards, build_s, queries_per_s)| {
                format!(
                    "{{\"shards\": {shards}, \"build_s\": {build_s:.4}, \"queries_per_s\": {queries_per_s:.0}}}"
                )
            })
            .collect();
        sharded_json = format!(
            ",\n  \"sharded_scaling\": {{\"identical\": {}, \"cells\": [{}]}}",
            sharded_identical,
            cell_json.join(", ")
        );
        if !sharded_identical {
            eprintln!(
                "[ingest] ERROR: a sharded router answer diverged from the unsharded baseline"
            );
            std::process::exit(1);
        }
    }

    // --- Serving front end: open-loop latency through the QueryServer ------
    let mut serving_json = String::new();
    if run_all || only_serving {
        let (cells, workload_queries, arrivals_per_cell, serving_identical) =
            run_serving(&dir, &network, quick);
        for cell in &cells {
            println!(
                "{:<38} {:>8.3}ms {:>8.3}ms",
                format!(
                    "serving [{:>2} clients, coalesce {}, cache {}]",
                    cell.clients,
                    if cell.coalesce { "on " } else { "off" },
                    if cell.cache { "on " } else { "off" }
                ),
                cell.p50_ms,
                cell.p99_ms
            );
        }
        println!(
            "{:<38} {:>14}",
            "serving answers identical", serving_identical
        );
        let cell_json: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"clients\": {}, \"coalesce\": {}, \"cache\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"coalesced\": {}, \"cache_hits\": {}}}",
                    c.clients, c.coalesce, c.cache, c.p50_ms, c.p99_ms, c.coalesced, c.cache_hits
                )
            })
            .collect();
        serving_json = format!(
            ",\n  \"serving\": {{\"identical\": {}, \"workload_queries\": {}, \"arrivals_per_cell\": {}, \"cells\": [{}]}}",
            serving_identical,
            workload_queries,
            arrivals_per_cell,
            cell_json.join(", ")
        );
        if !serving_identical {
            eprintln!(
                "[ingest] ERROR: a serving-matrix answer diverged from the serial uncoalesced path"
            );
            std::process::exit(1);
        }
    }
    // --- Standing subscriptions: incremental vs full re-evaluation ---------
    let mut subscriptions_json = String::new();
    if run_all || only_subscriptions {
        let (cells, subs_identical, subs_strictly_fewer) =
            run_subscriptions(&dir, &network, &batches, scale.base_days, quick);
        for cell in &cells {
            println!(
                "{:<38} {:>10} vs {:>10} queries {:>7.3}s vs {:>7.3}s",
                format!("subscriptions [{:>5} subs] inc/full", cell.subs),
                cell.incremental_queries,
                cell.full_queries,
                cell.incremental_eval_s,
                cell.full_eval_s
            );
            println!(
                "{:<38} {:>10} vs {:>10} queries",
                format!("  slot-disjoint [{:>5} subs]", cell.subs),
                cell.disjoint_incremental_queries,
                cell.disjoint_full_queries
            );
        }
        println!(
            "{:<38} {:>14}",
            "subscription answers identical", subs_identical
        );
        println!(
            "{:<38} {:>14}",
            "incremental strictly fewer (disjoint)", subs_strictly_fewer
        );
        let cell_json: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"subs\": {}, \"batches\": {}, \"disjoint_batches\": {}, \"incremental_engine_queries\": {}, \"full_engine_queries\": {}, \"incremental_eval_s\": {:.4}, \"full_eval_s\": {:.4}, \"disjoint_incremental_queries\": {}, \"disjoint_full_queries\": {}, \"events\": {}}}",
                    c.subs,
                    c.batches,
                    c.disjoint_batches,
                    c.incremental_queries,
                    c.full_queries,
                    c.incremental_eval_s,
                    c.full_eval_s,
                    c.disjoint_incremental_queries,
                    c.disjoint_full_queries,
                    c.events
                )
            })
            .collect();
        subscriptions_json = format!(
            ",\n  \"subscriptions\": {{\"identical\": {}, \"strictly_fewer_on_disjoint\": {}, \"cells\": [{}]}}",
            subs_identical,
            subs_strictly_fewer,
            cell_json.join(", ")
        );
        if !subs_identical {
            eprintln!(
                "[ingest] ERROR: an incremental subscription answer diverged from full re-evaluation"
            );
            std::process::exit(1);
        }
        if !subs_strictly_fewer {
            eprintln!(
                "[ingest] ERROR: incremental re-evaluation did not beat full re-evaluation on slot-disjoint batches"
            );
            std::process::exit(1);
        }
    }
    // --- Replication: ship throughput + lag recovery under the SLO ---------
    let mut replication_json = String::new();
    if run_all || only_replication {
        let (cells, slo_records, repl_identical) =
            run_replication(&dir, &network, &batches, &probe);
        for cell in &cells {
            println!(
                "{:<38} {:>10.0}/s {:>8.1}ms",
                format!("replication [{} replica(s)] ship/recover", cell.replicas),
                cell.ship_points_per_s,
                cell.recovery_ms
            );
        }
        let repl_slo_met = cells.iter().all(|c| c.slo_met);
        println!(
            "{:<38} {:>14}",
            "replication answers identical", repl_identical
        );
        println!(
            "{:<38} {:>14}",
            format!("replication lag under SLO ({slo_records})"),
            repl_slo_met
        );
        let cell_json: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"replicas\": {}, \"ship_records\": {}, \"ship_points_per_s\": {:.0}, \"burst_records\": {}, \"recovery_ms\": {:.2}, \"final_lag\": {}, \"slo_met\": {}}}",
                    c.replicas,
                    c.ship_records,
                    c.ship_points_per_s,
                    c.burst_records,
                    c.recovery_ms,
                    c.final_lag,
                    c.slo_met
                )
            })
            .collect();
        replication_json = format!(
            ",\n  \"replication\": {{\"identical\": {}, \"slo_records\": {}, \"slo_met\": {}, \"cells\": [{}]}}",
            repl_identical,
            slo_records,
            repl_slo_met,
            cell_json.join(", ")
        );
        if !repl_identical {
            eprintln!(
                "[ingest] ERROR: a replica answer diverged from its leader after convergence"
            );
            std::process::exit(1);
        }
        if !repl_slo_met {
            eprintln!("[ingest] ERROR: the replication controller left a replica over the lag SLO");
            std::process::exit(1);
        }
    }
    drop(built);
    if !run_all {
        std::fs::remove_dir_all(&dir).ok();
        let mut merged = false;
        if only_serving {
            merge_section_json("serving", &serving_json);
            eprintln!("[ingest] serving-only run: merged `serving` section into BENCH_ingest.json");
            merged = true;
        }
        if only_subscriptions {
            merge_section_json("subscriptions", &subscriptions_json);
            eprintln!(
                "[ingest] subscriptions-only run: merged `subscriptions` section into BENCH_ingest.json"
            );
            merged = true;
        }
        if only_replication {
            merge_section_json("replication", &replication_json);
            eprintln!(
                "[ingest] replication-only run: merged `replication` section into BENCH_ingest.json"
            );
            merged = true;
        }
        if !merged {
            eprintln!("[ingest] mode-only run: BENCH_ingest.json left untouched");
        }
        return;
    }

    // Serving engine: reopen + WAL-backed ingest.
    let engine = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("open snapshot");
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let latency_before = measure(2, 9, || engine.s_query(&probe, Algorithm::SqmbTbs));

    let wal_path = dir.join("ingest.wal");
    engine.attach_wal(&wal_path).expect("attach WAL");
    let t0 = Instant::now();
    for batch in &batches {
        engine.ingest(batch).expect("WAL-backed ingest");
    }
    let wal_ingest_s = t0.elapsed().as_secs_f64();

    // Volatile ingest on a second reopen, for the durability overhead.
    let volatile = ReachabilityEngine::open_snapshot(&dir, network.clone()).expect("reopen");
    let t0 = Instant::now();
    for batch in &batches {
        volatile.ingest(batch).expect("volatile ingest");
    }
    let volatile_ingest_s = t0.elapsed().as_secs_f64();
    drop(volatile);

    let delta = engine.st_index().delta_stats();
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let latency_delta = measure(2, 9, || engine.s_query(&probe, Algorithm::SqmbTbs));

    // Snapshot costs: incremental (base page file reused) vs full.
    let t0 = Instant::now();
    engine
        .save_incremental_snapshot(&dir)
        .expect("incremental save");
    let incremental_save_s = t0.elapsed().as_secs_f64();
    let full_dir = tmp_dir("bench-full");
    let t0 = Instant::now();
    engine.save_snapshot(&full_dir).expect("full save");
    let full_save_s = t0.elapsed().as_secs_f64();

    // Compaction, then the sealed-base query latency.
    let t0 = Instant::now();
    engine.compact().expect("compact");
    let compact_s = t0.elapsed().as_secs_f64();
    engine.warm_con_index(probe.start_time_s, probe.duration_s);
    let latency_compacted = measure(2, 9, || engine.s_query(&probe, Algorithm::SqmbTbs));

    // Correctness smoke: bit-identical to the from-scratch combined build.
    let rebuilt = EngineBuilder::new(network.clone(), &full)
        .index_config(config.clone())
        .build();
    let a = engine.s_query(&probe, Algorithm::SqmbTbs);
    let b = rebuilt.s_query(&probe, Algorithm::SqmbTbs);
    let identical = a.region.segments == b.region.segments
        && a.region.total_length_km.to_bits() == b.region.total_length_km.to_bits();

    let wal_points_per_s = total_points as f64 / wal_ingest_s.max(1e-9);
    let volatile_points_per_s = total_points as f64 / volatile_ingest_s.max(1e-9);
    println!("{:<38} {:>14}", "metric", "value");
    println!("{:<38} {:>14}", "ingested points", total_points);
    println!(
        "{:<38} {:>14}",
        "ingest batches (WAL records)",
        batches.len()
    );
    println!(
        "{:<38} {:>14.0}",
        "WAL-backed ingest points/s", wal_points_per_s
    );
    println!(
        "{:<38} {:>14.0}",
        "volatile ingest points/s", volatile_points_per_s
    );
    println!("{:<38} {:>14}", "delta lists", delta.delta_lists);
    println!("{:<38} {:>14}", "delta bytes", delta.delta_bytes);
    println!("{:<38} {:>14.3}", "base build+save (s)", base_build_s);
    println!(
        "{:<38} {:>14.3}",
        "incremental save (s)", incremental_save_s
    );
    println!("{:<38} {:>14.3}", "full save (s)", full_save_s);
    println!("{:<38} {:>14.3}", "compaction (s)", compact_s);
    println!(
        "{:<38} {:>14.3}",
        "s-query before ingest (ms)",
        latency_before.median_ms()
    );
    println!(
        "{:<38} {:>14.3}",
        "s-query base+delta (ms)",
        latency_delta.median_ms()
    );
    println!(
        "{:<38} {:>14.3}",
        "s-query compacted (ms)",
        latency_compacted.median_ms()
    );
    println!("{:<38} {:>14}", "ingested == rebuilt (probe)", identical);

    let json = format!(
        "{{\n  \"scenario\": {{\"city\": \"GeneratorConfig::small\", \"scale\": \"{}\", \"taxis\": {}, \"base_days\": {}, \"extra_days\": {}, \"read_latency_us\": 0}},\n  \"ingested_points\": {},\n  \"wal_records\": {},\n  \"wal_ingest_points_per_s\": {:.0},\n  \"volatile_ingest_points_per_s\": {:.0},\n  \"group_commit_writers\": {},\n  \"group_commit_1_writer_points_per_s\": {:.0},\n  \"group_commit_points_per_s\": {:.0},\n  \"concurrent_ingest_points_per_s\": {:.0},\n  \"concurrent_query_median_ms\": {:.4},\n  \"concurrent_auto_checkpoints\": {},\n  \"concurrent_compactions\": {},\n  \"delta_lists\": {},\n  \"delta_bytes\": {},\n  \"base_build_save_s\": {:.4},\n  \"incremental_save_s\": {:.4},\n  \"full_save_s\": {:.4},\n  \"compaction_s\": {:.4},\n  \"squery_before_ms\": {:.4},\n  \"squery_base_plus_delta_ms\": {:.4},\n  \"squery_compacted_ms\": {:.4},\n  \"ingested_matches_rebuilt\": {}{}{}{}{}{}\n}}\n",
        scale.label,
        scale.taxis,
        scale.base_days,
        scale.extra_days,
        total_points,
        batches.len(),
        wal_points_per_s,
        volatile_points_per_s,
        group_writers,
        group_1w,
        group_nw,
        cq_ingest,
        cq_median,
        cq_ckpts,
        cq_compactions,
        delta.delta_lists,
        delta.delta_bytes,
        base_build_s,
        incremental_save_s,
        full_save_s,
        compact_s,
        latency_before.median_ms(),
        latency_delta.median_ms(),
        latency_compacted.median_ms(),
        identical,
        cold_json,
        sharded_json,
        serving_json,
        subscriptions_json,
        replication_json
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    eprintln!("[ingest] wrote BENCH_ingest.json");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&full_dir).ok();
    if !identical {
        eprintln!("[ingest] ERROR: ingested engine diverged from the from-scratch rebuild");
        std::process::exit(1);
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "streach-ingest-bench-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
