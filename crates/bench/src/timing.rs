//! A tiny measurement harness (criterion is unavailable offline).
//!
//! Each measurement runs a closure `iters` times after a warm-up pass and
//! reports min/median/mean wall-clock times. Medians make the numbers robust
//! against scheduler noise; the harness is deliberately simple — regressions
//! of the magnitude this repository cares about (2x and up) do not need
//! statistical machinery.

use std::time::{Duration, Instant};

/// Summary of one measured operation.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

impl Measurement {
    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }
}

/// Times `f` over `iters` iterations (plus `warmup` untimed ones).
pub fn measure<R>(warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> Measurement {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / iters as u32;
    Measurement {
        min,
        median,
        mean,
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = measure(1, 5, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.min <= m.median);
        assert!(m.median_ms() >= 0.0);
        assert_eq!(m.iters, 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_iters_rejected() {
        let _ = measure(0, 0, || ());
    }
}
