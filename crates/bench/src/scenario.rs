//! Evaluation scenarios: city + fleet + indexes + canonical query locations.

use std::sync::Arc;

use streach_core::prelude::*;
use streach_core::EngineBuilder;
use streach_geo::GeoPoint;
use streach_roadnet::RoadNetwork;

/// How large an evaluation scenario to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioSize {
    /// Tiny: for tests and Criterion micro-benchmarks.
    Smoke,
    /// Small: `repro --quick`.
    Quick,
    /// The configuration behind the numbers in `EXPERIMENTS.md`.
    Standard,
}

impl ScenarioSize {
    /// City generator configuration for this size.
    pub fn city(self) -> GeneratorConfig {
        match self {
            ScenarioSize::Smoke => GeneratorConfig::small(),
            ScenarioSize::Quick => GeneratorConfig {
                cols: 17,
                rows: 17,
                seed: 2014,
                ..GeneratorConfig::default()
            },
            ScenarioSize::Standard => GeneratorConfig {
                cols: 23,
                rows: 23,
                seed: 2014,
                ..GeneratorConfig::default()
            },
        }
    }

    /// Fleet configuration for this size (around-the-clock operation so that
    /// the start-time sweep of Fig. 4.5 has data everywhere).
    pub fn fleet(self) -> FleetConfig {
        let base = FleetConfig {
            day_start_s: 0,
            day_end_s: 86_400,
            seed: 2014,
            ..FleetConfig::default()
        };
        match self {
            ScenarioSize::Smoke => FleetConfig {
                num_taxis: 25,
                num_days: 5,
                ..base
            },
            ScenarioSize::Quick => FleetConfig {
                num_taxis: 60,
                num_days: 10,
                ..base
            },
            ScenarioSize::Standard => FleetConfig {
                num_taxis: 120,
                num_days: 15,
                ..base
            },
        }
    }
}

/// A ready-to-query evaluation environment.
pub struct Scenario {
    /// The road network.
    pub network: Arc<RoadNetwork>,
    /// The simulated trajectory dataset.
    pub dataset: TrajectoryDataset,
    /// The engine with ST-Index and Con-Index built at `slot_s` granularity.
    pub engine: ReachabilityEngine,
    /// The canonical single query location (the city centre — the paper uses
    /// a fixed downtown location, 22.5311 N 114.0550 E).
    pub query_location: GeoPoint,
    /// The size this scenario was built at.
    pub size: ScenarioSize,
}

impl Scenario {
    /// Builds a scenario with the default Δt of 5 minutes.
    pub fn build(size: ScenarioSize) -> Self {
        Self::build_with_slot(size, 300)
    }

    /// Builds a scenario with an explicit Δt (used by the Fig. 4.7 sweep).
    pub fn build_with_slot(size: ScenarioSize, slot_s: u32) -> Self {
        let city = SyntheticCity::generate(size.city());
        let query_location = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, size.fleet());
        let engine = EngineBuilder::new(network.clone(), &dataset)
            .index_config(IndexConfig {
                slot_s,
                ..IndexConfig::default()
            })
            .build();
        Self {
            network,
            dataset,
            engine,
            query_location,
            size,
        }
    }

    /// Rebuilds only the engine with a different Δt, reusing the network and
    /// dataset (used by the Fig. 4.7 granularity sweep).
    pub fn engine_with_slot(&self, slot_s: u32) -> ReachabilityEngine {
        EngineBuilder::new(self.network.clone(), &self.dataset)
            .index_config(IndexConfig {
                slot_s,
                ..IndexConfig::default()
            })
            .build()
    }

    /// The canonical s-query of the evaluation: T = 11:00, Prob = 20%.
    pub fn canonical_squery(&self, duration_min: u32) -> SQuery {
        SQuery {
            location: self.query_location,
            start_time_s: 11 * 3600,
            duration_s: duration_min * 60,
            prob: 0.2,
        }
    }

    /// The m-query locations used in Section 4.3: points spread around the
    /// centre roughly 1.5–3 km apart.
    pub fn mquery_locations(&self, n: usize) -> Vec<GeoPoint> {
        let c = self.query_location;
        let ring = [
            c,
            c.offset_m(1800.0, 900.0),
            c.offset_m(-1500.0, 1400.0),
            c.offset_m(-1700.0, -1200.0),
            c.offset_m(1400.0, -1800.0),
            c.offset_m(2600.0, -400.0),
            c.offset_m(-2600.0, 300.0),
            c.offset_m(400.0, 2600.0),
            c.offset_m(-300.0, -2700.0),
            c.offset_m(2300.0, 2100.0),
        ];
        ring.iter().copied().cycle().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_core::query::Algorithm;

    #[test]
    fn smoke_scenario_answers_queries() {
        let s = Scenario::build(ScenarioSize::Smoke);
        assert!(s.network.num_segments() > 100);
        assert!(s.dataset.stats().num_segment_visits > 1000);
        let q = s.canonical_squery(10);
        s.engine.warm_con_index(q.start_time_s, q.duration_s);
        let outcome = s.engine.s_query(&q, Algorithm::SqmbTbs);
        assert!(!outcome.region.is_empty());
        assert!(outcome.region.total_length_km > 0.0);
    }

    #[test]
    fn mquery_locations_are_distinct_up_to_ten() {
        let s = Scenario::build(ScenarioSize::Smoke);
        let locs = s.mquery_locations(10);
        assert_eq!(locs.len(), 10);
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                assert!(
                    locs[i].haversine_m(&locs[j]) > 100.0,
                    "locations {i} and {j} too close"
                );
            }
        }
        // Cycling beyond 10 repeats.
        assert_eq!(s.mquery_locations(12)[10], locs[0]);
    }

    #[test]
    fn scenario_sizes_are_ordered() {
        let smoke = ScenarioSize::Smoke.fleet();
        let quick = ScenarioSize::Quick.fleet();
        let standard = ScenarioSize::Standard.fleet();
        assert!(smoke.num_taxis < quick.num_taxis);
        assert!(quick.num_taxis < standard.num_taxis);
        assert!(ScenarioSize::Smoke.city().cols <= ScenarioSize::Standard.city().cols);
    }
}
