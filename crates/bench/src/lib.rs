//! Shared benchmark scenarios for the `streach` evaluation.
//!
//! The paper's evaluation (Chapter 4) runs every experiment against one
//! Shenzhen dataset; this crate provides the equivalent reproducible setup —
//! a synthetic city plus a simulated fleet plus pre-built indexes — at three
//! sizes:
//!
//! * [`ScenarioSize::Smoke`] — seconds to build, used by unit/CI tests and
//!   Criterion micro-benchmarks,
//! * [`ScenarioSize::Quick`] — a minute-scale configuration for `repro
//!   --quick`,
//! * [`ScenarioSize::Standard`] — the configuration used to produce the
//!   numbers recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod scenario;
pub mod timing;

pub use report::Table;
pub use scenario::{Scenario, ScenarioSize};
pub use timing::{measure, Measurement};
