//! Minimal tabular report rendering for the `repro` harness.

/// A simple text table: a header row plus data rows, rendered with aligned
/// columns. Each experiment of the harness prints one of these, mirroring a
/// table or one curve family of a figure from the paper.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig X", &["L (min)", "ES (ms)", "SQMB+TBS (ms)"]);
        t.row(vec!["5".into(), "1234.5".into(), "99.1".into()]);
        t.row(vec!["35".into(), "88.0".into(), "1.0".into()]);
        let s = t.render();
        assert!(s.starts_with("## Fig X\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have the same width as the header line.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
