//! Randomized invariant tests for the spatial indexes: the R-tree and the
//! grid are compared against brute-force linear scans.
//!
//! Formerly written with proptest; the build environment is offline, so the
//! same properties are now exercised with a seeded deterministic RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streach_geo::{GeoPoint, Mbr};
use streach_spatial::{GridIndex, RTree};

const CASES: usize = 64;

fn city_point(rng: &mut StdRng) -> GeoPoint {
    GeoPoint::new(rng.gen_range(113.8..114.4), rng.gen_range(22.45..22.8))
}

fn small_mbr(rng: &mut StdRng) -> Mbr {
    let c = city_point(rng);
    let w = rng.gen_range(10.0..800.0);
    let h = rng.gen_range(10.0..800.0);
    let a = c.offset_m(-w / 2.0, -h / 2.0);
    let b = c.offset_m(w / 2.0, h / 2.0);
    Mbr::new(a.lon, a.lat, b.lon, b.lat)
}

fn mbrs(rng: &mut StdRng, max: usize) -> Vec<(Mbr, u32)> {
    let n = rng.gen_range(1..max);
    (0..n as u32).map(|i| (small_mbr(rng), i)).collect()
}

/// Window queries on a bulk-loaded R-tree return exactly the items a linear
/// scan finds.
#[test]
fn rtree_bulk_window_query_matches_scan() {
    let mut rng = StdRng::seed_from_u64(301);
    for case in 0..CASES {
        let items = mbrs(&mut rng, 250);
        let window = small_mbr(&mut rng);
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), items.len(), "case {case}");
        let mut got: Vec<u32> = tree.search_mbr(&window).into_iter().copied().collect();
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|(m, _)| m.intersects(&window))
            .map(|(_, i)| *i)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "case {case}");
    }
}

/// The same holds for a tree built by repeated insertion.
#[test]
fn rtree_insert_window_query_matches_scan() {
    let mut rng = StdRng::seed_from_u64(302);
    for case in 0..CASES {
        let items = mbrs(&mut rng, 200);
        let window = small_mbr(&mut rng);
        let mut tree = RTree::new();
        for (m, i) in &items {
            tree.insert(*m, *i);
        }
        let mut got: Vec<u32> = tree.search_mbr(&window).into_iter().copied().collect();
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|(m, _)| m.intersects(&window))
            .map(|(_, i)| *i)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "case {case}");
    }
}

/// Point queries return exactly the items whose MBR contains the point.
#[test]
fn rtree_point_query_matches_scan() {
    let mut rng = StdRng::seed_from_u64(303);
    for case in 0..CASES {
        let items = mbrs(&mut rng, 200);
        let p = city_point(&mut rng);
        let tree = RTree::bulk_load(items.clone());
        let mut got: Vec<u32> = tree.search_point(&p).into_iter().copied().collect();
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|(m, _)| m.contains_point(&p))
            .map(|(_, i)| *i)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "case {case}");
    }
}

/// Nearest-neighbour search with the exact point distance agrees with a
/// brute-force scan.
#[test]
fn rtree_nearest_matches_scan() {
    let mut rng = StdRng::seed_from_u64(304);
    for case in 0..CASES {
        let n = rng.gen_range(1..200usize);
        let centers: Vec<GeoPoint> = (0..n).map(|_| city_point(&mut rng)).collect();
        let q = city_point(&mut rng);
        let items: Vec<(Mbr, u32)> = centers.iter().map(Mbr::of_point).zip(0u32..).collect();
        let tree = RTree::bulk_load(items);
        let (got, got_d) = tree
            .nearest_by(&q, |&id| centers[id as usize].haversine_m(&q))
            .unwrap();
        let best = centers
            .iter()
            .map(|c| c.haversine_m(&q))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (got_d - best).abs() < 1e-9,
            "case {case}: got {got_d} best {best}"
        );
        assert!(
            (centers[*got as usize].haversine_m(&q) - best).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// Grid candidate sets are supersets of the exact answer for point
/// neighbourhood queries within one cell size.
#[test]
fn grid_candidates_cover_nearby_items() {
    let mut rng = StdRng::seed_from_u64(305);
    for case in 0..CASES {
        let n = rng.gen_range(1..150usize);
        let centers: Vec<GeoPoint> = (0..n).map(|_| city_point(&mut rng)).collect();
        let q = city_point(&mut rng);
        let cell_m = rng.gen_range(200.0..800.0);
        let bounds = Mbr::new(113.8, 22.45, 114.4, 22.8);
        let mut grid = GridIndex::new(bounds, cell_m);
        for (i, c) in centers.iter().enumerate() {
            grid.insert(&Mbr::of_point(c), i as u32);
        }
        let candidates = grid.candidates_near(&q);
        // Every item within one cell size of the query must be a candidate.
        for (i, c) in centers.iter().enumerate() {
            if c.haversine_m(&q) <= cell_m {
                assert!(
                    candidates.contains(&(i as u32)),
                    "case {case}: item {i} at distance {} missing from candidates",
                    c.haversine_m(&q)
                );
            }
        }
    }
}

/// Grid window queries are supersets of the exact containment answer.
#[test]
fn grid_window_candidates_cover_contained_items() {
    let mut rng = StdRng::seed_from_u64(306);
    for case in 0..CASES {
        let n = rng.gen_range(1..150usize);
        let centers: Vec<GeoPoint> = (0..n).map(|_| city_point(&mut rng)).collect();
        let window = small_mbr(&mut rng);
        let bounds = Mbr::new(113.8, 22.45, 114.4, 22.8);
        let mut grid = GridIndex::new(bounds, 400.0);
        for (i, c) in centers.iter().enumerate() {
            grid.insert(&Mbr::of_point(c), i as u32);
        }
        let candidates = grid.candidates_in(&window);
        for (i, c) in centers.iter().enumerate() {
            if window.contains_point(c) {
                assert!(candidates.contains(&(i as u32)), "case {case}: item {i}");
            }
        }
    }
}
