//! Property-based tests for the spatial indexes: the R-tree and the grid are
//! compared against brute-force linear scans.

use proptest::prelude::*;
use streach_geo::{GeoPoint, Mbr};
use streach_spatial::{GridIndex, RTree};

fn city_point() -> impl Strategy<Value = GeoPoint> {
    (113.8f64..114.4f64, 22.45f64..22.8f64).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

fn small_mbr() -> impl Strategy<Value = Mbr> {
    (city_point(), 10.0f64..800.0, 10.0f64..800.0).prop_map(|(c, w, h)| {
        let a = c.offset_m(-w / 2.0, -h / 2.0);
        let b = c.offset_m(w / 2.0, h / 2.0);
        Mbr::new(a.lon, a.lat, b.lon, b.lat)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Window queries on a bulk-loaded R-tree return exactly the items a
    /// linear scan finds.
    #[test]
    fn rtree_bulk_window_query_matches_scan(
        mbrs in proptest::collection::vec(small_mbr(), 1..250),
        window in small_mbr(),
    ) {
        let items: Vec<(Mbr, u32)> = mbrs.iter().cloned().zip(0u32..).collect();
        let tree = RTree::bulk_load(items.clone());
        prop_assert_eq!(tree.len(), items.len());
        let mut got: Vec<u32> = tree.search_mbr(&window).into_iter().copied().collect();
        let mut expected: Vec<u32> = items.iter().filter(|(m, _)| m.intersects(&window)).map(|(_, i)| *i).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The same holds for a tree built by repeated insertion.
    #[test]
    fn rtree_insert_window_query_matches_scan(
        mbrs in proptest::collection::vec(small_mbr(), 1..200),
        window in small_mbr(),
    ) {
        let items: Vec<(Mbr, u32)> = mbrs.iter().cloned().zip(0u32..).collect();
        let mut tree = RTree::new();
        for (m, i) in &items {
            tree.insert(*m, *i);
        }
        let mut got: Vec<u32> = tree.search_mbr(&window).into_iter().copied().collect();
        let mut expected: Vec<u32> = items.iter().filter(|(m, _)| m.intersects(&window)).map(|(_, i)| *i).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Point queries return exactly the items whose MBR contains the point.
    #[test]
    fn rtree_point_query_matches_scan(
        mbrs in proptest::collection::vec(small_mbr(), 1..200),
        p in city_point(),
    ) {
        let items: Vec<(Mbr, u32)> = mbrs.iter().cloned().zip(0u32..).collect();
        let tree = RTree::bulk_load(items.clone());
        let mut got: Vec<u32> = tree.search_point(&p).into_iter().copied().collect();
        let mut expected: Vec<u32> = items.iter().filter(|(m, _)| m.contains_point(&p)).map(|(_, i)| *i).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Nearest-neighbour search with the exact point distance agrees with a
    /// brute-force scan.
    #[test]
    fn rtree_nearest_matches_scan(
        centers in proptest::collection::vec(city_point(), 1..200),
        q in city_point(),
    ) {
        let items: Vec<(Mbr, u32)> = centers.iter().map(Mbr::of_point).zip(0u32..).collect();
        let tree = RTree::bulk_load(items);
        let (got, got_d) = tree.nearest_by(&q, |&id| centers[id as usize].haversine_m(&q)).unwrap();
        let best = centers
            .iter()
            .map(|c| c.haversine_m(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got_d - best).abs() < 1e-9, "got {} best {}", got_d, best);
        prop_assert!((centers[*got as usize].haversine_m(&q) - best).abs() < 1e-9);
    }

    /// Grid candidate sets are supersets of the exact answer for point
    /// neighbourhood queries within one cell size.
    #[test]
    fn grid_candidates_cover_nearby_items(
        centers in proptest::collection::vec(city_point(), 1..150),
        q in city_point(),
        cell_m in 200.0f64..800.0,
    ) {
        let bounds = Mbr::new(113.8, 22.45, 114.4, 22.8);
        let mut grid = GridIndex::new(bounds, cell_m);
        for (i, c) in centers.iter().enumerate() {
            grid.insert(&Mbr::of_point(c), i as u32);
        }
        let candidates = grid.candidates_near(&q);
        // Every item within one cell size of the query must be a candidate.
        for (i, c) in centers.iter().enumerate() {
            if c.haversine_m(&q) <= cell_m {
                prop_assert!(
                    candidates.contains(&(i as u32)),
                    "item {} at distance {} missing from candidates",
                    i,
                    c.haversine_m(&q)
                );
            }
        }
    }

    /// Grid window queries are supersets of the exact containment answer.
    #[test]
    fn grid_window_candidates_cover_contained_items(
        centers in proptest::collection::vec(city_point(), 1..150),
        window in small_mbr(),
    ) {
        let bounds = Mbr::new(113.8, 22.45, 114.4, 22.8);
        let mut grid = GridIndex::new(bounds, 400.0);
        for (i, c) in centers.iter().enumerate() {
            grid.insert(&Mbr::of_point(c), i as u32);
        }
        let candidates = grid.candidates_in(&window);
        for (i, c) in centers.iter().enumerate() {
            if window.contains_point(c) {
                prop_assert!(candidates.contains(&(i as u32)));
            }
        }
    }
}
