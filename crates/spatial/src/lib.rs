//! From-scratch spatial indexes for the `streach` workspace.
//!
//! The ST-Index keeps one spatial index over the (re-segmented) road network:
//! "A spatial index (e.g., R-tree) is built based on the re-segmented road
//! network. As the road network is static, essentially all the leaf nodes in
//! the temporal index have the same spatial index structure." (Section 3.2.1)
//!
//! * [`RTree`] — an R-tree with STR bulk loading, incremental insertion with
//!   quadratic splits, window (MBR) queries, point queries and best-first
//!   nearest-neighbour search with an exact-distance refinement callback.
//!   The query processing algorithms use it to map a query location `S` to
//!   its start road segment `r0`.
//! * [`GridIndex`] — a uniform grid used by map matching to fetch candidate
//!   segments around each GPS point in O(1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod grid;
pub mod partition;
pub mod rtree;

pub use grid::GridIndex;
pub use partition::kd_partition;
pub use rtree::RTree;
