//! Deterministic spatial partitioning for shard maps.
//!
//! The scale-out topology splits the road network into K spatial shards by
//! cutting the plane of segment midpoints with a k-d tree: the group with
//! the most points is repeatedly split at the median of its wider-extent
//! axis until K groups exist. The cut is a pure function of the input
//! points — ties are broken by input index, medians by stable ordering —
//! so every process that partitions the same network with the same K
//! derives the identical segment→shard assignment without coordination.
//!
//! The partitioner works on bare `(x, y)` points so it stays free of any
//! road-network dependency; callers feed it segment midpoints (longitude,
//! latitude) and persist the resulting assignment in the snapshot container.

/// One contiguous group of input points during the recursive cut.
struct Group {
    /// Indices into the caller's point slice.
    members: Vec<u32>,
}

impl Group {
    fn extent(&self, points: &[(f64, f64)]) -> (f64, f64) {
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in &self.members {
            let (x, y) = points[i as usize];
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        ((max_x - min_x).max(0.0), (max_y - min_y).max(0.0))
    }
}

/// Splits `points` into `num_shards` spatial groups with a deterministic
/// k-d cut and returns one shard id per input point.
///
/// The largest group (by member count; ties by lowest group index) is split
/// at the median of its wider axis — x when the x-extent is at least the
/// y-extent — until `num_shards` groups exist. Members sort by coordinate
/// with input index as the tiebreaker, so duplicate coordinates cannot make
/// the cut ambiguous. With fewer points than shards, the surplus shards are
/// simply empty: every point still gets a valid shard id in
/// `0..num_shards`, and callers route reads for unassigned space by
/// nearest-member convention of their own choosing.
///
/// `num_shards == 0` is treated as 1 so the result is always a total map.
pub fn kd_partition(points: &[(f64, f64)], num_shards: u16) -> Vec<u16> {
    let num_shards = num_shards.max(1);
    let mut groups = vec![Group {
        members: (0..points.len() as u32).collect(),
    }];
    while groups.len() < num_shards as usize {
        // Split the most populated group; ties go to the earliest group so
        // the sequence of cuts is reproducible.
        let (victim, _) = match groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.members.len() > 1)
            .max_by(|(ia, a), (ib, b)| a.members.len().cmp(&b.members.len()).then(ib.cmp(ia)))
        {
            Some((i, g)) => (i, g.members.len()),
            // Every group is a singleton or empty: pad with empty shards.
            None => {
                groups.push(Group {
                    members: Vec::new(),
                });
                continue;
            }
        };
        let mut members = std::mem::take(&mut groups[victim].members);
        let (ex, ey) = Group {
            members: members.clone(),
        }
        .extent(points);
        let split_x = ex >= ey;
        members.sort_unstable_by(|&a, &b| {
            let ka = points[a as usize];
            let kb = points[b as usize];
            let (pa, pb) = if split_x { (ka.0, kb.0) } else { (ka.1, kb.1) };
            pa.partial_cmp(&pb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let right = members.split_off(members.len() / 2);
        groups[victim].members = members;
        groups.push(Group { members: right });
    }

    let mut assignment = vec![0u16; points.len()];
    for (shard, group) in groups.iter().enumerate() {
        for &i in &group.members {
            assignment[i as usize] = shard as u16;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: usize) -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for r in 0..side {
            for c in 0..side {
                pts.push((c as f64 * 0.01, r as f64 * 0.01));
            }
        }
        pts
    }

    #[test]
    fn partition_is_total_and_deterministic() {
        let pts = grid_points(10);
        let a = kd_partition(&pts, 4);
        let b = kd_partition(&pts, 4);
        assert_eq!(a, b, "same input must give the same cut");
        assert_eq!(a.len(), pts.len());
        assert!(a.iter().all(|&s| s < 4));
        for shard in 0..4u16 {
            assert!(a.contains(&shard), "shard {shard} is empty");
        }
    }

    #[test]
    fn split_sizes_are_balanced() {
        let pts = grid_points(8);
        let assignment = kd_partition(&pts, 4);
        let mut counts = [0usize; 4];
        for &s in &assignment {
            counts[s as usize] += 1;
        }
        // A median cut keeps groups within one point of each other per split.
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced counts {counts:?}");
    }

    #[test]
    fn shards_are_spatially_contiguous_on_a_line() {
        // Points on a line must split into contiguous runs.
        let pts: Vec<(f64, f64)> = (0..16).map(|i| (i as f64, 0.0)).collect();
        let assignment = kd_partition(&pts, 4);
        // Along the sorted axis a shard never reappears after it ends.
        let mut seen = Vec::new();
        for &s in &assignment {
            if seen.last() != Some(&s) {
                assert!(!seen.contains(&s), "shard {s} is not contiguous");
                seen.push(s);
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn more_shards_than_points_leaves_empty_shards() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0)];
        let assignment = kd_partition(&pts, 5);
        assert_eq!(assignment.len(), 2);
        assert!(assignment.iter().all(|&s| s < 5));
        assert_ne!(assignment[0], assignment[1]);
    }

    #[test]
    fn zero_shards_degrades_to_one() {
        let pts = grid_points(3);
        let assignment = kd_partition(&pts, 0);
        assert!(assignment.iter().all(|&s| s == 0));
    }
}
