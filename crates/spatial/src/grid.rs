//! A uniform grid index.

use streach_geo::{GeoPoint, Mbr};

/// A uniform grid over a fixed bounding box, mapping each cell to the items
/// whose MBR intersects it.
///
/// Map matching needs, for every GPS point, the road segments within a small
/// radius (tens of meters). A grid with a cell size comparable to that radius
/// answers such queries by inspecting at most a 3×3 block of cells, which is
/// much cheaper than an R-tree descent when processing hundreds of millions
/// of points.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bounds: Mbr,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<T>>,
    len: usize,
}

impl<T: Clone + PartialEq> GridIndex<T> {
    /// Creates an empty grid covering `bounds` with approximately
    /// `cell_size_m` meter cells. Panics if bounds are empty.
    pub fn new(bounds: Mbr, cell_size_m: f64) -> Self {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        assert!(cell_size_m > 0.0, "cell size must be positive");
        let meters_per_deg_lat = 111_320.0;
        let mid_lat = (bounds.min_lat + bounds.max_lat) / 2.0;
        let meters_per_deg_lon = meters_per_deg_lat * mid_lat.to_radians().cos();
        let width_m = (bounds.max_lon - bounds.min_lon) * meters_per_deg_lon;
        let height_m = (bounds.max_lat - bounds.min_lat) * meters_per_deg_lat;
        let cols = ((width_m / cell_size_m).ceil() as usize).max(1);
        let rows = ((height_m / cell_size_m).ceil() as usize).max(1);
        let cell_w = (bounds.max_lon - bounds.min_lon) / cols as f64;
        let cell_h = (bounds.max_lat - bounds.min_lat) / rows as f64;
        Self {
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Number of inserted items (an item spanning several cells counts once).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid dimensions as `(columns, rows)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn col_of(&self, lon: f64) -> usize {
        let c = ((lon - self.bounds.min_lon) / self.cell_w).floor();
        (c.max(0.0) as usize).min(self.cols - 1)
    }

    fn row_of(&self, lat: f64) -> usize {
        let r = ((lat - self.bounds.min_lat) / self.cell_h).floor();
        (r.max(0.0) as usize).min(self.rows - 1)
    }

    fn cell_index(&self, col: usize, row: usize) -> usize {
        row * self.cols + col
    }

    /// Inserts an item covering `mbr`. The item is registered in every cell
    /// its MBR intersects.
    pub fn insert(&mut self, mbr: &Mbr, item: T) {
        let c0 = self.col_of(mbr.min_lon);
        let c1 = self.col_of(mbr.max_lon);
        let r0 = self.row_of(mbr.min_lat);
        let r1 = self.row_of(mbr.max_lat);
        for r in r0..=r1 {
            for c in c0..=c1 {
                let idx = self.cell_index(c, r);
                if !self.cells[idx].contains(&item) {
                    self.cells[idx].push(item.clone());
                }
            }
        }
        self.len += 1;
    }

    /// Candidate items for the cell containing `p` plus the 8 surrounding
    /// cells. Duplicates (items spanning several of those cells) are removed.
    pub fn candidates_near(&self, p: &GeoPoint) -> Vec<T> {
        let c = self.col_of(p.lon);
        let r = self.row_of(p.lat);
        let mut out: Vec<T> = Vec::new();
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                let rr = r as i64 + dr;
                let cc = c as i64 + dc;
                if rr < 0 || cc < 0 || rr >= self.rows as i64 || cc >= self.cols as i64 {
                    continue;
                }
                for item in &self.cells[self.cell_index(cc as usize, rr as usize)] {
                    if !out.contains(item) {
                        out.push(item.clone());
                    }
                }
            }
        }
        out
    }

    /// Candidate items for every cell intersecting `window`.
    pub fn candidates_in(&self, window: &Mbr) -> Vec<T> {
        if !self.bounds.intersects(window) {
            return Vec::new();
        }
        let c0 = self.col_of(window.min_lon);
        let c1 = self.col_of(window.max_lon);
        let r0 = self.row_of(window.min_lat);
        let r1 = self.row_of(window.max_lat);
        let mut out: Vec<T> = Vec::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                for item in &self.cells[self.cell_index(c, r)] {
                    if !out.contains(item) {
                        out.push(item.clone());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_bounds() -> Mbr {
        Mbr::new(114.0, 22.5, 114.1, 22.6) // roughly 10 km x 11 km
    }

    #[test]
    fn dimensions_match_cell_size() {
        let g: GridIndex<u32> = GridIndex::new(city_bounds(), 500.0);
        let (cols, rows) = g.dimensions();
        // ~10.2 km wide => ~21 columns; ~11.1 km tall => ~23 rows.
        assert!((18..=25).contains(&cols), "cols {cols}");
        assert!((20..=25).contains(&rows), "rows {rows}");
        assert!(g.is_empty());
    }

    #[test]
    fn insert_and_lookup_same_cell() {
        let mut g = GridIndex::new(city_bounds(), 500.0);
        let p = GeoPoint::new(114.05, 22.55);
        g.insert(&Mbr::of_point(&p), 42u32);
        assert_eq!(g.len(), 1);
        let found = g.candidates_near(&p);
        assert_eq!(found, vec![42]);
        // A point 300 m away is still within the 3x3 neighbourhood of 500 m cells.
        let q = p.offset_m(300.0, 0.0);
        assert_eq!(g.candidates_near(&q), vec![42]);
        // A point 5 km away is not.
        let far = p.offset_m(5000.0, 0.0);
        assert!(g.candidates_near(&far).is_empty());
    }

    #[test]
    fn item_spanning_many_cells_counted_once() {
        let mut g = GridIndex::new(city_bounds(), 500.0);
        let long_road = Mbr::new(114.0, 22.55, 114.1, 22.551);
        g.insert(&long_road, 7u32);
        assert_eq!(g.len(), 1);
        let probe = GeoPoint::new(114.02, 22.55);
        assert_eq!(g.candidates_near(&probe), vec![7]);
        let probe2 = GeoPoint::new(114.09, 22.55);
        assert_eq!(g.candidates_near(&probe2), vec![7]);
        let all = g.candidates_in(&city_bounds());
        assert_eq!(all, vec![7]);
    }

    #[test]
    fn out_of_bounds_points_clamp() {
        let mut g = GridIndex::new(city_bounds(), 500.0);
        let corner = GeoPoint::new(114.0, 22.5);
        g.insert(&Mbr::of_point(&corner), 1u32);
        // A query outside the grid clamps to the nearest cell.
        let outside = GeoPoint::new(113.9, 22.4);
        assert_eq!(g.candidates_near(&outside), vec![1]);
    }

    #[test]
    fn window_query_returns_only_nearby_items() {
        let mut g = GridIndex::new(city_bounds(), 250.0);
        let a = GeoPoint::new(114.01, 22.51);
        let b = GeoPoint::new(114.09, 22.59);
        g.insert(&Mbr::of_point(&a), 1u32);
        g.insert(&Mbr::of_point(&b), 2u32);
        let window = Mbr::of_point(&a).padded(0.002);
        assert_eq!(g.candidates_in(&window), vec![1]);
        let disjoint = Mbr::new(120.0, 30.0, 121.0, 31.0);
        assert!(g.candidates_in(&disjoint).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_bounds_rejected() {
        let _: GridIndex<u32> = GridIndex::new(Mbr::EMPTY, 100.0);
    }
}
