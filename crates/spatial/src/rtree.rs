//! An R-tree over [`Mbr`] keys.

use streach_geo::{GeoPoint, Mbr};

/// Maximum number of entries per node.
const MAX_ENTRIES: usize = 16;
/// Minimum number of entries per node after a split.
const MIN_ENTRIES: usize = 6;

/// Approximate meters per degree of latitude.
const METERS_PER_DEG_LAT: f64 = 111_320.0;

/// A conservative lower bound (in meters) of the distance from a point to an
/// MBR, used to prune nearest-neighbour search. It must never exceed the true
/// distance to any geometry contained in the MBR.
fn mbr_min_dist_m(mbr: &Mbr, p: &GeoPoint) -> f64 {
    let dx_deg = if p.lon < mbr.min_lon {
        mbr.min_lon - p.lon
    } else if p.lon > mbr.max_lon {
        p.lon - mbr.max_lon
    } else {
        0.0
    };
    let dy_deg = if p.lat < mbr.min_lat {
        mbr.min_lat - p.lat
    } else if p.lat > mbr.max_lat {
        p.lat - mbr.max_lat
    } else {
        0.0
    };
    // Slightly shrink the longitude scale so that this stays a lower bound
    // even with the small curvature errors of the planar approximation.
    let lon_scale = METERS_PER_DEG_LAT * p.lat.to_radians().cos() * 0.995;
    let dx = dx_deg * lon_scale;
    let dy = dy_deg * METERS_PER_DEG_LAT * 0.995;
    (dx * dx + dy * dy).sqrt()
}

#[derive(Debug, Clone)]
struct LeafEntry<T> {
    mbr: Mbr,
    item: T,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<LeafEntry<T>>),
    Internal(Vec<Child<T>>),
}

#[derive(Debug, Clone)]
struct Child<T> {
    mbr: Mbr,
    node: Box<Node<T>>,
}

impl<T> Node<T> {
    fn mbr(&self) -> Mbr {
        match self {
            Node::Leaf(entries) => {
                let mut m = Mbr::EMPTY;
                for e in entries {
                    m.expand(&e.mbr);
                }
                m
            }
            Node::Internal(children) => {
                let mut m = Mbr::EMPTY;
                for c in children {
                    m.expand(&c.mbr);
                }
                m
            }
        }
    }
}

/// An R-tree mapping bounding rectangles to items of type `T`.
///
/// `T` is typically a small copyable identifier (a road-segment ID); the tree
/// stores it by value.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Bulk loads a tree from `(mbr, item)` pairs using the Sort-Tile-
    /// Recursive (STR) packing algorithm. This is how the ST-Index builds its
    /// spatial component: the road network is static, so the tree is packed
    /// once and shared by every temporal leaf.
    pub fn bulk_load(mut items: Vec<(Mbr, T)>) -> Self {
        let len = items.len();
        if items.is_empty() {
            return Self::new();
        }
        // Sort by center longitude, slice, then sort each slice by latitude.
        items.sort_by(|a, b| {
            a.0.center()
                .lon
                .partial_cmp(&b.0.center().lon)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = len.div_ceil(slice_count);

        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        for slice in items.chunks(slice_size.max(1)) {
            let mut slice: Vec<(Mbr, T)> = slice.to_vec();
            slice.sort_by(|a, b| {
                a.0.center()
                    .lat
                    .partial_cmp(&b.0.center().lat)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for chunk in slice.chunks(MAX_ENTRIES) {
                let entries = chunk
                    .iter()
                    .map(|(mbr, item)| LeafEntry {
                        mbr: *mbr,
                        item: item.clone(),
                    })
                    .collect();
                leaves.push(Node::Leaf(entries));
            }
        }
        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut children: Vec<Child<T>> = level
                .into_iter()
                .map(|node| Child {
                    mbr: node.mbr(),
                    node: Box::new(node),
                })
                .collect();
            children.sort_by(|a, b| {
                a.mbr
                    .center()
                    .lon
                    .partial_cmp(&b.mbr.center().lon)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let parent_count = children.len().div_ceil(MAX_ENTRIES);
            let slice_count = (parent_count as f64).sqrt().ceil() as usize;
            let slice_size = children.len().div_ceil(slice_count);
            let mut parents = Vec::with_capacity(parent_count);
            let mut buffer: Vec<Child<T>> = Vec::new();
            for child in children.into_iter() {
                buffer.push(child);
                if buffer.len() == slice_size.max(1) {
                    buffer.sort_by(|a, b| {
                        a.mbr
                            .center()
                            .lat
                            .partial_cmp(&b.mbr.center().lat)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for chunk in std::mem::take(&mut buffer).chunks(MAX_ENTRIES) {
                        parents.push(Node::Internal(chunk.to_vec()));
                    }
                }
            }
            if !buffer.is_empty() {
                buffer.sort_by(|a, b| {
                    a.mbr
                        .center()
                        .lat
                        .partial_cmp(&b.mbr.center().lat)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for chunk in std::mem::take(&mut buffer).chunks(MAX_ENTRIES) {
                    parents.push(Node::Internal(chunk.to_vec()));
                }
            }
            level = parents;
        }
        Self {
            root: level.pop().expect("non-empty"),
            len,
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bounding rectangle of everything stored (empty MBR when empty).
    pub fn bounds(&self) -> Mbr {
        self.root.mbr()
    }

    /// Inserts an item with its bounding rectangle.
    pub fn insert(&mut self, mbr: Mbr, item: T) {
        self.len += 1;
        if let Some((left, right)) = Self::insert_rec(&mut self.root, mbr, item) {
            self.root = Node::Internal(vec![left, right]);
        }
    }

    fn insert_rec(node: &mut Node<T>, mbr: Mbr, item: T) -> Option<(Child<T>, Child<T>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push(LeafEntry { mbr, item });
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = Self::split_leaf(std::mem::take(entries));
                    Some((
                        Child {
                            mbr: a.mbr(),
                            node: Box::new(a),
                        },
                        Child {
                            mbr: b.mbr(),
                            node: Box::new(b),
                        },
                    ))
                } else {
                    None
                }
            }
            Node::Internal(children) => {
                // Choose the child needing the least enlargement.
                let mut best = 0usize;
                let mut best_enlargement = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, child) in children.iter().enumerate() {
                    let enlargement = child.mbr.enlargement(&mbr);
                    let area = child.mbr.area();
                    if enlargement < best_enlargement
                        || (enlargement == best_enlargement && area < best_area)
                    {
                        best = i;
                        best_enlargement = enlargement;
                        best_area = area;
                    }
                }
                let split = Self::insert_rec(&mut children[best].node, mbr, item);
                children[best].mbr = children[best].node.mbr();
                if let Some((a, b)) = split {
                    children[best] = a;
                    children.push(b);
                    if children.len() > MAX_ENTRIES {
                        let (a, b) = Self::split_internal(std::mem::take(children));
                        return Some((
                            Child {
                                mbr: a.mbr(),
                                node: Box::new(a),
                            },
                            Child {
                                mbr: b.mbr(),
                                node: Box::new(b),
                            },
                        ));
                    }
                }
                None
            }
        }
    }

    /// Quadratic split of an overflowing leaf.
    fn split_leaf(entries: Vec<LeafEntry<T>>) -> (Node<T>, Node<T>) {
        let mbrs: Vec<Mbr> = entries.iter().map(|e| e.mbr).collect();
        let (group_a, group_b) = quadratic_split(&mbrs);
        let mut a = Vec::with_capacity(group_a.len());
        let mut b = Vec::with_capacity(group_b.len());
        for (i, entry) in entries.into_iter().enumerate() {
            if group_a.contains(&i) {
                a.push(entry);
            } else {
                b.push(entry);
            }
        }
        (Node::Leaf(a), Node::Leaf(b))
    }

    /// Quadratic split of an overflowing internal node.
    fn split_internal(children: Vec<Child<T>>) -> (Node<T>, Node<T>) {
        let mbrs: Vec<Mbr> = children.iter().map(|c| c.mbr).collect();
        let (group_a, group_b) = quadratic_split(&mbrs);
        let mut a = Vec::with_capacity(group_a.len());
        let mut b = Vec::with_capacity(group_b.len());
        for (i, child) in children.into_iter().enumerate() {
            if group_a.contains(&i) {
                a.push(child);
            } else {
                b.push(child);
            }
        }
        (Node::Internal(a), Node::Internal(b))
    }

    /// All items whose MBR intersects `window`.
    pub fn search_mbr(&self, window: &Mbr) -> Vec<&T> {
        let mut out = Vec::new();
        Self::search_rec(&self.root, window, &mut out);
        out
    }

    /// All items whose MBR contains the point `p`.
    pub fn search_point(&self, p: &GeoPoint) -> Vec<&T> {
        self.search_mbr(&Mbr::of_point(p))
    }

    fn search_rec<'a>(node: &'a Node<T>, window: &Mbr, out: &mut Vec<&'a T>) {
        match node {
            Node::Leaf(entries) => {
                for e in entries {
                    if e.mbr.intersects(window) {
                        out.push(&e.item);
                    }
                }
            }
            Node::Internal(children) => {
                for c in children {
                    if c.mbr.intersects(window) {
                        Self::search_rec(&c.node, window, out);
                    }
                }
            }
        }
    }

    /// Best-first nearest-neighbour search.
    ///
    /// `exact_dist` refines a candidate item into its true distance in meters
    /// (e.g. point-to-polyline distance for a road segment); the tree prunes
    /// subtrees whose MBR lower bound already exceeds the best distance found
    /// so far. Returns the item and its distance, or `None` on an empty tree.
    pub fn nearest_by<F>(&self, p: &GeoPoint, mut exact_dist: F) -> Option<(&T, f64)>
    where
        F: FnMut(&T) -> f64,
    {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if self.is_empty() {
            return None;
        }

        #[derive(PartialEq)]
        struct HeapKey(f64);
        impl Eq for HeapKey {}
        impl PartialOrd for HeapKey {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapKey {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<(Reverse<HeapKey>, usize)> = BinaryHeap::new();
        let mut nodes: Vec<&Node<T>> = vec![&self.root];
        heap.push((Reverse(HeapKey(mbr_min_dist_m(&self.root.mbr(), p))), 0));

        let mut best: Option<(&T, f64)> = None;
        while let Some((Reverse(HeapKey(lower)), idx)) = heap.pop() {
            if let Some((_, best_d)) = best {
                if lower > best_d {
                    break;
                }
            }
            match nodes[idx] {
                Node::Leaf(entries) => {
                    for e in entries {
                        let lb = mbr_min_dist_m(&e.mbr, p);
                        if let Some((_, best_d)) = best {
                            if lb > best_d {
                                continue;
                            }
                        }
                        let d = exact_dist(&e.item);
                        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                            best = Some((&e.item, d));
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        let lb = mbr_min_dist_m(&c.mbr, p);
                        if best.map(|(_, bd)| lb <= bd).unwrap_or(true) {
                            nodes.push(&c.node);
                            heap.push((Reverse(HeapKey(lb)), nodes.len() - 1));
                        }
                    }
                }
            }
        }
        best
    }

    /// All items together with their MBRs, in unspecified order.
    pub fn items(&self) -> Vec<(Mbr, &T)> {
        let mut out = Vec::with_capacity(self.len);
        Self::items_rec(&self.root, &mut out);
        out
    }

    fn items_rec<'a>(node: &'a Node<T>, out: &mut Vec<(Mbr, &'a T)>) {
        match node {
            Node::Leaf(entries) => out.extend(entries.iter().map(|e| (e.mbr, &e.item))),
            Node::Internal(children) => {
                for c in children {
                    Self::items_rec(&c.node, out);
                }
            }
        }
    }

    /// Maximum depth of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(children) = node {
            h += 1;
            node = &children[0].node;
        }
        h
    }
}

/// Guttman's quadratic split: pick the pair of rectangles that would waste
/// the most area as seeds, then assign the remaining rectangles greedily.
/// Returns the index sets of the two groups.
fn quadratic_split(mbrs: &[Mbr]) -> (Vec<usize>, Vec<usize>) {
    let n = mbrs.len();
    debug_assert!(n >= 2);
    // Pick seeds.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = mbrs[seed_a];
    let mut mbr_b = mbrs[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while let Some(&next) = remaining.first() {
        // If one group must take all remaining entries to reach MIN_ENTRIES,
        // assign them all.
        if group_a.len() + remaining.len() <= MIN_ENTRIES {
            group_a.append(&mut remaining);
            break;
        }
        if group_b.len() + remaining.len() <= MIN_ENTRIES {
            group_b.append(&mut remaining);
            break;
        }
        // Otherwise pick the entry with the largest preference difference.
        let mut best_idx = 0usize;
        let mut best_diff = f64::NEG_INFINITY;
        for (pos, &i) in remaining.iter().enumerate() {
            let da = mbr_a.enlargement(&mbrs[i]);
            let db = mbr_b.enlargement(&mbrs[i]);
            let diff = (da - db).abs();
            if diff > best_diff {
                best_diff = diff;
                best_idx = pos;
            }
        }
        let i = remaining.remove(best_idx);
        let da = mbr_a.enlargement(&mbrs[i]);
        let db = mbr_b.enlargement(&mbrs[i]);
        if da < db || (da == db && group_a.len() <= group_b.len()) {
            group_a.push(i);
            mbr_a.expand(&mbrs[i]);
        } else {
            group_b.push(i);
            mbr_b.expand(&mbrs[i]);
        }
        let _ = next;
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n_per_side: usize) -> Vec<(Mbr, u32)> {
        // n_per_side² small boxes tiling [0, n)².
        let mut items = Vec::new();
        let mut id = 0u32;
        for i in 0..n_per_side {
            for j in 0..n_per_side {
                let mbr = Mbr::new(i as f64, j as f64, i as f64 + 0.9, j as f64 + 0.9);
                items.push((mbr, id));
                id += 1;
            }
        }
        items
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.search_point(&GeoPoint::new(0.0, 0.0)).is_empty());
        assert!(t.nearest_by(&GeoPoint::new(0.0, 0.0), |_| 0.0).is_none());
        assert!(t.bounds().is_empty());
    }

    #[test]
    fn bulk_load_and_point_query() {
        let t = RTree::bulk_load(grid_items(10));
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 2);
        // The point (3.5, 7.5) lies inside exactly one box: i=3, j=7 -> id 3*10+7.
        let found = t.search_point(&GeoPoint::new(3.5, 7.5));
        assert_eq!(found, vec![&37u32]);
        // A point in the gaps between boxes hits nothing.
        let found = t.search_point(&GeoPoint::new(3.95, 7.95));
        assert!(found.is_empty());
    }

    #[test]
    fn bulk_load_window_query_matches_linear_scan() {
        let items = grid_items(12);
        let t = RTree::bulk_load(items.clone());
        let window = Mbr::new(2.5, 3.5, 6.2, 5.1);
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|(m, _)| m.intersects(&window))
            .map(|(_, id)| *id)
            .collect();
        let mut got: Vec<u32> = t.search_mbr(&window).into_iter().copied().collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn incremental_insert_matches_bulk_load_results() {
        let items = grid_items(9);
        let bulk = RTree::bulk_load(items.clone());
        let mut inc = RTree::new();
        for (mbr, id) in items.clone() {
            inc.insert(mbr, id);
        }
        assert_eq!(inc.len(), bulk.len());
        let window = Mbr::new(1.2, 0.3, 4.4, 8.0);
        let mut a: Vec<u32> = bulk.search_mbr(&window).into_iter().copied().collect();
        let mut b: Vec<u32> = inc.search_mbr(&window).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn nearest_by_finds_closest_box() {
        // Use realistic lon/lat so the meter-based lower bound is exercised.
        let center = GeoPoint::new(114.05, 22.53);
        let mut items = Vec::new();
        for i in 0..20 {
            let p = center.offset_m(i as f64 * 500.0, 0.0);
            items.push((Mbr::of_point(&p).padded(0.0005), i as u32));
        }
        let t = RTree::bulk_load(items);
        let query = center.offset_m(3.0 * 500.0 + 100.0, 50.0);
        let (item, d) = t
            .nearest_by(&query, |&id| {
                let p = center.offset_m(id as f64 * 500.0, 0.0);
                p.haversine_m(&query)
            })
            .unwrap();
        assert_eq!(*item, 3);
        assert!(d < 150.0);
    }

    #[test]
    fn nearest_by_agrees_with_linear_scan() {
        let center = GeoPoint::new(114.0, 22.5);
        let mut items = Vec::new();
        let mut positions = Vec::new();
        // Pseudo-random but deterministic scatter.
        let mut x = 12345u64;
        for id in 0..300u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dx = ((x >> 16) % 20_000) as f64 - 10_000.0;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dy = ((x >> 16) % 20_000) as f64 - 10_000.0;
            let p = center.offset_m(dx, dy);
            positions.push(p);
            items.push((Mbr::of_point(&p), id));
        }
        let t = RTree::bulk_load(items);
        for q_idx in [0usize, 7, 133, 299] {
            let q = positions[q_idx].offset_m(37.0, -81.0);
            let (got, got_d) = t
                .nearest_by(&q, |&id| positions[id as usize].haversine_m(&q))
                .unwrap();
            let (want, want_d) = positions
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, p.haversine_m(&q)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert_eq!(*got, want);
            assert!((got_d - want_d).abs() < 1e-9);
        }
    }

    #[test]
    fn items_returns_everything() {
        let t = RTree::bulk_load(grid_items(5));
        let mut ids: Vec<u32> = t.items().into_iter().map(|(_, id)| *id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn bounds_cover_all_items() {
        let items = grid_items(6);
        let t = RTree::bulk_load(items.clone());
        let b = t.bounds();
        for (m, _) in &items {
            assert!(b.contains(m));
        }
    }

    #[test]
    fn single_item_tree() {
        let mut t = RTree::new();
        t.insert(Mbr::new(0.0, 0.0, 1.0, 1.0), 7u32);
        assert_eq!(t.len(), 1);
        assert_eq!(t.search_point(&GeoPoint::new(0.5, 0.5)), vec![&7]);
        let (item, _) = t.nearest_by(&GeoPoint::new(5.0, 5.0), |_| 1.0).unwrap();
        assert_eq!(*item, 7);
    }

    #[test]
    fn heavy_insert_then_query_consistency() {
        let mut t = RTree::new();
        let items = grid_items(20); // 400 items, forces multiple levels
        for (mbr, id) in items.clone() {
            t.insert(mbr, id);
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 3);
        for probe in [(0usize, 0usize), (5, 19), (19, 19), (10, 10)] {
            let p = GeoPoint::new(probe.0 as f64 + 0.45, probe.1 as f64 + 0.45);
            let found = t.search_point(&p);
            assert_eq!(found.len(), 1);
            assert_eq!(*found[0], (probe.0 * 20 + probe.1) as u32);
        }
    }
}
