//! The on-disk snapshot container format.
//!
//! An engine snapshot is a directory with two files: a page file holding the
//! raw posting pages (read back through [`crate::FilePageStore`]) and a
//! *snapshot container* holding everything else — index directories, speed
//! statistics, connection tables, configuration — as named, checksummed
//! sections.
//!
//! # Layout
//!
//! ```text
//! [magic "STRSNAP\0" : 8 bytes]
//! [format version    : u32 LE]
//! [section count     : u32 LE]
//! per section:
//!     [name length   : u16 LE]
//!     [name          : UTF-8 bytes]
//!     [payload length: u64 LE]
//!     [payload CRC-32: u32 LE]
//!     [payload bytes]
//! [file CRC-32       : u32 LE]   -- over everything before it
//! ```
//!
//! Every payload carries its own CRC-32 (IEEE), and the whole file is sealed
//! by a trailing CRC, so truncation, bit rot and foreign files are all
//! rejected with [`StorageError::Corrupt`] instead of being deserialized
//! into garbage. A version bump turns old files into
//! [`StorageError::UnsupportedVersion`] — never a silent misread.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::pagestore::{StorageError, StorageResult};

/// Magic bytes opening every snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STRSNAP\0";

/// Snapshot format version written by this build.
///
/// Version history: 1 — original container; 2 — `config` section grew
/// `read_retries`, and the streaming-ingest sections (`delta_pages_meta`,
/// `delta_dir`, `ingest_meta`) plus the `deltas.pages` file are required;
/// 3 — `config` section grew `auto_checkpoint_bytes` (online maintenance);
/// 4 — `config` section grew `storage_backend` and `posting_encoding`, and
/// posting heaps may hold tagged (raw/delta-varint) blobs; 5 — optional
/// `shard_map` and `road_network` sections (scale-out topology: shard
/// ownership and self-contained replica bootstrap). Version-3 and version-4
/// containers are still read ([`MIN_SNAPSHOT_VERSION`]); v3 heaps decode
/// with the untagged legacy layout, and the v5 sections are simply absent
/// from older containers.
pub const SNAPSHOT_VERSION: u32 = 5;

/// Oldest snapshot format version this build still reads.
pub const MIN_SNAPSHOT_VERSION: u32 = 3;

/// Streaming CRC-32 (IEEE 802.3, reflected) accumulator. Implemented
/// locally — the offline build has no checksum crate — and verified against
/// the standard check value in the tests below.
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh accumulator.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        self.state = crc;
    }

    /// Returns the checksum of everything fed so far.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 (IEEE 802.3, reflected) of `bytes` in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

/// Writes a snapshot container: named sections appended in order, sealed by
/// [`SnapshotWriter::finish`].
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts an empty container.
    pub fn new() -> Self {
        Self {
            sections: Vec::new(),
        }
    }

    /// Appends a named section. Names must be unique within one container.
    pub fn add_section(&mut self, name: &str, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section {name}"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Serializes the container to `path` and fsyncs it.
    pub fn finish<P: AsRef<Path>>(self, path: P) -> StorageResult<()> {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(&SNAPSHOT_MAGIC);
        buf.put_u32_le(SNAPSHOT_VERSION);
        buf.put_u32_le(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u64_le(payload.len() as u64);
            buf.put_u32_le(crc32(payload));
            buf.put_slice(payload);
        }
        let seal = crc32(&buf);
        buf.put_u32_le(seal);

        let mut file = File::create(path)?;
        file.write_all(&buf)?;
        file.sync_all()?;
        Ok(())
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads and validates a snapshot container into memory.
pub struct SnapshotReader {
    version: u32,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotReader {
    /// Opens, checksums and parses the container at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let path = path.as_ref();
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::parse(&bytes).map_err(|e| match e {
            StorageError::Corrupt { context } => StorageError::Corrupt {
                context: format!("{}: {context}", path.display()),
            },
            other => other,
        })
    }

    /// Parses a container from memory.
    pub fn parse(bytes: &[u8]) -> StorageResult<Self> {
        let header_len = SNAPSHOT_MAGIC.len() + 4 + 4;
        if bytes.len() < header_len + 4 {
            return Err(StorageError::corrupt("snapshot shorter than its header"));
        }
        let (body, seal) = bytes.split_at(bytes.len() - 4);
        let expected_seal = u32::from_le_bytes(seal.try_into().expect("4 bytes"));
        if crc32(body) != expected_seal {
            return Err(StorageError::corrupt(
                "file checksum mismatch (truncated or corrupted snapshot)",
            ));
        }

        let mut cursor: &[u8] = body;
        let mut magic = [0u8; 8];
        cursor.copy_to_slice(&mut magic);
        if magic != SNAPSHOT_MAGIC {
            return Err(StorageError::corrupt("bad snapshot magic"));
        }
        let version = cursor.get_u32_le();
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let count = cursor.get_u32_le() as usize;
        // The count is attacker-controlled until each section proves itself;
        // never pre-allocate more than the remaining bytes could hold (a
        // section is at least 14 bytes: name length + payload length + CRC).
        let mut sections = Vec::with_capacity(count.min(cursor.remaining() / 14));
        for i in 0..count {
            if cursor.remaining() < 2 {
                return Err(StorageError::corrupt(format!("section {i}: missing name")));
            }
            let name_len = cursor.get_u16_le() as usize;
            if cursor.remaining() < name_len + 12 {
                return Err(StorageError::corrupt(format!("section {i}: truncated")));
            }
            let name = String::from_utf8(cursor[..name_len].to_vec())
                .map_err(|_| StorageError::corrupt(format!("section {i}: non-UTF-8 name")))?;
            cursor.advance(name_len);
            let payload_len = cursor.get_u64_le() as usize;
            let payload_crc = cursor.get_u32_le();
            if cursor.remaining() < payload_len {
                return Err(StorageError::corrupt(format!(
                    "section {name}: payload truncated"
                )));
            }
            let payload = cursor[..payload_len].to_vec();
            cursor.advance(payload_len);
            if crc32(&payload) != payload_crc {
                return Err(StorageError::corrupt(format!(
                    "section {name}: checksum mismatch"
                )));
            }
            sections.push((name, payload));
        }
        if cursor.remaining() != 0 {
            return Err(StorageError::corrupt("trailing bytes after last section"));
        }
        Ok(Self { version, sections })
    }

    /// The container's format version (within
    /// `MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION`). Engine opens use this to
    /// pick the legacy decoding for sections that grew across versions.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Names of the sections in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// The payload of a named section, or a [`StorageError::Corrupt`]
    /// explaining which section is missing.
    pub fn section(&self, name: &str) -> StorageResult<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| StorageError::corrupt(format!("missing snapshot section {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_standard_check_value() {
        // The canonical CRC-32/IEEE check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming in pieces equals one shot.
        let mut streamed = Crc32::new();
        streamed.update(b"1234");
        streamed.update(b"");
        streamed.update(b"56789");
        assert_eq!(streamed.finalize(), 0xCBF4_3926);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("streach-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writer_reader_roundtrip() {
        let path = tmp("roundtrip.snap");
        let mut w = SnapshotWriter::new();
        w.add_section("alpha", b"hello".to_vec());
        w.add_section("beta", vec![7u8; 10_000]);
        w.add_section("empty", Vec::new());
        w.finish(&path).unwrap();

        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(
            r.section_names().collect::<Vec<_>>(),
            vec!["alpha", "beta", "empty"]
        );
        assert_eq!(r.section("alpha").unwrap(), b"hello");
        assert_eq!(r.section("beta").unwrap(), &[7u8; 10_000][..]);
        assert_eq!(r.section("empty").unwrap(), b"");
        assert!(matches!(
            r.section("gamma"),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("truncated.snap");
        let mut w = SnapshotWriter::new();
        w.add_section("data", vec![42u8; 5000]);
        w.finish(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10, 0] {
            assert!(
                matches!(
                    SnapshotReader::parse(&bytes[..cut]),
                    Err(StorageError::Corrupt { .. })
                ),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn corrupted_header_and_payload_are_rejected() {
        let path = tmp("corrupt.snap");
        let mut w = SnapshotWriter::new();
        w.add_section("data", b"payload-bytes".to_vec());
        w.finish(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Flip a magic byte.
        let mut bad = clean.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::parse(&bad),
            Err(StorageError::Corrupt { .. })
        ));

        // Flip a payload byte (both the section CRC and the seal catch it).
        let mut bad = clean.clone();
        let n = bad.len();
        bad[n - 10] ^= 0x01;
        assert!(matches!(
            SnapshotReader::parse(&bad),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected_as_unsupported() {
        let path = tmp("version.snap");
        let mut w = SnapshotWriter::new();
        w.add_section("data", b"x".to_vec());
        w.finish(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Bump the version field and re-seal the file checksum.
        bytes[8] = 99;
        let n = bytes.len();
        let seal = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&seal.to_le_bytes());
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(StorageError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn previous_version_still_parses_but_older_are_rejected() {
        let path = tmp("backcompat.snap");
        let mut w = SnapshotWriter::new();
        w.add_section("data", b"legacy".to_vec());
        w.finish(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        assert_eq!(
            SnapshotReader::parse(&clean).unwrap().version(),
            SNAPSHOT_VERSION
        );

        let reversion = |v: u8| {
            let mut bytes = clean.clone();
            bytes[8] = v;
            let n = bytes.len();
            let seal = crc32(&bytes[..n - 4]);
            bytes[n - 4..].copy_from_slice(&seal.to_le_bytes());
            bytes
        };
        // The immediately previous version (3) is still readable.
        let v3 = SnapshotReader::parse(&reversion(3)).unwrap();
        assert_eq!(v3.version(), 3);
        assert_eq!(v3.section("data").unwrap(), b"legacy");
        // Anything older than MIN_SNAPSHOT_VERSION is not.
        assert!(matches!(
            SnapshotReader::parse(&reversion(2)),
            Err(StorageError::UnsupportedVersion { found: 2, .. })
        ));
    }
}
