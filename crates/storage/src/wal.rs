//! The streaming-ingest write-ahead log.
//!
//! A serving engine that accepts new trajectory points after open needs a
//! durability story that survives a crash mid-append: the in-memory delta
//! postings are rebuilt by *replaying* this log, so the log — not the delta
//! heap — is the source of truth for everything ingested since the last
//! snapshot.
//!
//! # Format
//!
//! ```text
//! [magic "STRWAL\0\0" : 8 bytes]
//! [format version     : u32 LE]
//! [generation         : u64 LE]
//! per record:
//!     [payload length : u32 LE]
//!     [CRC-32         : u32 LE]   -- over the length bytes + payload
//!     [payload bytes]
//! ```
//!
//! Records are opaque byte blobs framed with a length and a CRC-32 seal.
//! There is no terminator: the log is append-only and a crash can leave a
//! torn frame at the tail. [`Wal::open`] recovers **deterministically**: it
//! scans frames from the start, stops at the first frame that is short or
//! fails its checksum, truncates the file back to the end of the last valid
//! frame and reports how many bytes were dropped. Re-opening an already
//! recovered log is a no-op, so recovery is idempotent.
//!
//! The **generation** counter ties a log to the snapshot it extends: an
//! engine snapshot records `(generation, records_applied)`, and replay on
//! attach skips the records the snapshot has already folded in. Rotating the
//! log ([`Wal::rotate`]) bumps the generation and starts an empty file, which
//! is what a successful incremental snapshot save does — records folded into
//! the snapshot never need replaying again.
//!
//! # Fault injection
//!
//! A log opened with [`Wal::open_with_controller`] consults the shared
//! [`FaultController`] script before every append, so the ingest
//! crash-recovery campaign can "kill" the process at any record ordinal:
//! [`AppendFault::TornAppend`] persists half a frame and poisons the handle
//! (the process is dead; only re-opening recovers), exactly what a power cut
//! mid-`write` leaves behind.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::fault::{AppendFault, FaultController};
use crate::pagestore::{StorageError, StorageResult};
use crate::snapshot::Crc32;

/// Magic bytes opening every write-ahead log.
pub const WAL_MAGIC: [u8; 8] = *b"STRWAL\0\0";

/// WAL format version written (and required) by this build.
pub const WAL_VERSION: u32 = 1;

/// Header length in bytes: magic + version + generation.
const HEADER_LEN: u64 = 8 + 4 + 8;

/// Frame header length in bytes: payload length + CRC-32.
const FRAME_HEADER_LEN: usize = 8;

/// What [`Wal::open`] found (and fixed) in an existing log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecovery {
    /// Generation of the opened log.
    pub generation: u64,
    /// Number of intact records recovered.
    pub records: u64,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

struct WalState {
    file: File,
    generation: u64,
    /// Number of valid records (the ordinal of the next append).
    records: u64,
    /// Byte offset of the end of the last valid record.
    tail: u64,
    /// Set when an append died mid-frame (injected torn append, or a real
    /// I/O error that could not be rewound): the handle refuses further
    /// appends and only a fresh [`Wal::open`] — which truncates the torn
    /// tail — recovers.
    poisoned: bool,
}

/// An append-only, CRC-framed write-ahead log.
pub struct Wal {
    path: PathBuf,
    controller: Option<FaultController>,
    state: Mutex<WalState>,
}

fn frame_crc(payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&(payload.len() as u32).to_le_bytes());
    crc.update(payload);
    crc.finalize()
}

/// Writes (and fsyncs) the log header — the single definition of its
/// layout, shared by creation and rotation.
fn write_header(file: &mut File, generation: u64) -> StorageResult<()> {
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    header.extend_from_slice(&generation.to_le_bytes());
    file.write_all(&header)?;
    file.sync_all()?;
    Ok(())
}

impl Wal {
    /// Opens (or creates) the log at `path`, recovering a torn tail, and
    /// returns the handle together with every intact record payload.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<(Self, Vec<Vec<u8>>, WalRecovery)> {
        Self::open_impl(path.as_ref(), None)
    }

    /// Like [`Wal::open`], but every append first consults the fault
    /// script shared through `controller` (see [`FaultController`]).
    pub fn open_with_controller<P: AsRef<Path>>(
        path: P,
        controller: FaultController,
    ) -> StorageResult<(Self, Vec<Vec<u8>>, WalRecovery)> {
        Self::open_impl(path.as_ref(), Some(controller))
    }

    fn open_impl(
        path: &Path,
        controller: Option<FaultController>,
    ) -> StorageResult<(Self, Vec<Vec<u8>>, WalRecovery)> {
        if !path.exists() {
            let wal = Self::create_at(path, 1, controller)?;
            let recovery = WalRecovery {
                generation: 1,
                records: 0,
                truncated_bytes: 0,
            };
            return Ok((wal, Vec::new(), recovery));
        }

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize {
            return Err(StorageError::corrupt(format!(
                "WAL {} shorter than its header",
                path.display()
            )));
        }
        if bytes[..8] != WAL_MAGIC {
            return Err(StorageError::corrupt(format!(
                "WAL {} has bad magic",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != WAL_VERSION {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                expected: WAL_VERSION,
            });
        }
        let generation = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));

        // Scan frames; the first short or checksum-failing frame marks the
        // torn tail. Everything before it is the consistent prefix.
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut offset = HEADER_LEN as usize;
        loop {
            let remaining = bytes.len() - offset;
            if remaining < FRAME_HEADER_LEN {
                break;
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 b"));
            if remaining - FRAME_HEADER_LEN < len {
                break; // torn payload
            }
            let payload = &bytes[offset + FRAME_HEADER_LEN..offset + FRAME_HEADER_LEN + len];
            if frame_crc(payload) != crc {
                break; // torn or corrupted frame
            }
            records.push(payload.to_vec());
            offset += FRAME_HEADER_LEN + len;
        }

        let tail = offset as u64;
        let truncated_bytes = bytes.len() as u64 - tail;
        if truncated_bytes > 0 {
            file.set_len(tail)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(tail))?;

        let recovery = WalRecovery {
            generation,
            records: records.len() as u64,
            truncated_bytes,
        };
        let wal = Self {
            path: path.to_path_buf(),
            controller,
            state: Mutex::new(WalState {
                file,
                generation,
                records: records.len() as u64,
                tail,
                poisoned: false,
            }),
        };
        Ok((wal, records, recovery))
    }

    fn create_at(
        path: &Path,
        generation: u64,
        controller: Option<FaultController>,
    ) -> StorageResult<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        write_header(&mut file, generation)?;
        Ok(Self {
            path: path.to_path_buf(),
            controller,
            state: Mutex::new(WalState {
                file,
                generation,
                records: 0,
                tail: HEADER_LEN,
                poisoned: false,
            }),
        })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Number of durable records in the log.
    pub fn records(&self) -> u64 {
        self.state.lock().records
    }

    /// Total bytes of the log file (header + frames).
    pub fn len_bytes(&self) -> u64 {
        self.state.lock().tail
    }

    /// Appends one record and returns its ordinal (0-based within the
    /// current generation). The append is all-or-nothing: on failure the
    /// file is rewound to the previous record boundary, except for an
    /// injected torn append (a simulated crash), which leaves the torn tail
    /// in place and poisons the handle.
    pub fn append(&self, payload: &[u8]) -> StorageResult<u64> {
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(StorageError::corrupt(format!(
                "WAL {} is poisoned by a failed append; re-open to recover",
                self.path.display()
            )));
        }
        let ordinal = state.records;

        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&frame_crc(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        if let Some(ctl) = &self.controller {
            match ctl.next_append_fault(ordinal) {
                None => {}
                Some(AppendFault::Eio) => {
                    return Err(StorageError::Io(std::io::Error::other(format!(
                        "injected EIO on WAL append #{ordinal} (fault seed {})",
                        ctl.seed()
                    ))));
                }
                Some(AppendFault::TornAppend) => {
                    // Simulated crash mid-write: half the frame reaches the
                    // disk, the process is gone. The handle is poisoned;
                    // recovery happens at the next open.
                    let tail = state.tail;
                    state.file.seek(SeekFrom::Start(tail))?;
                    state.file.write_all(&frame[..frame.len() / 2])?;
                    state.file.sync_all()?;
                    state.poisoned = true;
                    return Err(StorageError::Io(std::io::Error::other(format!(
                        "injected torn WAL append #{ordinal} (fault seed {})",
                        ctl.seed()
                    ))));
                }
            }
        }

        let tail = state.tail;
        let write = (|| -> StorageResult<()> {
            state.file.seek(SeekFrom::Start(tail))?;
            state.file.write_all(&frame)?;
            Ok(())
        })();
        match write {
            Ok(()) => {
                state.tail += frame.len() as u64;
                state.records += 1;
                Ok(ordinal)
            }
            Err(e) => {
                // Rewind the possibly partial frame; if even that fails the
                // handle is poisoned and only a re-open recovers.
                if state.file.set_len(tail).is_err() {
                    state.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Forces appended records down to durable storage (`fsync`).
    pub fn sync(&self) -> StorageResult<()> {
        let state = self.state.lock();
        state.file.sync_all()?;
        Ok(())
    }

    /// Starts a fresh, empty generation: a new log file with `generation +
    /// 1` is staged and atomically renamed over the current one. Called
    /// after an incremental snapshot save — every record of the old
    /// generation is folded into the snapshot and never needs replaying.
    /// Returns the new generation.
    pub fn rotate(&self) -> StorageResult<u64> {
        let mut state = self.state.lock();
        let next_gen = state.generation + 1;
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            write_header(&mut file, next_gen)?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // From here the on-disk log IS the new generation: if re-acquiring
        // a handle to it fails, the old handle must not keep accepting
        // appends — they would land (and fsync!) on the unlinked old inode
        // and silently vanish at the next open. Poison until re-opened.
        let reopen = (|| -> StorageResult<File> {
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            file.seek(SeekFrom::Start(HEADER_LEN))?;
            Ok(file)
        })();
        match reopen {
            Ok(file) => {
                state.file = file;
                state.generation = next_gen;
                state.records = 0;
                state.tail = HEADER_LEN;
                state.poisoned = false;
                Ok(next_gen)
            }
            Err(e) => {
                state.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ReadFault;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("streach-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_append_reopen_roundtrip() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, records, recovery) = Wal::open(&path).unwrap();
            assert!(records.is_empty());
            assert_eq!(recovery.generation, 1);
            assert_eq!(wal.append(b"alpha").unwrap(), 0);
            assert_eq!(wal.append(b"").unwrap(), 1);
            assert_eq!(wal.append(&[7u8; 5000]).unwrap(), 2);
            wal.sync().unwrap();
            assert_eq!(wal.records(), 3);
        }
        let (wal, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"alpha");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], vec![7u8; 5000]);
        assert_eq!(wal.generation(), 1);
        std::fs::remove_file(&path).ok();
    }

    /// Crash simulation: for every truncation point of the file — each
    /// record boundary and several mid-frame cuts — recovery must yield
    /// exactly the longest valid prefix and truncate the file back to it.
    #[test]
    fn recovery_truncates_torn_tail_at_every_cut() {
        let path = tmp("cuts.wal");
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 10 + i as usize * 37]).collect();
        let mut boundaries = vec![HEADER_LEN as usize];
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
                boundaries.push(wal.len_bytes() as usize);
            }
            wal.sync().unwrap();
        }
        let clean = std::fs::read(&path).unwrap();

        for cut in (HEADER_LEN as usize..=clean.len()).step_by(7).chain(
            boundaries.iter().copied().chain(
                boundaries
                    .iter()
                    .map(|b| b + 1)
                    .filter(|b| *b <= clean.len()),
            ),
        ) {
            let cut_path = tmp("cuts-case.wal");
            std::fs::write(&cut_path, &clean[..cut]).unwrap();
            let (wal, records, recovery) = Wal::open(&cut_path).unwrap();
            // The expected prefix: every record whose frame ends at or
            // before the cut.
            let expected = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(records.len(), expected, "cut at {cut}");
            assert_eq!(recovery.records, expected as u64, "cut at {cut}");
            assert_eq!(&records[..], &payloads[..expected], "cut at {cut}");
            // The file is truncated to the consistent prefix, so re-opening
            // reports no further truncation.
            assert_eq!(wal.len_bytes() as usize, boundaries[expected]);
            drop(wal);
            let (_, again, recovery2) = Wal::open(&cut_path).unwrap();
            assert_eq!(again.len(), expected, "cut at {cut}: recovery idempotent");
            assert_eq!(recovery2.truncated_bytes, 0, "cut at {cut}");
            std::fs::remove_file(&cut_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_bytes_cut_the_replay_prefix() {
        let path = tmp("bitrot.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(b"first-record").unwrap();
            wal.append(b"second-record").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the second record's payload.
        let n = bytes.len();
        bytes[n - 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "corrupt record must end the prefix");
        assert_eq!(records[0], b"first-record");
        assert!(recovery.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_and_versioned_files_are_rejected() {
        let path = tmp("foreign.wal");
        std::fs::write(&path, b"definitely not a wal header").unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        // A future version is rejected as unsupported, not misread.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::UnsupportedVersion { found: 99, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_bumps_generation_and_empties_the_log() {
        let path = tmp("rotate.wal");
        let _ = std::fs::remove_file(&path);
        let (wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"old-generation").unwrap();
        assert_eq!(wal.rotate().unwrap(), 2);
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.append(b"new-generation").unwrap(), 0);
        wal.sync().unwrap();
        drop(wal);
        let (_, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.generation, 2);
        assert_eq!(records, vec![b"new-generation".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_append_poisons_until_reopen() {
        let path = tmp("torn-append.wal");
        let _ = std::fs::remove_file(&path);
        let ctl = FaultController::detached(77);
        ctl.fail_append_at(1, AppendFault::TornAppend);
        let (wal, _, _) = Wal::open_with_controller(&path, ctl.clone()).unwrap();
        wal.append(b"survives").unwrap();
        let err = wal.append(b"dies-mid-write").unwrap_err();
        assert!(err.to_string().contains("torn WAL append"), "{err}");
        assert!(err.to_string().contains("seed 77"), "{err}");
        // The handle is dead — the "process" crashed.
        assert!(wal.append(b"after-crash").is_err());
        drop(wal);
        // Re-open: the torn frame is truncated away, the prefix survives.
        let (wal, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"survives".to_vec()]);
        assert!(recovery.truncated_bytes > 0, "torn tail must be dropped");
        assert_eq!(wal.append(b"back-in-business").unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_eio_append_is_retryable() {
        let path = tmp("eio-append.wal");
        let _ = std::fs::remove_file(&path);
        let ctl = FaultController::detached(5);
        ctl.fail_append_at(0, AppendFault::Eio);
        let (wal, _, _) = Wal::open_with_controller(&path, ctl.clone()).unwrap();
        let err = wal.append(b"rejected").unwrap_err();
        assert!(err.to_string().contains("injected EIO"), "{err}");
        // Nothing was written; the same payload appends cleanly afterwards.
        assert_eq!(wal.append(b"accepted").unwrap(), 0);
        drop(wal);
        let (_, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"accepted".to_vec()]);
        // Read-fault scripting on the same controller does not interfere.
        ctl.fail_read_at(0, ReadFault::Eio);
        std::fs::remove_file(&path).ok();
    }
}
