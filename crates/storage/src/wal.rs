//! The streaming-ingest write-ahead log.
//!
//! A serving engine that accepts new trajectory points after open needs a
//! durability story that survives a crash mid-append: the in-memory delta
//! postings are rebuilt by *replaying* this log, so the log — not the delta
//! heap — is the source of truth for everything ingested since the last
//! snapshot.
//!
//! # Format
//!
//! ```text
//! [magic "STRWAL\0\0" : 8 bytes]
//! [format version     : u32 LE]
//! [generation         : u64 LE]
//! [fence epoch        : u64 LE]   -- v2; a v1 log reads as epoch 0
//! per record:
//!     [payload length : u32 LE]
//!     [CRC-32         : u32 LE]   -- over the length bytes + payload
//!     [payload bytes]
//! ```
//!
//! Records are opaque byte blobs framed with a length and a CRC-32 seal.
//! (The ingest layer packs its trajectory-point batches into these blobs
//! with the same canonical LEB128 varints as the compressed posting
//! encoding — see [`crate::put_varint_u32`] — so frame payloads shrink with
//! the rest of the cold path; the framing itself is format-agnostic.)
//! There is no terminator: the log is append-only and a crash can leave a
//! torn frame at the tail. [`Wal::open`] recovers **deterministically**: it
//! scans frames from the start, stops at the first frame that is short or
//! fails its checksum, truncates the file back to the end of the last valid
//! frame and reports how many bytes were dropped. Re-opening an already
//! recovered log is a no-op, so recovery is idempotent.
//!
//! The **generation** counter ties a log to the snapshot it extends: an
//! engine snapshot records `(generation, records_applied)`, and replay on
//! attach skips the records the snapshot has already folded in. Rotating the
//! log ([`Wal::rotate`]) bumps the generation and starts an empty file, which
//! is what a successful incremental snapshot save does — records folded into
//! the snapshot never need replaying again. [`Wal::rotate_if_applied`] is
//! the race-free variant a concurrent engine uses: the "is every record
//! folded in?" check and the rotation happen under one lock, so an append
//! that slips in between can never be silently discarded.
//!
//! # Fencing
//!
//! The **fence epoch** guards failover: every log carries the epoch it was
//! written under, and promoting a replica bumps the epoch and persists it
//! with the promoted log ([`FollowerLog::set_epoch`]). Fencing the deposed
//! leader's handle ([`Wal::fence`]) raises its admitted minimum: any later
//! [`Wal::append`] or [`Wal::sync`] on the stale-epoch handle fails with a
//! typed [`StorageError::Fenced`] *before* a byte lands or an ack is
//! possible — a partitioned-but-alive old leader rejects writes loudly
//! instead of silently diverging from the promoted fleet. Rotation
//! preserves the epoch; only promotion moves it.
//!
//! # Group commit
//!
//! [`Wal::sync`] implements **group commit**: one caller becomes the fsync
//! leader while later callers wait; a single physical `fsync` covers every
//! frame appended before it started, so N concurrent writers pay ~1 fsync
//! instead of N. Appends keep landing *while* the leader's fsync is in
//! flight (the file handle is cloned out of the lock), which is where the
//! batching comes from. A failed fsync fails the **whole group** — the
//! leader and every waiter whose frames the attempt covered — so callers
//! can freeze their applied prefix for every record in the group; frames
//! appended after the attempt's snapshot contend for a fresh fsync instead
//! of inheriting an error that never touched their bytes.
//!
//! # Fault injection
//!
//! A log opened with [`Wal::open_with_controller`] consults the shared
//! [`FaultController`] script before every append, so the ingest
//! crash-recovery campaign can "kill" the process at any record ordinal:
//! [`AppendFault::TornAppend`] persists half a frame and poisons the handle
//! (the process is dead; only re-opening recovers), exactly what a power cut
//! mid-`write` leaves behind.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::fault::{AppendFault, FaultController};
use crate::pagestore::{StorageError, StorageResult};
use crate::snapshot::Crc32;

/// Magic bytes opening every write-ahead log.
pub const WAL_MAGIC: [u8; 8] = *b"STRWAL\0\0";

/// WAL format version written by this build (v1 logs still open: they
/// predate the fence epoch and read as epoch 0).
pub const WAL_VERSION: u32 = 2;

/// Header length in bytes: magic + version + generation + fence epoch.
const HEADER_LEN: u64 = 8 + 4 + 8 + 8;

/// Header length of a v1 log (no fence epoch).
const HEADER_LEN_V1: u64 = 8 + 4 + 8;

/// Frame header length in bytes: payload length + CRC-32.
const FRAME_HEADER_LEN: usize = 8;

/// Header length for a given format version.
fn header_len(version: u32) -> u64 {
    if version >= 2 {
        HEADER_LEN
    } else {
        HEADER_LEN_V1
    }
}

/// Parsed log header: `(version, generation, epoch, header length)`.
/// Returns `Ok(None)` when `bytes` is shorter than the version's header
/// (still being written); typed errors on bad magic or a future version.
fn parse_header(bytes: &[u8], path: &Path) -> StorageResult<Option<(u32, u64, u64, u64)>> {
    if bytes.len() < HEADER_LEN_V1 as usize {
        return Ok(None);
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(StorageError::corrupt(format!(
            "WAL {} has bad magic",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > WAL_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            expected: WAL_VERSION,
        });
    }
    let len = header_len(version);
    if bytes.len() < len as usize {
        return Ok(None);
    }
    let generation = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let epoch = if version >= 2 {
        u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"))
    } else {
        0
    };
    Ok(Some((version, generation, epoch, len)))
}

/// What [`Wal::open`] found (and fixed) in an existing log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecovery {
    /// Generation of the opened log.
    pub generation: u64,
    /// Fence epoch of the opened log (0 for a v1-era log).
    pub epoch: u64,
    /// Number of intact records recovered.
    pub records: u64,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

struct WalState {
    file: File,
    generation: u64,
    /// Byte length of the on-disk header (a v1-era log keeps its 20-byte
    /// header until the first rotation rewrites it as v2).
    header_len: u64,
    /// Number of valid records (the ordinal of the next append).
    records: u64,
    /// Byte offset of the end of the last valid record.
    tail: u64,
    /// Set when an append died mid-frame (injected torn append, or a real
    /// I/O error that could not be rewound): the handle refuses further
    /// appends and only a fresh [`Wal::open`] — which truncates the torn
    /// tail — recovers.
    poisoned: bool,
}

/// Group-commit bookkeeping: how far the file is provably durable, and
/// whether an fsync is currently in flight. Guarded by a `std` mutex so
/// waiters can block on the condition variable.
struct SyncState {
    /// Generation the durability watermark belongs to (rotation resets it).
    generation: u64,
    /// Byte offset up to which the current generation is fsynced.
    synced_tail: u64,
    /// An fsync leader is currently running; later callers wait and are
    /// covered by (or fail with) its outcome.
    in_flight: bool,
    /// Count of failed fsync attempts — waiters compare it against the
    /// value at wait entry to learn an fsync failed while they waited.
    failures: u64,
    /// (generation, tail) the most recent failed attempt would have
    /// covered: only waiters whose frames fall inside it are in the failed
    /// group; later appenders contend for a fresh fsync instead of
    /// inheriting an error that never touched their bytes.
    failed_generation: u64,
    failed_tail: u64,
    /// Message of the most recent fsync failure, surfaced to waiters.
    last_error: String,
}

/// An append-only, CRC-framed write-ahead log.
pub struct Wal {
    path: PathBuf,
    controller: Option<FaultController>,
    /// Fence epoch stamped in this log's header — fixed for the handle's
    /// lifetime (rotation preserves it; only a promotion, which writes a
    /// new log, moves it).
    epoch: u64,
    /// Minimum epoch the fence admits. Raised by [`Wal::fence`] when a
    /// replica is promoted past this handle; once `epoch < fence`, every
    /// append and sync fails typed before acking anything.
    fence: AtomicU64,
    state: Mutex<WalState>,
    sync_state: std::sync::Mutex<SyncState>,
    sync_cv: std::sync::Condvar,
}

fn lock_sync(wal: &Wal) -> std::sync::MutexGuard<'_, SyncState> {
    wal.sync_state.lock().unwrap_or_else(|e| e.into_inner())
}

fn frame_crc(payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&(payload.len() as u32).to_le_bytes());
    crc.update(payload);
    crc.finalize()
}

/// Writes (and fsyncs) the log header — the single definition of its
/// layout, shared by creation, rotation and epoch persistence.
fn write_header(file: &mut File, generation: u64, epoch: u64) -> StorageResult<()> {
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&epoch.to_le_bytes());
    file.write_all(&header)?;
    file.sync_all()?;
    Ok(())
}

impl Wal {
    /// Opens (or creates) the log at `path`, recovering a torn tail, and
    /// returns the handle together with every intact record payload.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<(Self, Vec<Vec<u8>>, WalRecovery)> {
        Self::open_impl(path.as_ref(), None)
    }

    /// Like [`Wal::open`], but every append first consults the fault
    /// script shared through `controller` (see [`FaultController`]).
    pub fn open_with_controller<P: AsRef<Path>>(
        path: P,
        controller: FaultController,
    ) -> StorageResult<(Self, Vec<Vec<u8>>, WalRecovery)> {
        Self::open_impl(path.as_ref(), Some(controller))
    }

    fn open_impl(
        path: &Path,
        controller: Option<FaultController>,
    ) -> StorageResult<(Self, Vec<Vec<u8>>, WalRecovery)> {
        if !path.exists() {
            let wal = Self::create_at(path, 1, 0, controller)?;
            let recovery = WalRecovery {
                generation: 1,
                epoch: 0,
                records: 0,
                truncated_bytes: 0,
            };
            return Ok((wal, Vec::new(), recovery));
        }

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (_, generation, epoch, hdr_len) = parse_header(&bytes, path)?.ok_or_else(|| {
            StorageError::corrupt(format!("WAL {} shorter than its header", path.display()))
        })?;

        // Scan frames; the first short or checksum-failing frame marks the
        // torn tail. Everything before it is the consistent prefix.
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut offset = hdr_len as usize;
        loop {
            let remaining = bytes.len() - offset;
            if remaining < FRAME_HEADER_LEN {
                break;
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 b"));
            if remaining - FRAME_HEADER_LEN < len {
                break; // torn payload
            }
            let payload = &bytes[offset + FRAME_HEADER_LEN..offset + FRAME_HEADER_LEN + len];
            if frame_crc(payload) != crc {
                break; // torn or corrupted frame
            }
            records.push(payload.to_vec());
            offset += FRAME_HEADER_LEN + len;
        }

        let tail = offset as u64;
        let truncated_bytes = bytes.len() as u64 - tail;
        if truncated_bytes > 0 {
            file.set_len(tail)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(tail))?;

        let recovery = WalRecovery {
            generation,
            epoch,
            records: records.len() as u64,
            truncated_bytes,
        };
        let wal = Self {
            path: path.to_path_buf(),
            controller,
            epoch,
            fence: AtomicU64::new(0),
            state: Mutex::new(WalState {
                file,
                generation,
                header_len: hdr_len,
                records: records.len() as u64,
                tail,
                poisoned: false,
            }),
            // Conservative watermark: the recovered bytes survived on disk,
            // but nothing proves they were ever fsynced — the first `sync`
            // call after open pays one real fsync to cover them.
            sync_state: std::sync::Mutex::new(SyncState {
                generation,
                synced_tail: hdr_len,
                in_flight: false,
                failures: 0,
                failed_generation: 0,
                failed_tail: 0,
                last_error: String::new(),
            }),
            sync_cv: std::sync::Condvar::new(),
        };
        Ok((wal, records, recovery))
    }

    fn create_at(
        path: &Path,
        generation: u64,
        epoch: u64,
        controller: Option<FaultController>,
    ) -> StorageResult<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        write_header(&mut file, generation, epoch)?;
        Ok(Self {
            path: path.to_path_buf(),
            controller,
            epoch,
            fence: AtomicU64::new(0),
            state: Mutex::new(WalState {
                file,
                generation,
                header_len: HEADER_LEN,
                records: 0,
                tail: HEADER_LEN,
                poisoned: false,
            }),
            sync_state: std::sync::Mutex::new(SyncState {
                generation,
                synced_tail: HEADER_LEN,
                in_flight: false,
                failures: 0,
                failed_generation: 0,
                failed_tail: 0,
                last_error: String::new(),
            }),
            sync_cv: std::sync::Condvar::new(),
        })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// The fence epoch stamped in this log's header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fences this handle against epochs below `min_epoch`: once the
    /// handle's own epoch falls below the fence, every [`Wal::append`] and
    /// [`Wal::sync`] fails with [`StorageError::Fenced`] before anything is
    /// written or acked. Called on a deposed leader's WAL when a replica is
    /// promoted past it; the fence only ratchets forward.
    pub fn fence(&self, min_epoch: u64) {
        self.fence.fetch_max(min_epoch, Ordering::SeqCst);
    }

    /// Typed rejection when this handle's epoch fell behind the fence.
    fn check_fence(&self) -> StorageResult<()> {
        let required = self.fence.load(Ordering::SeqCst);
        if self.epoch < required {
            return Err(StorageError::Fenced {
                epoch: self.epoch,
                required,
            });
        }
        Ok(())
    }

    /// Number of durable records in the log.
    pub fn records(&self) -> u64 {
        self.state.lock().records
    }

    /// Total bytes of the log file (header + frames).
    pub fn len_bytes(&self) -> u64 {
        self.state.lock().tail
    }

    /// Appends one record and returns its ordinal (0-based within the
    /// current generation). The append is all-or-nothing: on failure the
    /// file is rewound to the previous record boundary, except for an
    /// injected torn append (a simulated crash), which leaves the torn tail
    /// in place and poisons the handle.
    pub fn append(&self, payload: &[u8]) -> StorageResult<u64> {
        self.check_fence()?;
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(StorageError::corrupt(format!(
                "WAL {} is poisoned by a failed append; re-open to recover",
                self.path.display()
            )));
        }
        let ordinal = state.records;

        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&frame_crc(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        if let Some(ctl) = &self.controller {
            match ctl.next_append_fault(ordinal) {
                None => {}
                Some(AppendFault::Eio) => {
                    return Err(StorageError::Io(std::io::Error::other(format!(
                        "injected EIO on WAL append #{ordinal} (fault seed {})",
                        ctl.seed()
                    ))));
                }
                Some(AppendFault::TornAppend) => {
                    // Simulated crash mid-write: half the frame reaches the
                    // disk, the process is gone. The handle is poisoned;
                    // recovery happens at the next open.
                    let tail = state.tail;
                    state.file.seek(SeekFrom::Start(tail))?;
                    state.file.write_all(&frame[..frame.len() / 2])?;
                    state.file.sync_all()?;
                    state.poisoned = true;
                    return Err(StorageError::Io(std::io::Error::other(format!(
                        "injected torn WAL append #{ordinal} (fault seed {})",
                        ctl.seed()
                    ))));
                }
            }
        }

        let tail = state.tail;
        let write = (|| -> StorageResult<()> {
            state.file.seek(SeekFrom::Start(tail))?;
            state.file.write_all(&frame)?;
            Ok(())
        })();
        match write {
            Ok(()) => {
                state.tail += frame.len() as u64;
                state.records += 1;
                Ok(ordinal)
            }
            Err(e) => {
                // Rewind the possibly partial frame; if even that fails the
                // handle is poisoned and only a re-open recovers.
                if state.file.set_len(tail).is_err() {
                    state.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Forces appended records down to durable storage — with **group
    /// commit**: concurrent callers share one physical `fsync`.
    ///
    /// The call returns `Ok` once every byte appended *before this call*
    /// is durable, whether this caller ran the fsync itself (the leader)
    /// or was covered by another caller's. A failed fsync fails exactly
    /// the callers it covered: the leader returns the backend error, and
    /// each waiter whose frames fell inside the failed attempt gets an
    /// error naming the group failure — so callers can freeze their
    /// applied prefix for the whole group. A caller whose frames landed
    /// *after* the failed attempt's snapshot was never fsynced at all; it
    /// contends for a fresh fsync instead of inheriting the error.
    pub fn sync(&self) -> StorageResult<()> {
        // A deposed leader must not ack: the fence is checked before this
        // call can report any record durable.
        self.check_fence()?;
        // Everything appended before this call — in particular the
        // caller's own record — ends at or before this tail.
        let (generation, target) = {
            let state = self.state.lock();
            (state.generation, state.tail)
        };
        // Covered when the watermark passed the target — or when the whole
        // generation was rotated away, which only happens once every one of
        // its records is folded into a snapshot (or the caller explicitly
        // discarded it with `rotate`).
        let covered =
            |group: &SyncState| group.generation != generation || group.synced_tail >= target;
        let mut group = lock_sync(self);
        loop {
            if covered(&group) {
                return Ok(());
            }
            if group.in_flight {
                let failures_at_entry = group.failures;
                group = self.sync_cv.wait(group).unwrap_or_else(|e| e.into_inner());
                if covered(&group) {
                    return Ok(());
                }
                if group.failures != failures_at_entry
                    && group.failed_generation == generation
                    && group.failed_tail >= target
                {
                    // The failed attempt covered our frames: we are part of
                    // the failed group. (A caller whose frames landed after
                    // the attempt's snapshot was never fsynced at all — it
                    // loops and contends for a fresh fsync instead.)
                    return Err(StorageError::Io(std::io::Error::other(format!(
                        "WAL group fsync failed for the batch containing this \
                         record: {}",
                        group.last_error
                    ))));
                }
                continue;
            }
            // Become the leader: fsync once for every frame appended so
            // far. The file handle is cloned out of the lock so concurrent
            // appends keep landing while the fsync runs — they form the
            // next group. The (generation, tail) snapshot is taken before
            // the fsync, so success never overstates coverage and failure
            // blames exactly the frames the attempt covered.
            group.in_flight = true;
            drop(group);
            let (clone_result, fsync_generation, fsync_tail) = {
                let state = self.state.lock();
                (state.file.try_clone(), state.generation, state.tail)
            };
            let result = clone_result.map_err(StorageError::from).and_then(|file| {
                if let Some(ctl) = &self.controller {
                    if let Some(ordinal) = ctl.next_sync_fault() {
                        return Err(StorageError::Io(std::io::Error::other(format!(
                            "injected EIO on WAL fsync #{ordinal} (fault seed {})",
                            ctl.seed()
                        ))));
                    }
                }
                file.sync_all()?;
                Ok(())
            });
            group = lock_sync(self);
            group.in_flight = false;
            match result {
                Ok(()) => {
                    if fsync_generation > group.generation {
                        group.generation = fsync_generation;
                        group.synced_tail = fsync_tail;
                    } else if fsync_generation == group.generation && fsync_tail > group.synced_tail
                    {
                        group.synced_tail = fsync_tail;
                    }
                    // (A stale fsync of a rotated-away generation updates
                    // nothing; the loop re-checks coverage either way.)
                    self.sync_cv.notify_all();
                }
                Err(e) => {
                    group.failures += 1;
                    group.failed_generation = fsync_generation;
                    group.failed_tail = fsync_tail;
                    group.last_error = e.to_string();
                    self.sync_cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Starts a fresh, empty generation: a new log file with `generation +
    /// 1` is staged and atomically renamed over the current one. Called
    /// after an incremental snapshot save — every record of the old
    /// generation is folded into the snapshot and never needs replaying.
    /// Returns the new generation.
    pub fn rotate(&self) -> StorageResult<u64> {
        let mut state = self.state.lock();
        self.rotate_locked(&mut state)
    }

    /// Rotates **only if** the log still holds exactly `applied_records`
    /// records — the check and the rotation are atomic under the state
    /// lock, so a record appended concurrently by another ingest caller
    /// can never be discarded by a checkpoint that raced it. Returns the
    /// new generation, or `None` when the log moved on (or is poisoned)
    /// and rotation was skipped.
    pub fn rotate_if_applied(&self, applied_records: u64) -> StorageResult<Option<u64>> {
        let mut state = self.state.lock();
        if state.poisoned || state.records != applied_records {
            return Ok(None);
        }
        self.rotate_locked(&mut state).map(Some)
    }

    fn rotate_locked(&self, state: &mut WalState) -> StorageResult<u64> {
        self.check_fence()?;
        let next_gen = state.generation + 1;
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            write_header(&mut file, next_gen, self.epoch)?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // From here the on-disk log IS the new generation: if re-acquiring
        // a handle to it fails, the old handle must not keep accepting
        // appends — they would land (and fsync!) on the unlinked old inode
        // and silently vanish at the next open. Poison until re-opened.
        let reopen = (|| -> StorageResult<File> {
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            file.seek(SeekFrom::Start(HEADER_LEN))?;
            Ok(file)
        })();
        match reopen {
            Ok(file) => {
                state.file = file;
                state.generation = next_gen;
                state.header_len = HEADER_LEN;
                state.records = 0;
                state.tail = HEADER_LEN;
                state.poisoned = false;
                // The staged header was fsynced before the rename: the new
                // generation starts durable up to its header.
                let mut group = lock_sync(self);
                group.generation = next_gen;
                group.synced_tail = HEADER_LEN;
                self.sync_cv.notify_all();
                Ok(next_gen)
            }
            Err(e) => {
                state.poisoned = true;
                Err(e)
            }
        }
    }
}

/// One batch of intact records a [`WalTail`] found past its cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedBatch {
    /// Generation of the log the records belong to.
    pub generation: u64,
    /// Fence epoch of the log the records were read from — a follower
    /// rejects batches from an epoch below its own (a deposed leader still
    /// shipping) and adopts a higher one (the fleet was promoted).
    pub epoch: u64,
    /// Ordinal of the first record in `payloads` within that generation.
    pub start_record: u64,
    /// The decoded record payloads, in ordinal order (CRC-verified).
    pub payloads: Vec<Vec<u8>>,
    /// The raw frame bytes of exactly those records — header and payload
    /// as they appear on disk, ready to be appended verbatim to a
    /// byte-compatible [`FollowerLog`].
    pub frames: Vec<u8>,
}

/// A polling reader over a (possibly live) WAL file — the shipping half of
/// leader→replica replication.
///
/// The tail keeps a `(generation, record, byte offset)` cursor and re-reads
/// the file on every [`WalTail::poll`]: new intact frames past the cursor
/// are returned as a [`ShippedBatch`], a torn frame at the end (an append
/// in flight) is simply left for the next poll, and a **generation change**
/// (the leader rotated after a checkpoint) resets the cursor to the start
/// of the new generation. Reading never takes any of the leader's locks —
/// the log format is append-only and CRC-framed, so a concurrent append can
/// at worst look like a torn tail.
pub struct WalTail {
    path: PathBuf,
    generation: u64,
    records: u64,
    offset: u64,
}

impl WalTail {
    /// Starts a tail at the beginning of the log at `path`. The file does
    /// not have to exist yet — the first successful poll latches onto it.
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
            generation: 0,
            records: 0,
            offset: HEADER_LEN,
        }
    }

    /// The log file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cursor position: (generation, records consumed).
    pub fn position(&self) -> (u64, u64) {
        (self.generation, self.records)
    }

    /// Reads every intact record past the cursor. Returns `Ok(None)` when
    /// the file does not exist yet or holds nothing new; `Err` on a
    /// malformed header (shipping from a non-WAL file is a setup bug, not
    /// an idle condition).
    pub fn poll(&mut self) -> StorageResult<Option<ShippedBatch>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let Some((_, generation, epoch, hdr_len)) = parse_header(&bytes, &self.path)? else {
            return Ok(None); // header still being written
        };
        if generation != self.generation {
            // The leader rotated (or this is the first poll): everything in
            // the file belongs to the new generation, starting at record 0.
            self.generation = generation;
            self.records = 0;
            self.offset = hdr_len;
        }

        let mut payloads: Vec<Vec<u8>> = Vec::new();
        let start_offset = self.offset as usize;
        let mut offset = start_offset;
        if offset > bytes.len() {
            // The file shrank without a generation bump — cannot happen
            // through the Wal API (truncation only at open/rotate, both
            // re-header); treat it as corruption rather than re-shipping.
            return Err(StorageError::corrupt(format!(
                "shipped WAL {} shrank below the cursor",
                self.path.display()
            )));
        }
        loop {
            let remaining = bytes.len() - offset;
            if remaining < FRAME_HEADER_LEN {
                break;
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 b"));
            if remaining - FRAME_HEADER_LEN < len {
                break; // append in flight
            }
            let payload = &bytes[offset + FRAME_HEADER_LEN..offset + FRAME_HEADER_LEN + len];
            if frame_crc(payload) != crc {
                break; // torn frame; re-examine next poll
            }
            payloads.push(payload.to_vec());
            offset += FRAME_HEADER_LEN + len;
        }
        if payloads.is_empty() {
            return Ok(None);
        }
        let batch = ShippedBatch {
            generation: self.generation,
            epoch,
            start_record: self.records,
            frames: bytes[start_offset..offset].to_vec(),
            payloads,
        };
        self.records += batch.payloads.len() as u64;
        self.offset = offset as u64;
        Ok(Some(batch))
    }
}

/// A byte-compatible local copy of a leader's WAL, maintained by a replica
/// from shipped frames.
///
/// The file is a real WAL — same header, same frames — so a failover
/// promotion simply attaches it with the ordinary `attach_wal` path: replay
/// skips everything the replica already applied and the promoted engine
/// keeps appending to the very same log.
pub struct FollowerLog {
    path: PathBuf,
    file: File,
    generation: u64,
    epoch: u64,
    records: u64,
    /// Byte offset of the end of the last intact frame — appends rewind to
    /// it on failure so a faulted write never leaves a torn suffix that a
    /// later append would bury.
    tail: u64,
}

impl FollowerLog {
    /// Creates (truncating any previous content) a follower log at `path`
    /// for `generation`, at epoch 0. The log adopts the leader's fence
    /// epoch from the first shipped batch ([`FollowerLog::append_shipped`]).
    pub fn create<P: AsRef<Path>>(path: P, generation: u64) -> StorageResult<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        write_header(&mut file, generation, 0)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            generation,
            epoch: 0,
            records: 0,
            tail: HEADER_LEN,
        })
    }

    /// The log's file path (hand this to `attach_wal` on promotion).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The generation the log currently mirrors.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fence epoch persisted in the log's header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shipped records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Persists a raised fence epoch into the log's header in place (the
    /// v2 header has a fixed length, so the frames after it are untouched).
    /// This is the promotion step that makes the bumped epoch durable:
    /// attaching the log afterwards yields a WAL whose stamped epoch
    /// outranks every pre-promotion leader. Lowering the epoch is refused —
    /// fences only ratchet forward.
    pub fn set_epoch(&mut self, epoch: u64) -> StorageResult<()> {
        if epoch < self.epoch {
            return Err(StorageError::Fenced {
                epoch,
                required: self.epoch,
            });
        }
        if epoch == self.epoch {
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(0))?;
        write_header(&mut self.file, self.generation, epoch)?;
        self.epoch = epoch;
        Ok(())
    }

    /// Appends a shipped batch's raw frames verbatim and fsyncs. Rejects a
    /// batch from another generation or out of sequence — the caller must
    /// [`FollowerLog::reset`] on a generation change — and, **typed**, a
    /// batch from a fence epoch below the log's own: that is a deposed
    /// leader still shipping after a promotion. A batch from a higher epoch
    /// adopts it (persisted before the frames land).
    pub fn append_shipped(&mut self, batch: &ShippedBatch) -> StorageResult<()> {
        if batch.epoch < self.epoch {
            return Err(StorageError::Fenced {
                epoch: batch.epoch,
                required: self.epoch,
            });
        }
        if batch.generation != self.generation {
            return Err(StorageError::corrupt(format!(
                "shipped batch of generation {} cannot extend follower log of \
                 generation {}",
                batch.generation, self.generation
            )));
        }
        if batch.start_record != self.records {
            return Err(StorageError::corrupt(format!(
                "shipped batch starts at record {} but the follower log holds {}",
                batch.start_record, self.records
            )));
        }
        if batch.epoch > self.epoch {
            self.set_epoch(batch.epoch)?;
        }
        let tail = self.tail;
        let write = (|| -> StorageResult<()> {
            self.file.seek(SeekFrom::Start(tail))?;
            self.file.write_all(&batch.frames)?;
            self.file.sync_all()?;
            Ok(())
        })();
        match write {
            Ok(()) => {
                self.tail += batch.frames.len() as u64;
                self.records += batch.payloads.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Rewind the possibly partial frames; a torn suffix left in
                // place would corrupt every later append.
                let _ = self.file.set_len(tail);
                Err(e)
            }
        }
    }

    /// Discards the mirrored content and starts over at `generation` — the
    /// follower's reaction to a leader rotation (the records of the old
    /// generation are covered by the leader's checkpoint). The fence epoch
    /// is preserved: rotation never lowers a fence.
    pub fn reset(&mut self, generation: u64) -> StorageResult<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        write_header(&mut self.file, generation, self.epoch)?;
        self.generation = generation;
        self.records = 0;
        self.tail = HEADER_LEN;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ReadFault;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("streach-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_append_reopen_roundtrip() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, records, recovery) = Wal::open(&path).unwrap();
            assert!(records.is_empty());
            assert_eq!(recovery.generation, 1);
            assert_eq!(wal.append(b"alpha").unwrap(), 0);
            assert_eq!(wal.append(b"").unwrap(), 1);
            assert_eq!(wal.append(&[7u8; 5000]).unwrap(), 2);
            wal.sync().unwrap();
            assert_eq!(wal.records(), 3);
        }
        let (wal, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"alpha");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], vec![7u8; 5000]);
        assert_eq!(wal.generation(), 1);
        std::fs::remove_file(&path).ok();
    }

    /// Crash simulation: for every truncation point of the file — each
    /// record boundary and several mid-frame cuts — recovery must yield
    /// exactly the longest valid prefix and truncate the file back to it.
    #[test]
    fn recovery_truncates_torn_tail_at_every_cut() {
        let path = tmp("cuts.wal");
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 10 + i as usize * 37]).collect();
        let mut boundaries = vec![HEADER_LEN as usize];
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
                boundaries.push(wal.len_bytes() as usize);
            }
            wal.sync().unwrap();
        }
        let clean = std::fs::read(&path).unwrap();

        for cut in (HEADER_LEN as usize..=clean.len()).step_by(7).chain(
            boundaries.iter().copied().chain(
                boundaries
                    .iter()
                    .map(|b| b + 1)
                    .filter(|b| *b <= clean.len()),
            ),
        ) {
            let cut_path = tmp("cuts-case.wal");
            std::fs::write(&cut_path, &clean[..cut]).unwrap();
            let (wal, records, recovery) = Wal::open(&cut_path).unwrap();
            // The expected prefix: every record whose frame ends at or
            // before the cut.
            let expected = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(records.len(), expected, "cut at {cut}");
            assert_eq!(recovery.records, expected as u64, "cut at {cut}");
            assert_eq!(&records[..], &payloads[..expected], "cut at {cut}");
            // The file is truncated to the consistent prefix, so re-opening
            // reports no further truncation.
            assert_eq!(wal.len_bytes() as usize, boundaries[expected]);
            drop(wal);
            let (_, again, recovery2) = Wal::open(&cut_path).unwrap();
            assert_eq!(again.len(), expected, "cut at {cut}: recovery idempotent");
            assert_eq!(recovery2.truncated_bytes, 0, "cut at {cut}");
            std::fs::remove_file(&cut_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_bytes_cut_the_replay_prefix() {
        let path = tmp("bitrot.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(b"first-record").unwrap();
            wal.append(b"second-record").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the second record's payload.
        let n = bytes.len();
        bytes[n - 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "corrupt record must end the prefix");
        assert_eq!(records[0], b"first-record");
        assert!(recovery.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_and_versioned_files_are_rejected() {
        let path = tmp("foreign.wal");
        std::fs::write(&path, b"definitely not a wal header").unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        // A future version is rejected as unsupported, not misread.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::UnsupportedVersion { found: 99, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    /// A v1-era log (20-byte header, no fence epoch) still opens: its
    /// records replay, it reads as epoch 0, appends extend it in place, and
    /// the first rotation rewrites it as v2.
    #[test]
    fn v1_logs_open_as_epoch_zero_and_upgrade_on_rotation() {
        let path = tmp("v1-compat.wal");
        let _ = std::fs::remove_file(&path);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&7u64.to_le_bytes());
        let payload = b"v1-era-record";
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&frame_crc(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(&path, &bytes).unwrap();

        let (wal, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![payload.to_vec()]);
        assert_eq!(recovery.generation, 7);
        assert_eq!(recovery.epoch, 0);
        assert_eq!(wal.epoch(), 0);
        assert_eq!(wal.append(b"appended-after-upgrade").unwrap(), 1);
        wal.sync().unwrap();

        // A tail latches onto the v1 layout too.
        let mut tail = WalTail::new(&path);
        let batch = tail.poll().unwrap().expect("records past v1 header");
        assert_eq!(batch.epoch, 0);
        assert_eq!(batch.payloads.len(), 2);

        // Rotation rewrites the header as v2 (same epoch).
        assert_eq!(wal.rotate().unwrap(), 8);
        drop(wal);
        let (wal, _, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.generation, 8);
        assert_eq!(recovery.epoch, 0);
        assert_eq!(wal.generation(), 8);
        std::fs::remove_file(&path).ok();
    }

    /// Fencing: raising the fence past the handle's epoch fails append,
    /// sync and rotation with the typed error — before anything is written
    /// or acked — and the error is not transient.
    #[test]
    fn fenced_wal_rejects_append_sync_and_rotate_typed() {
        let path = tmp("fence.wal");
        let _ = std::fs::remove_file(&path);
        let (wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"pre-fence").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.epoch(), 0);

        wal.fence(1);
        let err = wal.append(b"post-fence").unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::Fenced {
                    epoch: 0,
                    required: 1
                }
            ),
            "{err}"
        );
        assert!(!err.is_transient(), "a fence never heals by retrying");
        assert!(matches!(wal.sync(), Err(StorageError::Fenced { .. })));
        assert!(matches!(wal.rotate(), Err(StorageError::Fenced { .. })));
        // Fences only ratchet forward: a lower fence does not unfence.
        wal.fence(0);
        assert!(matches!(
            wal.append(b"still-fenced"),
            Err(StorageError::Fenced { .. })
        ));
        drop(wal);
        // Nothing past the pre-fence record ever landed.
        let (_, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"pre-fence".to_vec()]);
        assert_eq!(recovery.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    /// A follower log adopts a higher shipped epoch (persisted in its
    /// header), refuses a lower one typed, and `set_epoch` + reopen yields
    /// a WAL stamped with the promoted epoch — with its frames intact.
    #[test]
    fn follower_log_adopts_and_enforces_epochs() {
        let leader_path = tmp("epoch-leader.wal");
        let follower_path = tmp("epoch-follower.wal");
        let _ = std::fs::remove_file(&leader_path);
        let _ = std::fs::remove_file(&follower_path);
        let (wal, _, _) = Wal::open(&leader_path).unwrap();
        wal.append(b"record-zero").unwrap();
        wal.sync().unwrap();
        let mut tail = WalTail::new(&leader_path);
        let batch = tail.poll().unwrap().expect("one record");

        let mut log = FollowerLog::create(&follower_path, 1).unwrap();
        // Shipped batches carry the leader's epoch; the fresh log adopts it.
        let mut promoted = batch.clone();
        promoted.epoch = 3;
        log.append_shipped(&promoted).unwrap();
        assert_eq!(log.epoch(), 3);
        // A batch from a lower epoch is a deposed leader: typed rejection.
        let stale = batch.clone();
        assert!(matches!(
            log.append_shipped(&stale),
            Err(StorageError::Fenced {
                epoch: 0,
                required: 3
            })
        ));
        // Promotion bumps further and persists; reset keeps the epoch.
        log.set_epoch(4).unwrap();
        assert!(matches!(log.set_epoch(3), Err(StorageError::Fenced { .. })));
        drop(log);
        let (wal, records, recovery) = Wal::open(&follower_path).unwrap();
        assert_eq!(recovery.epoch, 4);
        assert_eq!(wal.epoch(), 4);
        assert_eq!(records, vec![b"record-zero".to_vec()]);
        std::fs::remove_file(&leader_path).ok();
        std::fs::remove_file(&follower_path).ok();
    }

    #[test]
    fn rotation_bumps_generation_and_empties_the_log() {
        let path = tmp("rotate.wal");
        let _ = std::fs::remove_file(&path);
        let (wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"old-generation").unwrap();
        assert_eq!(wal.rotate().unwrap(), 2);
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.append(b"new-generation").unwrap(), 0);
        wal.sync().unwrap();
        drop(wal);
        let (_, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.generation, 2);
        assert_eq!(records, vec![b"new-generation".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    /// Group commit: concurrent appenders each call `sync` and every record
    /// must be durable afterwards — one fsync may cover many records, but
    /// never fewer than the caller's own.
    #[test]
    fn group_commit_covers_every_concurrent_append() {
        let path = tmp(&format!("group-{:?}.wal", std::thread::current().id()));
        let _ = std::fs::remove_file(&path);
        let (wal, _, _) = Wal::open(&path).unwrap();
        let writers = 8usize;
        let per_writer = 5usize;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let payload = format!("writer-{w}-record-{i}");
                        wal.append(payload.as_bytes()).expect("append");
                        wal.sync().expect("group sync");
                    }
                });
            }
        });
        assert_eq!(wal.records(), (writers * per_writer) as u64);
        drop(wal);
        let (_, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.truncated_bytes, 0, "every acked record durable");
        let mut seen: Vec<String> = records
            .iter()
            .map(|r| String::from_utf8(r.clone()).unwrap())
            .collect();
        seen.sort();
        let mut expected: Vec<String> = (0..writers)
            .flat_map(|w| (0..per_writer).map(move |i| format!("writer-{w}-record-{i}")))
            .collect();
        expected.sort();
        assert_eq!(seen, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotate_if_applied_is_atomic_with_the_record_count() {
        let path = tmp("rotate-if.wal");
        let _ = std::fs::remove_file(&path);
        let (wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        // An outstanding (unapplied) record blocks rotation.
        assert_eq!(wal.rotate_if_applied(1).unwrap(), None);
        assert_eq!(wal.generation(), 1);
        assert_eq!(wal.records(), 2);
        // Everything applied: rotation proceeds.
        assert_eq!(wal.rotate_if_applied(2).unwrap(), Some(2));
        assert_eq!(wal.records(), 0);
        // A record appended into the new generation blocks again.
        wal.append(b"three").unwrap();
        assert_eq!(wal.rotate_if_applied(0).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_sync_fault_fails_the_group_and_is_retryable() {
        let path = tmp("sync-eio.wal");
        let _ = std::fs::remove_file(&path);
        let ctl = FaultController::detached(13);
        ctl.fail_next_syncs(1);
        let (wal, _, _) = Wal::open_with_controller(&path, ctl.clone()).unwrap();
        wal.append(b"record").unwrap();
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("WAL fsync"), "{err}");
        assert!(err.to_string().contains("seed 13"), "{err}");
        assert_eq!(ctl.syncs_observed(), 1);
        // The record is still in the log; a later fsync covers it.
        wal.sync().expect("retried fsync succeeds");
        drop(wal);
        let (_, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"record".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_append_poisons_until_reopen() {
        let path = tmp("torn-append.wal");
        let _ = std::fs::remove_file(&path);
        let ctl = FaultController::detached(77);
        ctl.fail_append_at(1, AppendFault::TornAppend);
        let (wal, _, _) = Wal::open_with_controller(&path, ctl.clone()).unwrap();
        wal.append(b"survives").unwrap();
        let err = wal.append(b"dies-mid-write").unwrap_err();
        assert!(err.to_string().contains("torn WAL append"), "{err}");
        assert!(err.to_string().contains("seed 77"), "{err}");
        // The handle is dead — the "process" crashed.
        assert!(wal.append(b"after-crash").is_err());
        drop(wal);
        // Re-open: the torn frame is truncated away, the prefix survives.
        let (wal, records, recovery) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"survives".to_vec()]);
        assert!(recovery.truncated_bytes > 0, "torn tail must be dropped");
        assert_eq!(wal.append(b"back-in-business").unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_eio_append_is_retryable() {
        let path = tmp("eio-append.wal");
        let _ = std::fs::remove_file(&path);
        let ctl = FaultController::detached(5);
        ctl.fail_append_at(0, AppendFault::Eio);
        let (wal, _, _) = Wal::open_with_controller(&path, ctl.clone()).unwrap();
        let err = wal.append(b"rejected").unwrap_err();
        assert!(err.to_string().contains("injected EIO"), "{err}");
        // Nothing was written; the same payload appends cleanly afterwards.
        assert_eq!(wal.append(b"accepted").unwrap(), 0);
        drop(wal);
        let (_, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"accepted".to_vec()]);
        // Read-fault scripting on the same controller does not interfere.
        ctl.fail_read_at(0, ReadFault::Eio);
        std::fs::remove_file(&path).ok();
    }
}
