//! Fixed-size pages.

/// Size of a storage page in bytes.
///
/// 4 KiB matches the common filesystem/OS page size and is the unit in which
/// all I/O statistics are reported.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a page store (zero-based).
pub type PageId = u64;

/// A fixed-size page buffer.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Self {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Creates a page from a slice of at most [`PAGE_SIZE`] bytes; the rest
    /// is zero-filled.
    pub fn from_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= PAGE_SIZE, "slice longer than a page");
        let mut page = Self::zeroed();
        page.data[..bytes.len()].copy_from_slice(bytes);
        page
    }

    /// Read-only access to the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable access to the page contents.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.data.iter().filter(|b| **b != 0).count();
        write!(f, "Page {{ nonzero_bytes: {nonzero} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|b| *b == 0));
    }

    #[test]
    fn from_slice_copies_prefix() {
        let p = Page::from_slice(&[1, 2, 3]);
        assert_eq!(&p.bytes()[..3], &[1, 2, 3]);
        assert!(p.bytes()[3..].iter().all(|b| *b == 0));
    }

    #[test]
    #[should_panic(expected = "longer than a page")]
    fn from_slice_rejects_oversized() {
        let big = vec![0u8; PAGE_SIZE + 1];
        let _ = Page::from_slice(&big);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut p = Page::zeroed();
        p.bytes_mut()[100] = 42;
        assert_eq!(p.bytes()[100], 42);
    }

    #[test]
    fn debug_counts_nonzero() {
        let p = Page::from_slice(&[1, 0, 2]);
        assert_eq!(format!("{p:?}"), "Page { nonzero_bytes: 2 }");
    }
}
