//! Read-only memory-mapped page store.
//!
//! [`MmapPageStore`] maps a sealed page file (`postings.pages`,
//! `deltas.<seq>.pages`) into the address space once at open time and then
//! serves every [`read_page`](crate::PageStore::read_page) as a
//! bounds-checked copy out of the mapping — no `read` syscall, no seek, no
//! file-lock contention on the hot path. This is the cold-path complement to
//! the compressed posting encoding: fewer bytes on disk *and* fewer kernel
//! crossings per page touched.
//!
//! The backend is strictly read-only, matching how snapshot base heaps are
//! served (`FilePageStore::open_read_only`): `allocate` and `write_page`
//! fail with [`StorageError::Io`]. Fault-injection wrappers
//! ([`crate::FaultInjectingPageStore`]) sit *above* the mapping and compose
//! unchanged — a torn/zeroed/EIO script sees the same `PageStore` surface
//! as any other backend.
//!
//! The environment is offline, so the mapping is established with direct
//! `mmap`/`munmap` FFI in the workspace's shims style rather than a crates.io
//! wrapper; non-Unix targets fall back to reading the file into memory,
//! preserving semantics (and determinism) everywhere.

use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use crate::iostats::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pagestore::{PageStore, StorageError, StorageResult};

/// Physical backend used to serve a snapshot's sealed (read-only) page
/// files.
///
/// Selected per engine via the index config and recorded in the snapshot
/// container, with an environment/CLI override in the test and bench
/// harnesses. Both backends return bit-identical pages; they differ only in
/// how the bytes travel (read syscalls + file offset locking vs a single
/// shared mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// Serve sealed page files through [`crate::FilePageStore`] read
    /// syscalls. The default.
    #[default]
    File,
    /// Serve sealed page files through a read-only [`MmapPageStore`]
    /// mapping.
    Mmap,
}

impl StorageBackend {
    /// Stable single-byte identifier used in snapshot configs.
    pub fn config_byte(self) -> u8 {
        match self {
            Self::File => 0,
            Self::Mmap => 1,
        }
    }

    /// Inverse of [`config_byte`](Self::config_byte).
    pub fn from_config_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::File),
            1 => Some(Self::Mmap),
            _ => None,
        }
    }

    /// Human-readable name (bench labels, env-var selection).
    pub fn name(self) -> &'static str {
        match self {
            Self::File => "file",
            Self::Mmap => "mmap",
        }
    }
}

impl std::str::FromStr for StorageBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "file" => Ok(Self::File),
            "mmap" => Ok(Self::Mmap),
            other => Err(format!(
                "unknown storage backend {other:?} (expected file or mmap)"
            )),
        }
    }
}

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// `(void *)-1`, the POSIX mmap failure sentinel.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// How the file bytes are held in memory.
enum Backing {
    /// A live `mmap` region. Owned exclusively by this store; unmapped on
    /// drop. The underlying file descriptor is closed right after mapping —
    /// POSIX keeps the mapping valid independently of the fd.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Plain in-memory copy: zero-length files (mapping zero bytes is
    /// `EINVAL`) and non-Unix targets.
    Buffered(Vec<u8>),
}

impl Backing {
    fn as_bytes(&self) -> &[u8] {
        match self {
            // SAFETY: `ptr` points to a live PROT_READ mapping of exactly
            // `len` bytes, established in `open_impl` and unmapped only in
            // `drop`. The region is private and never written through, so
            // a shared `&[u8]` view is sound for the store's lifetime.
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Buffered(buf) => buf,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: this is the unique owner of the mapping created in
            // `open_impl`; failure is ignored (nothing actionable at drop).
            unsafe {
                ffi::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

// SAFETY: the mapping is immutable (PROT_READ, private, read-only file
// handle closed after mapping) and owned exclusively by the store, so
// concurrent shared access from multiple threads is sound.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// A read-only page store serving a sealed page file out of a single
/// memory mapping.
///
/// See the [module docs](self) for the role this backend plays; see
/// [`StorageBackend`] for how it is selected.
pub struct MmapPageStore {
    backing: Backing,
    num_pages: u64,
    stats: Arc<IoStats>,
}

impl MmapPageStore {
    /// Maps an existing page file at `path` read-only. Rejects files whose
    /// length is not page-aligned (a truncated or foreign file), exactly
    /// like [`crate::FilePageStore::open`].
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        Self::open_with_stats(path, IoStats::new_shared())
    }

    /// Maps an existing page file sharing the given statistics handle.
    pub fn open_with_stats<P: AsRef<Path>>(path: P, stats: Arc<IoStats>) -> StorageResult<Self> {
        Self::open_impl(path.as_ref(), stats)
    }

    fn open_impl(path: &Path, stats: Arc<IoStats>) -> StorageResult<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::corrupt(format!(
                "page file {} has length {len}, not a multiple of the page size",
                path.display()
            )));
        }
        let backing = Self::map_file(&file, len as usize)?;
        Ok(Self {
            backing,
            num_pages: len / PAGE_SIZE as u64,
            stats,
        })
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> StorageResult<Backing> {
        use std::os::unix::io::AsRawFd;

        if len == 0 {
            return Ok(Backing::Buffered(Vec::new()));
        }
        // SAFETY: mapping `len` bytes of a freshly-opened read-only file at
        // a kernel-chosen address; the result is checked against MAP_FAILED
        // before use.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(StorageError::Io(std::io::Error::last_os_error()));
        }
        Ok(Backing::Mapped {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map_file(file: &File, len: usize) -> StorageResult<Backing> {
        use std::io::Read;

        let mut buf = Vec::with_capacity(len);
        let mut file = file;
        file.read_to_end(&mut buf)?;
        if buf.len() != len {
            return Err(StorageError::corrupt(format!(
                "page file changed size during open ({} != {len})",
                buf.len()
            )));
        }
        Ok(Backing::Buffered(buf))
    }

    /// Whether the store is backed by a live memory mapping (as opposed to
    /// the zero-length / non-Unix in-memory fallback).
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.backing, Backing::Mapped { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    fn read_only_error(&self, op: &str) -> StorageError {
        StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            format!("cannot {op}: mmap page store is read-only"),
        ))
    }
}

impl PageStore for MmapPageStore {
    fn allocate(&self) -> StorageResult<PageId> {
        Err(self.read_only_error("allocate"))
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        if id >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                allocated: self.num_pages,
            });
        }
        let start = id as usize * PAGE_SIZE;
        let mut page = Page::zeroed();
        page.bytes_mut()
            .copy_from_slice(&self.backing.as_bytes()[start..start + PAGE_SIZE]);
        self.stats.record_reads(1);
        Ok(page)
    }

    fn write_page(&self, _id: PageId, _page: &Page) -> StorageResult<()> {
        Err(self.read_only_error("write"))
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn flush(&self) -> StorageResult<()> {
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn backend_name(&self) -> &'static str {
        "mmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::FilePageStore;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("streach-mmap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mmap_reads_match_file_reads() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            for i in 0..5u8 {
                let id = store.allocate().unwrap();
                let mut page = Page::zeroed();
                page.bytes_mut().fill(i + 1);
                page.bytes_mut()[0] = 0xA0 + i;
                store.write_page(id, &page).unwrap();
            }
            store.flush().unwrap();
        }
        let file = FilePageStore::open_read_only(&path).unwrap();
        let mapped = MmapPageStore::open(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.num_pages(), 5);
        assert_eq!(mapped.backend_name(), "mmap");
        for id in 0..5 {
            assert_eq!(
                mapped.read_page(id).unwrap().bytes(),
                file.read_page(id).unwrap().bytes(),
                "page {id} differs between backends"
            );
        }
        assert_eq!(mapped.io_stats().snapshot().page_reads, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_rejects_out_of_bounds_and_writes() {
        let dir = temp_dir("readonly");
        let path = dir.join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            store.allocate().unwrap();
            store.flush().unwrap();
        }
        let mapped = MmapPageStore::open(&path).unwrap();
        assert!(matches!(
            mapped.read_page(1),
            Err(StorageError::PageOutOfBounds {
                requested: 1,
                allocated: 1
            })
        ));
        assert!(matches!(mapped.allocate(), Err(StorageError::Io(_))));
        assert!(matches!(
            mapped.write_page(0, &Page::zeroed()),
            Err(StorageError::Io(_))
        ));
        assert!(mapped.flush().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_rejects_misaligned_files_and_handles_empty_ones() {
        let dir = temp_dir("align");
        let misaligned = dir.join("bad.bin");
        std::fs::write(&misaligned, [0xFFu8; 17]).unwrap();
        assert!(matches!(
            MmapPageStore::open(&misaligned),
            Err(StorageError::Corrupt { .. })
        ));
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, []).unwrap();
        let store = MmapPageStore::open(&empty).unwrap();
        assert_eq!(store.num_pages(), 0);
        assert!(!store.is_mapped());
        assert!(store.read_page(0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_store_is_shareable_across_threads() {
        let dir = temp_dir("threads");
        let path = dir.join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            let id = store.allocate().unwrap();
            store.write_page(id, &Page::from_slice(b"shared")).unwrap();
            store.flush().unwrap();
        }
        let store = std::sync::Arc::new(MmapPageStore::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let page = store.read_page(0).unwrap();
                        assert_eq!(&page.bytes()[..6], b"shared");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_config_byte_roundtrip() {
        for backend in [StorageBackend::File, StorageBackend::Mmap] {
            assert_eq!(
                StorageBackend::from_config_byte(backend.config_byte()),
                Some(backend)
            );
            assert_eq!(backend.name().parse::<StorageBackend>(), Ok(backend));
        }
        assert_eq!(StorageBackend::from_config_byte(7), None);
        assert!("tape".parse::<StorageBackend>().is_err());
    }
}
