//! Posting lists ("time lists") stored across pages.
//!
//! Each leaf of the ST-Index keeps, per road segment and time slot, a *time
//! list*: for every date in the historical dataset, the list of trajectory
//! IDs that traversed the segment during that slot on that date. The paper
//! stores these lists on disk — reading them is the expensive operation that
//! SQMB/Con-Index pruning is designed to avoid.
//!
//! [`PostingStore`] is an append-only blob heap over a [`PageStore`]: blobs
//! are written contiguously (spanning page boundaries when necessary) and
//! addressed by a [`BlobHandle`]. Reads go through a [`BufferPool`], so every
//! posting access pays for exactly the pages it touches unless cached.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use parking_lot::Mutex;

use crate::buffer_pool::BufferPool;
use crate::iostats::IoStats;
use crate::page::{Page, PAGE_SIZE};
use crate::pagestore::{PageStore, StorageResult};

/// The trajectory IDs observed on a given date.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeListEntry {
    /// Day index within the dataset (0-based; the paper's dataset spans
    /// `m = 30` days).
    pub date: u16,
    /// IDs of the trajectories that traversed the segment in the slot on
    /// this date, sorted ascending.
    pub traj_ids: Vec<u32>,
}

/// A full time list: one entry per date with at least one traversal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeList {
    /// Entries sorted by date.
    pub entries: Vec<TimeListEntry>,
}

impl TimeList {
    /// Creates an empty time list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trajectory observation for `date`, keeping entries sorted and
    /// IDs deduplicated.
    pub fn add(&mut self, date: u16, traj_id: u32) {
        match self.entries.binary_search_by_key(&date, |e| e.date) {
            Ok(i) => {
                let ids = &mut self.entries[i].traj_ids;
                if let Err(pos) = ids.binary_search(&traj_id) {
                    ids.insert(pos, traj_id);
                }
            }
            Err(i) => {
                self.entries.insert(
                    i,
                    TimeListEntry {
                        date,
                        traj_ids: vec![traj_id],
                    },
                );
            }
        }
    }

    /// The trajectory IDs recorded for `date`, if any.
    pub fn ids_on(&self, date: u16) -> Option<&[u32]> {
        self.entries
            .binary_search_by_key(&date, |e| e.date)
            .ok()
            .map(|i| self.entries[i].traj_ids.as_slice())
    }

    /// Number of dates with at least one traversal.
    pub fn num_dates(&self) -> usize {
        self.entries.len()
    }

    /// Total number of (date, trajectory) observations.
    pub fn num_observations(&self) -> usize {
        self.entries.iter().map(|e| e.traj_ids.len()).sum()
    }

    /// Serializes the time list.
    ///
    /// Layout: `u32` entry count, then per entry `u16 date`, `u32 id count`,
    /// `u32` ids.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + self.entries.len() * 8 + self.num_observations() * 4);
        buf.put_u32_le(self.entries.len() as u32);
        for entry in &self.entries {
            buf.put_u16_le(entry.date);
            buf.put_u32_le(entry.traj_ids.len() as u32);
            for id in &entry.traj_ids {
                buf.put_u32_le(*id);
            }
        }
        buf
    }

    /// Deserializes a time list previously produced by [`TimeList::encode`].
    /// Returns `None` when the buffer is malformed — including when trailing
    /// bytes remain after the declared entries. The strict length check
    /// matters for fault tolerance: a torn or zeroed page turns a stored
    /// list into a shorter "valid" prefix (e.g. a zeroed entry count) that
    /// would otherwise decode silently into wrong data.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 6 {
                return None;
            }
            let date = buf.get_u16_le();
            let count = buf.get_u32_le() as usize;
            if buf.remaining() < count * 4 {
                return None;
            }
            let mut traj_ids = Vec::with_capacity(count);
            for _ in 0..count {
                traj_ids.push(buf.get_u32_le());
            }
            entries.push(TimeListEntry { date, traj_ids });
        }
        if buf.remaining() != 0 {
            return None;
        }
        Some(Self { entries })
    }
}

/// Iterator over the trajectory IDs of one date entry inside an encoded
/// time list (see [`visit_encoded`]). Decodes lazily from the raw bytes, so
/// visiting a posting never materialises intermediate `Vec`s.
#[derive(Debug, Clone)]
pub struct IdIter<'a> {
    buf: &'a [u8],
}

impl Iterator for IdIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.buf.len() < 4 {
            return None;
        }
        Some(self.buf.get_u32_le())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.buf.len() / 4;
        (n, Some(n))
    }
}

impl ExactSizeIterator for IdIter<'_> {}

/// Walks a [`TimeList::encode`]d buffer without materialising a [`TimeList`],
/// calling `f(date, ids)` for every date entry. Returns `false` (after
/// visiting the well-formed prefix) when the buffer is malformed — like
/// [`TimeList::decode`], a buffer with trailing bytes after the declared
/// entries is malformed, so a torn or zeroed page cannot masquerade as a
/// shorter valid list. A caller that sees `false` must treat the posting as
/// corrupt, never as "fewer entries".
///
/// This is the allocation-free counterpart of [`TimeList::decode`]: the
/// verifier reads each posting's bytes into a reusable scratch buffer and
/// consumes them through this cursor, so a warm verification performs no
/// heap allocation at all.
#[must_use = "a false return means the posting bytes are corrupt"]
pub fn visit_encoded<'a, F>(mut buf: &'a [u8], mut f: F) -> bool
where
    F: FnMut(u16, IdIter<'a>),
{
    if buf.remaining() < 4 {
        return false;
    }
    let n = buf.get_u32_le() as usize;
    for _ in 0..n {
        if buf.remaining() < 6 {
            return false;
        }
        let date = buf.get_u16_le();
        let count = buf.get_u32_le() as usize;
        if buf.remaining() < count * 4 {
            return false;
        }
        f(
            date,
            IdIter {
                buf: &buf[..count * 4],
            },
        );
        buf.advance(count * 4);
    }
    buf.remaining() == 0
}

/// Location of a blob inside a [`PostingStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlobHandle {
    /// Byte offset of the blob from the beginning of the heap.
    pub offset: u64,
    /// Length of the blob in bytes.
    pub len: u32,
}

impl BlobHandle {
    /// Number of distinct pages this blob touches when read.
    pub fn pages_spanned(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.offset / PAGE_SIZE as u64;
        let last = (self.offset + self.len as u64 - 1) / PAGE_SIZE as u64;
        last - first + 1
    }
}

/// An append-only heap of byte blobs stored across fixed-size pages, read
/// through an LRU buffer pool.
pub struct PostingStore<S: PageStore> {
    pool: BufferPool<S>,
    tail: Mutex<u64>,
}

impl<S: PageStore> PostingStore<S> {
    /// Creates a posting store over `store`, caching up to `pool_pages`
    /// pages, with the default transient-read retry budget.
    pub fn new(store: S, pool_pages: usize) -> Self {
        Self::with_tail_and_retries(
            store,
            pool_pages,
            0,
            crate::buffer_pool::DEFAULT_READ_RETRIES,
        )
    }

    /// Reopens a posting store over an already-populated page store (e.g. a
    /// [`crate::FilePageStore`] holding a snapshot's posting heap), restoring
    /// the append cursor to `tail` bytes.
    pub fn with_tail(store: S, pool_pages: usize, tail: u64) -> Self {
        Self::with_tail_and_retries(
            store,
            pool_pages,
            tail,
            crate::buffer_pool::DEFAULT_READ_RETRIES,
        )
    }

    /// Full-control constructor: append cursor at `tail` bytes and an
    /// explicit transient-read retry budget for the buffer pool.
    pub fn with_tail_and_retries(
        store: S,
        pool_pages: usize,
        tail: u64,
        read_retries: u32,
    ) -> Self {
        Self {
            pool: BufferPool::with_retries(store, pool_pages, read_retries),
            tail: Mutex::new(tail),
        }
    }

    /// The buffer pool's page capacity.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// The buffer pool's transient-read retry budget.
    pub fn read_retries(&self) -> u32 {
        self.pool.read_retries()
    }

    /// Access to the underlying page store (page export during snapshots,
    /// direct allocation during bulk loads).
    pub fn store(&self) -> &S {
        self.pool.store()
    }

    /// Flushes the underlying store (fsync for file backends).
    pub fn flush(&self) -> StorageResult<()> {
        self.pool.store().flush()
    }

    /// The shared I/O statistics handle.
    pub fn io_stats(&self) -> Arc<IoStats> {
        self.pool.io_stats()
    }

    /// Total bytes appended so far.
    pub fn size_bytes(&self) -> u64 {
        *self.tail.lock()
    }

    /// Number of pages allocated in the underlying store.
    pub fn num_pages(&self) -> u64 {
        self.pool.store().num_pages()
    }

    /// Drops all cached pages (e.g. before timing a cold-cache query).
    pub fn clear_cache(&self) {
        self.pool.clear();
    }

    /// Appends a blob and returns its handle.
    pub fn append(&self, bytes: &[u8]) -> StorageResult<BlobHandle> {
        let mut tail = self.tail.lock();
        let handle = BlobHandle {
            offset: *tail,
            len: bytes.len() as u32,
        };
        let mut written = 0usize;
        let mut offset = *tail;
        while written < bytes.len() {
            let page_id = offset / PAGE_SIZE as u64;
            let in_page = (offset % PAGE_SIZE as u64) as usize;
            while self.pool.store().num_pages() <= page_id {
                self.pool.store().allocate()?;
            }
            let mut page = self.pool.store().read_page(page_id)?;
            let chunk = (PAGE_SIZE - in_page).min(bytes.len() - written);
            page.bytes_mut()[in_page..in_page + chunk]
                .copy_from_slice(&bytes[written..written + chunk]);
            self.pool.write_page(page_id, &page)?;
            written += chunk;
            offset += chunk as u64;
        }
        *tail += bytes.len() as u64;
        Ok(handle)
    }

    /// Reads a blob back.
    pub fn read(&self, handle: BlobHandle) -> StorageResult<Vec<u8>> {
        let mut out = Vec::with_capacity(handle.len as usize);
        self.read_into(handle, &mut out)?;
        Ok(out)
    }

    /// Reads a blob into a caller-owned buffer (cleared first). Cache hits
    /// copy straight out of the pooled page, so a warm read performs no
    /// allocation beyond what `out`'s capacity already covers — this is the
    /// read path the reachability verifier uses for every posting access.
    pub fn read_into(&self, handle: BlobHandle, out: &mut Vec<u8>) -> StorageResult<()> {
        out.clear();
        out.reserve(handle.len as usize);
        let mut remaining = handle.len as usize;
        let mut offset = handle.offset;
        while remaining > 0 {
            let page_id = offset / PAGE_SIZE as u64;
            let in_page = (offset % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - in_page).min(remaining);
            self.pool.with_page(page_id, |page| {
                out.extend_from_slice(&page.bytes()[in_page..in_page + chunk]);
            })?;
            remaining -= chunk;
            offset += chunk as u64;
        }
        Ok(())
    }

    /// Appends a [`TimeList`] and returns its handle.
    pub fn append_time_list(&self, list: &TimeList) -> StorageResult<BlobHandle> {
        self.append(&list.encode())
    }

    /// Reads a [`TimeList`] back. A blob that fails to decode — a torn or
    /// zeroed page under a range-valid handle, or a mismatched handle — is
    /// reported as [`crate::StorageError::Corrupt`], never a panic: a disk
    /// fault mid-query must surface as an error the serving process can
    /// handle.
    pub fn read_time_list(&self, handle: BlobHandle) -> StorageResult<TimeList> {
        let bytes = self.read(handle)?;
        TimeList::decode(&bytes).ok_or_else(|| {
            crate::StorageError::corrupt(format!(
                "time list blob at offset {} (len {}) failed to decode \
                 (torn page or corrupted posting heap)",
                handle.offset, handle.len
            ))
        })
    }
}

// A page full of zero bytes decodes as an empty time list, which is why the
// heap never needs tombstones: unused space is simply never addressed.
#[allow(dead_code)]
fn _zero_page_decodes() {
    debug_assert!(TimeList::decode(&Page::zeroed().bytes()[..4]).is_some());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::InMemoryPageStore;

    fn sample_list() -> TimeList {
        let mut list = TimeList::new();
        list.add(3, 100);
        list.add(1, 42);
        list.add(3, 7);
        list.add(3, 7); // duplicate, ignored
        list.add(29, 65000);
        list
    }

    #[test]
    fn time_list_add_keeps_sorted_dedup() {
        let list = sample_list();
        assert_eq!(list.num_dates(), 3);
        assert_eq!(list.num_observations(), 4);
        let dates: Vec<u16> = list.entries.iter().map(|e| e.date).collect();
        assert_eq!(dates, vec![1, 3, 29]);
        assert_eq!(list.ids_on(3), Some(&[7u32, 100][..]));
        assert_eq!(list.ids_on(2), None);
    }

    #[test]
    fn time_list_encode_decode_roundtrip() {
        let list = sample_list();
        let bytes = list.encode();
        let back = TimeList::decode(&bytes).unwrap();
        assert_eq!(back, list);
        // Empty list round trip.
        let empty = TimeList::new();
        assert_eq!(TimeList::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn time_list_decode_rejects_truncated() {
        let list = sample_list();
        let bytes = list.encode();
        assert!(TimeList::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(TimeList::decode(&bytes[..2]).is_none());
        assert!(TimeList::decode(&[]).is_none());
    }

    #[test]
    fn blob_handle_page_span() {
        assert_eq!(BlobHandle { offset: 0, len: 0 }.pages_spanned(), 0);
        assert_eq!(BlobHandle { offset: 0, len: 1 }.pages_spanned(), 1);
        assert_eq!(
            BlobHandle {
                offset: 0,
                len: PAGE_SIZE as u32
            }
            .pages_spanned(),
            1
        );
        assert_eq!(
            BlobHandle {
                offset: 0,
                len: PAGE_SIZE as u32 + 1
            }
            .pages_spanned(),
            2
        );
        assert_eq!(
            BlobHandle {
                offset: PAGE_SIZE as u64 - 1,
                len: 2
            }
            .pages_spanned(),
            2
        );
    }

    #[test]
    fn append_read_roundtrip_small() {
        let store = PostingStore::new(InMemoryPageStore::new(), 8);
        let h1 = store.append(b"hello").unwrap();
        let h2 = store.append(b"world!").unwrap();
        assert_eq!(store.read(h1).unwrap(), b"hello");
        assert_eq!(store.read(h2).unwrap(), b"world!");
        assert_eq!(store.size_bytes(), 11);
        assert_eq!(store.num_pages(), 1);
    }

    #[test]
    fn append_read_roundtrip_across_pages() {
        let store = PostingStore::new(InMemoryPageStore::new(), 8);
        let blob: Vec<u8> = (0..(PAGE_SIZE * 3 + 123))
            .map(|i| (i % 251) as u8)
            .collect();
        let before = store.append(b"prefix").unwrap();
        let handle = store.append(&blob).unwrap();
        assert_eq!(store.read(handle).unwrap(), blob);
        assert_eq!(store.read(before).unwrap(), b"prefix");
        assert!(store.num_pages() >= 4);
        assert_eq!(handle.pages_spanned(), 4);
    }

    #[test]
    fn time_list_storage_roundtrip() {
        let store = PostingStore::new(InMemoryPageStore::new(), 4);
        let mut handles = Vec::new();
        for seg in 0..50u32 {
            let mut list = TimeList::new();
            for date in 0..10u16 {
                list.add(date, seg * 1000 + date as u32);
                list.add(date, seg * 1000 + 500);
            }
            handles.push((seg, list.clone(), store.append_time_list(&list).unwrap()));
        }
        for (_, list, handle) in &handles {
            assert_eq!(&store.read_time_list(*handle).unwrap(), list);
        }
    }

    #[test]
    fn reads_are_counted_and_cached() {
        let store = PostingStore::new(InMemoryPageStore::new(), 4);
        let handle = store.append(&[7u8; 100]).unwrap();
        store.clear_cache();
        store.io_stats().reset();
        store.read(handle).unwrap();
        let after_first = store.io_stats().snapshot();
        assert_eq!(after_first.cache_misses, 1);
        store.read(handle).unwrap();
        let after_second = store.io_stats().snapshot();
        assert_eq!(
            after_second.cache_misses, 1,
            "second read should hit the pool"
        );
        assert_eq!(after_second.cache_hits, 1);
    }

    #[test]
    fn visit_encoded_matches_decode() {
        let list = sample_list();
        let bytes = list.encode();
        let mut seen: Vec<(u16, Vec<u32>)> = Vec::new();
        assert!(visit_encoded(&bytes, |date, ids| seen.push((date, ids.collect()))));
        let expected: Vec<(u16, Vec<u32>)> = list
            .entries
            .iter()
            .map(|e| (e.date, e.traj_ids.clone()))
            .collect();
        assert_eq!(seen, expected);
        // Truncated buffers are reported as malformed.
        assert!(!visit_encoded(&bytes[..bytes.len() - 1], |_, _| {}));
        assert!(!visit_encoded(&[], |_, _| {}));
        // An empty list is valid and visits nothing.
        assert!(visit_encoded(&TimeList::new().encode(), |_, _| panic!(
            "no entries"
        )));
    }

    #[test]
    fn read_into_reuses_buffer() {
        let store = PostingStore::new(InMemoryPageStore::new(), 8);
        let h1 = store.append(b"first blob").unwrap();
        let h2 = store.append(&[9u8; 6000]).unwrap();
        let mut buf = Vec::new();
        store.read_into(h1, &mut buf).unwrap();
        assert_eq!(buf, b"first blob");
        store.read_into(h2, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 6000]);
        let cap = buf.capacity();
        store.read_into(h1, &mut buf).unwrap();
        assert_eq!(buf, b"first blob");
        assert_eq!(buf.capacity(), cap, "re-read must not reallocate");
    }

    #[test]
    fn empty_blob() {
        let store = PostingStore::new(InMemoryPageStore::new(), 4);
        let h = store.append(b"").unwrap();
        assert_eq!(h.len, 0);
        assert_eq!(store.read(h).unwrap(), Vec::<u8>::new());
    }
}
