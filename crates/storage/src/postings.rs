//! Posting lists ("time lists") stored across pages.
//!
//! Each leaf of the ST-Index keeps, per road segment and time slot, a *time
//! list*: for every date in the historical dataset, the list of trajectory
//! IDs that traversed the segment during that slot on that date. The paper
//! stores these lists on disk — reading them is the expensive operation that
//! SQMB/Con-Index pruning is designed to avoid.
//!
//! [`PostingStore`] is an append-only blob heap over a [`PageStore`]: blobs
//! are written contiguously (spanning page boundaries when necessary) and
//! addressed by a [`BlobHandle`]. Reads go through a [`BufferPool`], so every
//! posting access pays for exactly the pages it touches unless cached.
//!
//! # Wire formats
//!
//! Three encodings exist, selected by [`PostingEncoding`]. All multi-byte
//! fixed-width integers are little-endian; varints are canonical LEB128
//! (see below).
//!
//! ## `LegacyRaw` — untagged fixed-width (v3 snapshot heaps)
//!
//! ```text
//! u32  entry count n
//! n × {
//!     u16  date               (absolute day index)
//!     u32  id count k
//!     k × u32  trajectory id  (sorted ascending)
//! }
//! ```
//!
//! No leading tag byte: the first byte of a legacy blob is the low byte of
//! the entry count. Heaps written before the encoding-version bump are
//! decoded with this layout, chosen by the snapshot container version — the
//! format is never sniffed from the bytes.
//!
//! ## `Raw` — tagged fixed-width
//!
//! ```text
//! u8   tag = 0x00
//! ...  LegacyRaw body (exact layout above)
//! ```
//!
//! ## `Delta` — tagged delta/varint (the default)
//!
//! ```text
//! u8   tag = 0x01
//! varint  entry count n
//! n × {
//!     varint  date            (entry 0: absolute day index;
//!                              entry i>0: delta from previous date, ≥ 1)
//!     varint  id count k      (k = 0 allowed)
//!     if k > 0:
//!         varint  first id    (absolute)
//!         (k-1) × varint gap  (difference from previous id, ≥ 1)
//! }
//! ```
//!
//! Dates and trajectory IDs are strictly ascending in a well-formed time
//! list, so deltas and gaps are always ≥ 1 — a zero delta/gap byte (such as
//! a zeroed page tail) is rejected as malformed, never absorbed.
//!
//! ## Canonical varints
//!
//! A `u32` varint is 1–5 bytes of LEB128: seven payload bits per byte,
//! least-significant group first, high bit set on every byte except the
//! last. Decoding is *canonical*: a terminating byte with a zero payload
//! after at least one continuation byte (an overlong encoding such as
//! `80 00`) is rejected, and the fifth byte may carry only the top four
//! bits of the `u32` and must terminate (`byte & 0xF0 == 0`). Every `u32`
//! therefore has exactly one accepted byte sequence, which makes the whole
//! blob encoding injective: any byte string that decodes at all re-encodes
//! to itself, so a corrupted blob can never silently masquerade as a
//! shorter (or padded) valid list.
//!
//! # Strictness
//!
//! All decoders reject trailing bytes, truncated streams, overlong varints,
//! zero date-deltas/id-gaps and arithmetic overflow of the running date/id.
//! A torn or zeroed page under a range-valid handle surfaces as
//! [`StorageError::Corrupt`](crate::StorageError::Corrupt), never as a
//! shorter valid list.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use parking_lot::Mutex;

use crate::buffer_pool::BufferPool;
use crate::iostats::IoStats;
use crate::page::{Page, PAGE_SIZE};
use crate::pagestore::{PageStore, StorageResult};

/// Tag byte for the tagged fixed-width encoding.
const TAG_RAW: u8 = 0x00;
/// Tag byte for the tagged delta/varint encoding.
const TAG_DELTA: u8 = 0x01;

/// On-disk encoding of the serialized time lists in a posting heap.
///
/// The encoding of a heap is recorded in the snapshot container (and in the
/// engine config), never inferred from blob bytes. Tagged heaps additionally
/// carry one tag byte per blob, so [`Raw`](Self::Raw) and
/// [`Delta`](Self::Delta) blobs may coexist in one heap — compaction copies
/// blob bytes verbatim and the reader dispatches on the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostingEncoding {
    /// Untagged fixed-width layout written by v3 snapshots. Kept readable
    /// forever; never written by new snapshots.
    LegacyRaw,
    /// Tagged fixed-width layout: tag byte `0x00` followed by the legacy
    /// body. Useful as an uncompressed baseline inside versioned heaps.
    Raw,
    /// Tagged delta/varint layout: tag byte `0x01`, dates as deltas, sorted
    /// trajectory IDs as first value + varint gaps. The default for new
    /// snapshots.
    #[default]
    Delta,
}

impl PostingEncoding {
    /// Whether blobs in this encoding carry a leading tag byte.
    pub fn is_tagged(self) -> bool {
        !matches!(self, Self::LegacyRaw)
    }

    /// Stable single-byte identifier used in snapshot configs.
    pub fn config_byte(self) -> u8 {
        match self {
            Self::LegacyRaw => 0,
            Self::Raw => 1,
            Self::Delta => 2,
        }
    }

    /// Inverse of [`config_byte`](Self::config_byte).
    pub fn from_config_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::LegacyRaw),
            1 => Some(Self::Raw),
            2 => Some(Self::Delta),
            _ => None,
        }
    }

    /// Human-readable name (bench labels, error messages).
    pub fn name(self) -> &'static str {
        match self {
            Self::LegacyRaw => "legacy-raw",
            Self::Raw => "raw",
            Self::Delta => "delta",
        }
    }
}

impl std::str::FromStr for PostingEncoding {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy-raw" => Ok(Self::LegacyRaw),
            "raw" => Ok(Self::Raw),
            "delta" => Ok(Self::Delta),
            other => Err(format!(
                "unknown posting encoding {other:?} (expected legacy-raw, raw or delta)"
            )),
        }
    }
}

/// Appends `v` to `buf` as a canonical LEB128 varint (1–5 bytes).
pub fn put_varint_u32(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a canonical LEB128 varint from the front of `buf`, advancing it.
///
/// Returns `None` on truncation, on an overlong encoding (a terminating
/// byte with zero payload after a continuation byte, e.g. `80 00`), and on
/// a fifth byte that either continues or carries bits beyond the top four
/// of a `u32`. Exactly one byte sequence is accepted per value, so the
/// codec is injective.
pub fn get_varint_u32(buf: &mut &[u8]) -> Option<u32> {
    let mut out: u32 = 0;
    for i in 0..5u32 {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        let payload = (byte & 0x7F) as u32;
        if i == 4 && byte & 0xF0 != 0 {
            // The fifth byte may carry only bits 28..32 and must terminate.
            return None;
        }
        out |= payload << (7 * i);
        if byte & 0x80 == 0 {
            if i > 0 && payload == 0 {
                // Overlong: canonical encodings never end in a zero payload.
                return None;
            }
            return Some(out);
        }
    }
    None
}

/// The trajectory IDs observed on a given date.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeListEntry {
    /// Day index within the dataset (0-based; the paper's dataset spans
    /// `m = 30` days).
    pub date: u16,
    /// IDs of the trajectories that traversed the segment in the slot on
    /// this date, sorted ascending.
    pub traj_ids: Vec<u32>,
}

/// A full time list: one entry per date with at least one traversal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeList {
    /// Entries sorted by date.
    pub entries: Vec<TimeListEntry>,
}

impl TimeList {
    /// Creates an empty time list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trajectory observation for `date`, keeping entries sorted and
    /// IDs deduplicated.
    pub fn add(&mut self, date: u16, traj_id: u32) {
        match self.entries.binary_search_by_key(&date, |e| e.date) {
            Ok(i) => {
                let ids = &mut self.entries[i].traj_ids;
                if let Err(pos) = ids.binary_search(&traj_id) {
                    ids.insert(pos, traj_id);
                }
            }
            Err(i) => {
                self.entries.insert(
                    i,
                    TimeListEntry {
                        date,
                        traj_ids: vec![traj_id],
                    },
                );
            }
        }
    }

    /// The trajectory IDs recorded for `date`, if any.
    pub fn ids_on(&self, date: u16) -> Option<&[u32]> {
        self.entries
            .binary_search_by_key(&date, |e| e.date)
            .ok()
            .map(|i| self.entries[i].traj_ids.as_slice())
    }

    /// Number of dates with at least one traversal.
    pub fn num_dates(&self) -> usize {
        self.entries.len()
    }

    /// Total number of (date, trajectory) observations.
    pub fn num_observations(&self) -> usize {
        self.entries.iter().map(|e| e.traj_ids.len()).sum()
    }

    /// Size in bytes of the fixed-width ([`PostingEncoding::LegacyRaw`])
    /// serialization: the logical "decompressed" footprint of this list.
    pub fn raw_encoded_size(&self) -> u64 {
        4 + 6 * self.num_dates() as u64 + 4 * self.num_observations() as u64
    }

    /// Serializes the time list in the untagged fixed-width layout (see the
    /// [module docs](self) for the byte-level format).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.raw_encoded_size() as usize);
        self.encode_raw_into(&mut buf);
        buf
    }

    /// Serializes the time list in `encoding`. Entries must be strictly
    /// ascending by date with strictly ascending IDs per entry — the
    /// invariant [`TimeList::add`] maintains.
    pub fn encode_as(&self, encoding: PostingEncoding) -> Vec<u8> {
        match encoding {
            PostingEncoding::LegacyRaw => self.encode(),
            PostingEncoding::Raw => {
                let mut buf = Vec::with_capacity(1 + self.raw_encoded_size() as usize);
                buf.push(TAG_RAW);
                self.encode_raw_into(&mut buf);
                buf
            }
            PostingEncoding::Delta => {
                let mut buf = Vec::with_capacity(1 + self.raw_encoded_size() as usize);
                buf.push(TAG_DELTA);
                self.encode_delta_into(&mut buf);
                buf
            }
        }
    }

    fn encode_raw_into(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(self.entries.len() as u32);
        for entry in &self.entries {
            buf.put_u16_le(entry.date);
            buf.put_u32_le(entry.traj_ids.len() as u32);
            for id in &entry.traj_ids {
                buf.put_u32_le(*id);
            }
        }
    }

    fn encode_delta_into(&self, buf: &mut Vec<u8>) {
        put_varint_u32(buf, self.entries.len() as u32);
        let mut prev_date = 0u32;
        for (i, entry) in self.entries.iter().enumerate() {
            let date = entry.date as u32;
            if i == 0 {
                put_varint_u32(buf, date);
            } else {
                debug_assert!(date > prev_date, "dates must be strictly ascending");
                put_varint_u32(buf, date.wrapping_sub(prev_date));
            }
            prev_date = date;
            put_varint_u32(buf, entry.traj_ids.len() as u32);
            let mut prev_id = 0u32;
            for (j, &id) in entry.traj_ids.iter().enumerate() {
                if j == 0 {
                    put_varint_u32(buf, id);
                } else {
                    debug_assert!(id > prev_id, "ids must be strictly ascending");
                    put_varint_u32(buf, id.wrapping_sub(prev_id));
                }
                prev_id = id;
            }
        }
    }

    /// Deserializes an untagged fixed-width time list produced by
    /// [`TimeList::encode`]. Returns `None` when the buffer is malformed —
    /// including when trailing bytes remain after the declared entries. The
    /// strict length check matters for fault tolerance: a torn or zeroed
    /// page turns a stored list into a shorter "valid" prefix (e.g. a
    /// zeroed entry count) that would otherwise decode silently into wrong
    /// data.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32_le() as usize;
        // The count is untrusted until the entries prove themselves: never
        // pre-allocate more than the remaining bytes could hold (an entry
        // is at least 6 bytes), or a corrupted count aborts on allocation.
        let mut entries = Vec::with_capacity(n.min(buf.remaining() / 6));
        for _ in 0..n {
            if buf.remaining() < 6 {
                return None;
            }
            let date = buf.get_u16_le();
            let count = buf.get_u32_le() as usize;
            if buf.remaining() < count * 4 {
                return None;
            }
            let mut traj_ids = Vec::with_capacity(count);
            for _ in 0..count {
                traj_ids.push(buf.get_u32_le());
            }
            entries.push(TimeListEntry { date, traj_ids });
        }
        if buf.remaining() != 0 {
            return None;
        }
        Some(Self { entries })
    }

    /// Deserializes a time list stored under `encoding`. For tagged
    /// encodings the actual layout is chosen by the blob's tag byte, so
    /// [`Raw`](PostingEncoding::Raw)- and
    /// [`Delta`](PostingEncoding::Delta)-tagged blobs both decode from a
    /// tagged heap. Strict in the same way as [`TimeList::decode`]: any
    /// malformation — unknown tag, truncation, trailing bytes, overlong
    /// varints, zero/non-monotone deltas — returns `None`.
    pub fn decode_as(encoding: PostingEncoding, buf: &[u8]) -> Option<Self> {
        match encoding {
            PostingEncoding::LegacyRaw => Self::decode(buf),
            PostingEncoding::Raw | PostingEncoding::Delta => {
                let (&tag, body) = buf.split_first()?;
                match tag {
                    TAG_RAW => Self::decode(body),
                    TAG_DELTA => Self::decode_delta_body(body),
                    _ => None,
                }
            }
        }
    }

    fn decode_delta_body(body: &[u8]) -> Option<Self> {
        let mut entries = Vec::new();
        if !visit_delta_body(body, |date, ids| {
            entries.push(TimeListEntry {
                date,
                traj_ids: ids.collect(),
            });
        }) {
            return None;
        }
        Some(Self { entries })
    }
}

/// Iterator over the trajectory IDs of one date entry inside an encoded
/// time list (see [`visit_posting`]). Decodes lazily from the raw bytes, so
/// visiting a posting never materialises intermediate `Vec`s — this holds
/// for both the fixed-width and the delta/varint layouts.
#[derive(Debug, Clone)]
pub struct IdIter<'a> {
    buf: &'a [u8],
    remaining: usize,
    prev: u32,
    first: bool,
    delta: bool,
}

impl<'a> IdIter<'a> {
    fn raw(buf: &'a [u8]) -> Self {
        Self {
            remaining: buf.len() / 4,
            buf,
            prev: 0,
            first: true,
            delta: false,
        }
    }

    fn delta(buf: &'a [u8], count: usize) -> Self {
        Self {
            buf,
            remaining: count,
            prev: 0,
            first: true,
            delta: true,
        }
    }
}

impl Iterator for IdIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.delta {
            // The slice handed to a delta IdIter was pre-validated by the
            // visitor's scan, so decoding cannot fail or overflow here.
            let Some(v) = get_varint_u32(&mut self.buf) else {
                self.remaining = 0;
                return None;
            };
            self.prev = if self.first {
                v
            } else {
                self.prev.wrapping_add(v)
            };
            self.first = false;
            Some(self.prev)
        } else {
            if self.buf.len() < 4 {
                self.remaining = 0;
                return None;
            }
            Some(self.buf.get_u32_le())
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IdIter<'_> {}

/// Walks a [`TimeList::encode`]d (untagged fixed-width) buffer without
/// materialising a [`TimeList`], calling `f(date, ids)` for every date
/// entry. Returns `false` (after visiting the well-formed prefix) when the
/// buffer is malformed — like [`TimeList::decode`], a buffer with trailing
/// bytes after the declared entries is malformed, so a torn or zeroed page
/// cannot masquerade as a shorter valid list. A caller that sees `false`
/// must treat the posting as corrupt, never as "fewer entries".
///
/// This is the allocation-free counterpart of [`TimeList::decode`]: the
/// verifier reads each posting's bytes into a reusable scratch buffer and
/// consumes them through this cursor, so a warm verification performs no
/// heap allocation at all. For encoding-aware visiting (tagged heaps), use
/// [`visit_posting`].
#[must_use = "a false return means the posting bytes are corrupt"]
pub fn visit_encoded<'a, F>(mut buf: &'a [u8], mut f: F) -> bool
where
    F: FnMut(u16, IdIter<'a>),
{
    if buf.remaining() < 4 {
        return false;
    }
    let n = buf.get_u32_le() as usize;
    for _ in 0..n {
        if buf.remaining() < 6 {
            return false;
        }
        let date = buf.get_u16_le();
        let count = buf.get_u32_le() as usize;
        if buf.remaining() < count * 4 {
            return false;
        }
        f(date, IdIter::raw(&buf[..count * 4]));
        buf.advance(count * 4);
    }
    buf.remaining() == 0
}

/// Walks the body of a delta/varint blob (after its tag byte). Each entry's
/// id stream is scanned once up front — validating every gap (non-zero, no
/// overflow) and finding its extent — before `f` receives a lazy
/// [`IdIter`] over exactly those bytes, keeping the path allocation-free.
fn visit_delta_body<'a, F>(mut buf: &'a [u8], mut f: F) -> bool
where
    F: FnMut(u16, IdIter<'a>),
{
    let Some(n) = get_varint_u32(&mut buf) else {
        return false;
    };
    let mut prev_date = 0u32;
    for i in 0..n {
        let Some(date_field) = get_varint_u32(&mut buf) else {
            return false;
        };
        let date = if i == 0 {
            date_field
        } else if date_field == 0 {
            return false;
        } else {
            match prev_date.checked_add(date_field) {
                Some(d) => d,
                None => return false,
            }
        };
        if date > u16::MAX as u32 {
            return false;
        }
        prev_date = date;
        let Some(count) = get_varint_u32(&mut buf) else {
            return false;
        };
        let ids_start = buf;
        if count > 0 {
            let Some(first) = get_varint_u32(&mut buf) else {
                return false;
            };
            let mut prev_id = first;
            for _ in 1..count {
                let Some(gap) = get_varint_u32(&mut buf) else {
                    return false;
                };
                if gap == 0 {
                    return false;
                }
                match prev_id.checked_add(gap) {
                    Some(id) => prev_id = id,
                    None => return false,
                }
            }
        }
        let ids_len = ids_start.len() - buf.len();
        f(
            date as u16,
            IdIter::delta(&ids_start[..ids_len], count as usize),
        );
    }
    buf.is_empty()
}

/// Encoding-aware counterpart of [`visit_encoded`]: walks a posting blob
/// stored under `encoding`, calling `f(date, ids)` per date entry without
/// materialising a [`TimeList`]. Tagged heaps dispatch on the blob's tag
/// byte (so raw- and delta-tagged blobs may coexist); an unknown tag or any
/// malformation returns `false`, which callers must treat as corruption.
#[must_use = "a false return means the posting bytes are corrupt"]
pub fn visit_posting<'a, F>(buf: &'a [u8], encoding: PostingEncoding, f: F) -> bool
where
    F: FnMut(u16, IdIter<'a>),
{
    match encoding {
        PostingEncoding::LegacyRaw => visit_encoded(buf, f),
        PostingEncoding::Raw | PostingEncoding::Delta => {
            let Some((&tag, body)) = buf.split_first() else {
                return false;
            };
            match tag {
                TAG_RAW => visit_encoded(body, f),
                TAG_DELTA => visit_delta_body(body, f),
                _ => false,
            }
        }
    }
}

/// Computes the `(bytes_decoded, bytes_resident)` accounting pair for one
/// encoded posting blob (see [`IoStats::record_posting_decode`]):
/// `bytes_resident` is the blob's stored footprint (`buf.len()`), and
/// `bytes_decoded` is the logical fixed-width footprint the blob expands
/// to. Returns `None` when the blob is malformed.
pub fn posting_sizes(buf: &[u8], encoding: PostingEncoding) -> Option<(u64, u64)> {
    let resident = buf.len() as u64;
    match encoding {
        PostingEncoding::LegacyRaw => Some((resident, resident)),
        PostingEncoding::Raw | PostingEncoding::Delta => {
            let (&tag, body) = buf.split_first()?;
            match tag {
                TAG_RAW => Some((body.len() as u64, resident)),
                TAG_DELTA => {
                    let mut dates = 0u64;
                    let mut ids = 0u64;
                    if !visit_delta_body(body, |_, iter| {
                        dates += 1;
                        ids += iter.len() as u64;
                    }) {
                        return None;
                    }
                    Some((4 + dates * 6 + ids * 4, resident))
                }
                _ => None,
            }
        }
    }
}

/// Location of a blob inside a [`PostingStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlobHandle {
    /// Byte offset of the blob from the beginning of the heap.
    pub offset: u64,
    /// Length of the blob in bytes.
    pub len: u32,
}

impl BlobHandle {
    /// Number of distinct pages this blob touches when read.
    pub fn pages_spanned(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.offset / PAGE_SIZE as u64;
        let last = (self.offset + self.len as u64 - 1) / PAGE_SIZE as u64;
        last - first + 1
    }
}

/// An append-only heap of byte blobs stored across fixed-size pages, read
/// through an LRU buffer pool. Time lists appended through
/// [`append_time_list`](Self::append_time_list) are serialized in the
/// heap's configured [`PostingEncoding`].
pub struct PostingStore<S: PageStore> {
    pool: BufferPool<S>,
    tail: Mutex<u64>,
    encoding: PostingEncoding,
}

impl<S: PageStore> PostingStore<S> {
    /// Creates a posting store over `store`, caching up to `pool_pages`
    /// pages, with the default transient-read retry budget and the default
    /// posting encoding.
    pub fn new(store: S, pool_pages: usize) -> Self {
        Self::with_tail_and_retries(
            store,
            pool_pages,
            0,
            crate::buffer_pool::DEFAULT_READ_RETRIES,
        )
    }

    /// Reopens a posting store over an already-populated page store (e.g. a
    /// [`crate::FilePageStore`] holding a snapshot's posting heap), restoring
    /// the append cursor to `tail` bytes.
    pub fn with_tail(store: S, pool_pages: usize, tail: u64) -> Self {
        Self::with_tail_and_retries(
            store,
            pool_pages,
            tail,
            crate::buffer_pool::DEFAULT_READ_RETRIES,
        )
    }

    /// Constructor with an append cursor at `tail` bytes and an explicit
    /// transient-read retry budget, using the default posting encoding.
    pub fn with_tail_and_retries(
        store: S,
        pool_pages: usize,
        tail: u64,
        read_retries: u32,
    ) -> Self {
        Self::with_options(
            store,
            pool_pages,
            tail,
            read_retries,
            PostingEncoding::default(),
        )
    }

    /// Full-control constructor: append cursor, retry budget and posting
    /// encoding. `encoding` must match how the heap's existing blobs were
    /// written (a v3 snapshot heap is `LegacyRaw`; new heaps are tagged).
    pub fn with_options(
        store: S,
        pool_pages: usize,
        tail: u64,
        read_retries: u32,
        encoding: PostingEncoding,
    ) -> Self {
        Self {
            pool: BufferPool::with_retries(store, pool_pages, read_retries),
            tail: Mutex::new(tail),
            encoding,
        }
    }

    /// The posting encoding this heap reads and writes.
    pub fn encoding(&self) -> PostingEncoding {
        self.encoding
    }

    /// The buffer pool's page capacity.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// The buffer pool's transient-read retry budget.
    pub fn read_retries(&self) -> u32 {
        self.pool.read_retries()
    }

    /// Access to the underlying page store (page export during snapshots,
    /// direct allocation during bulk loads).
    pub fn store(&self) -> &S {
        self.pool.store()
    }

    /// Flushes the underlying store (fsync for file backends).
    pub fn flush(&self) -> StorageResult<()> {
        self.pool.store().flush()
    }

    /// The shared I/O statistics handle.
    pub fn io_stats(&self) -> Arc<IoStats> {
        self.pool.io_stats()
    }

    /// Total bytes appended so far.
    pub fn size_bytes(&self) -> u64 {
        *self.tail.lock()
    }

    /// Number of pages allocated in the underlying store.
    pub fn num_pages(&self) -> u64 {
        self.pool.store().num_pages()
    }

    /// Drops all cached pages (e.g. before timing a cold-cache query).
    pub fn clear_cache(&self) {
        self.pool.clear();
    }

    /// Appends a blob and returns its handle.
    pub fn append(&self, bytes: &[u8]) -> StorageResult<BlobHandle> {
        let mut tail = self.tail.lock();
        let handle = BlobHandle {
            offset: *tail,
            len: bytes.len() as u32,
        };
        let mut written = 0usize;
        let mut offset = *tail;
        while written < bytes.len() {
            let page_id = offset / PAGE_SIZE as u64;
            let in_page = (offset % PAGE_SIZE as u64) as usize;
            while self.pool.store().num_pages() <= page_id {
                self.pool.store().allocate()?;
            }
            let mut page = self.pool.store().read_page(page_id)?;
            let chunk = (PAGE_SIZE - in_page).min(bytes.len() - written);
            page.bytes_mut()[in_page..in_page + chunk]
                .copy_from_slice(&bytes[written..written + chunk]);
            self.pool.write_page(page_id, &page)?;
            written += chunk;
            offset += chunk as u64;
        }
        *tail += bytes.len() as u64;
        Ok(handle)
    }

    /// Reads a blob back.
    pub fn read(&self, handle: BlobHandle) -> StorageResult<Vec<u8>> {
        let mut out = Vec::with_capacity(handle.len as usize);
        self.read_into(handle, &mut out)?;
        Ok(out)
    }

    /// Reads a blob into a caller-owned buffer (cleared first). Cache hits
    /// copy straight out of the pooled page, so a warm read performs no
    /// allocation beyond what `out`'s capacity already covers — this is the
    /// read path the reachability verifier uses for every posting access.
    pub fn read_into(&self, handle: BlobHandle, out: &mut Vec<u8>) -> StorageResult<()> {
        out.clear();
        out.reserve(handle.len as usize);
        let mut remaining = handle.len as usize;
        let mut offset = handle.offset;
        while remaining > 0 {
            let page_id = offset / PAGE_SIZE as u64;
            let in_page = (offset % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - in_page).min(remaining);
            self.pool.with_page(page_id, |page| {
                out.extend_from_slice(&page.bytes()[in_page..in_page + chunk]);
            })?;
            remaining -= chunk;
            offset += chunk as u64;
        }
        Ok(())
    }

    /// Appends a [`TimeList`] serialized in the heap's encoding and returns
    /// its handle.
    pub fn append_time_list(&self, list: &TimeList) -> StorageResult<BlobHandle> {
        self.append(&list.encode_as(self.encoding))
    }

    /// Reads a [`TimeList`] back. A blob that fails to decode — a torn or
    /// zeroed page under a range-valid handle, a mismatched handle, or an
    /// encoding mismatch — is reported as
    /// [`crate::StorageError::Corrupt`], never a panic: a disk fault
    /// mid-query must surface as an error the serving process can handle.
    /// Successful decodes record their
    /// [`bytes_decoded`/`bytes_resident`](IoStats::record_posting_decode)
    /// accounting on the shared [`IoStats`].
    pub fn read_time_list(&self, handle: BlobHandle) -> StorageResult<TimeList> {
        let bytes = self.read(handle)?;
        let list = TimeList::decode_as(self.encoding, &bytes).ok_or_else(|| {
            crate::StorageError::corrupt(format!(
                "time list blob at offset {} (len {}, encoding {}) failed to decode \
                 (torn page, corrupted posting heap, or encoding mismatch)",
                handle.offset,
                handle.len,
                self.encoding.name()
            ))
        })?;
        self.pool
            .io_stats()
            .record_posting_decode(list.raw_encoded_size(), handle.len as u64);
        Ok(list)
    }
}

// In the legacy fixed-width layout a page full of zero bytes decodes as an
// empty time list, which is why the heap never needs tombstones: unused
// space is simply never addressed. Tagged blobs are sized exactly by their
// handle, so the same property holds trivially.
#[allow(dead_code)]
fn _zero_page_decodes() {
    debug_assert!(TimeList::decode(&Page::zeroed().bytes()[..4]).is_some());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::InMemoryPageStore;

    const ALL_ENCODINGS: [PostingEncoding; 3] = [
        PostingEncoding::LegacyRaw,
        PostingEncoding::Raw,
        PostingEncoding::Delta,
    ];

    fn sample_list() -> TimeList {
        let mut list = TimeList::new();
        list.add(3, 100);
        list.add(1, 42);
        list.add(3, 7);
        list.add(3, 7); // duplicate, ignored
        list.add(29, 65000);
        list
    }

    /// SplitMix64 — the workspace's deterministic-test RNG idiom.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_list(state: &mut u64) -> TimeList {
        let mut list = TimeList::new();
        let num_dates = (splitmix64(state) % 8) as u16;
        for _ in 0..num_dates {
            let date = (splitmix64(state) % 30) as u16;
            let num_ids = splitmix64(state) % 12;
            for _ in 0..num_ids {
                let id = match splitmix64(state) % 4 {
                    0 => (splitmix64(state) % 64) as u32,           // dense cluster
                    1 => splitmix64(state) as u32,                  // full range
                    2 => u32::MAX - (splitmix64(state) % 8) as u32, // near max
                    _ => (splitmix64(state) % 100_000) as u32,      // fleet-scale
                };
                list.add(date, id);
            }
        }
        list
    }

    #[test]
    fn time_list_add_keeps_sorted_dedup() {
        let list = sample_list();
        assert_eq!(list.num_dates(), 3);
        assert_eq!(list.num_observations(), 4);
        let dates: Vec<u16> = list.entries.iter().map(|e| e.date).collect();
        assert_eq!(dates, vec![1, 3, 29]);
        assert_eq!(list.ids_on(3), Some(&[7u32, 100][..]));
        assert_eq!(list.ids_on(2), None);
    }

    #[test]
    fn time_list_encode_decode_roundtrip() {
        let list = sample_list();
        let bytes = list.encode();
        let back = TimeList::decode(&bytes).unwrap();
        assert_eq!(back, list);
        // Empty list round trip.
        let empty = TimeList::new();
        assert_eq!(TimeList::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn time_list_decode_rejects_truncated() {
        let list = sample_list();
        let bytes = list.encode();
        assert!(TimeList::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(TimeList::decode(&bytes[..2]).is_none());
        assert!(TimeList::decode(&[]).is_none());
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        let values = [
            0u32,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            0x1F_FFFF,
            0x20_0000,
            0x0FFF_FFFF,
            0x1000_0000,
            u32::MAX - 1,
            u32::MAX,
        ];
        for &v in &values {
            let mut buf = Vec::new();
            put_varint_u32(&mut buf, v);
            assert!(buf.len() <= 5);
            let mut cursor = buf.as_slice();
            assert_eq!(get_varint_u32(&mut cursor), Some(v), "value {v:#x}");
            assert!(cursor.is_empty(), "value {v:#x} left trailing bytes");
        }
    }

    #[test]
    fn varint_rejects_overlong_truncated_and_overflow() {
        // Overlong encodings of small values.
        for overlong in [
            &[0x80, 0x00][..],
            &[0x81, 0x80, 0x00][..],
            &[0xFF, 0x80, 0x80, 0x80, 0x00][..],
        ] {
            let mut cursor = overlong;
            assert_eq!(get_varint_u32(&mut cursor), None, "bytes {overlong:02x?}");
        }
        // Truncated streams (continuation bit set, nothing follows).
        for truncated in [&[0x80][..], &[0xFF, 0xFF][..], &[][..]] {
            let mut cursor = truncated;
            assert_eq!(get_varint_u32(&mut cursor), None);
        }
        // A fifth byte must terminate and fit in the top 4 bits of a u32.
        let mut too_long = &[0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01][..];
        assert_eq!(get_varint_u32(&mut too_long), None);
        let mut overflow = &[0xFFu8, 0xFF, 0xFF, 0xFF, 0x10][..];
        assert_eq!(get_varint_u32(&mut overflow), None);
        // The canonical maximum is accepted.
        let mut max = &[0xFFu8, 0xFF, 0xFF, 0xFF, 0x0F][..];
        assert_eq!(get_varint_u32(&mut max), Some(u32::MAX));
    }

    #[test]
    fn varint_decode_is_canonical() {
        // Every accepted 1..=3-byte sequence re-encodes to itself, so no two
        // byte strings decode to the same value (injectivity, sampled).
        let mut state = 0xC0FF_EE00_1234_5678u64;
        for _ in 0..2000 {
            let len = 1 + (splitmix64(&mut state) % 3) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| splitmix64(&mut state) as u8).collect();
            let mut cursor = bytes.as_slice();
            if let Some(v) = get_varint_u32(&mut cursor) {
                let consumed = &bytes[..bytes.len() - cursor.len()];
                let mut re = Vec::new();
                put_varint_u32(&mut re, v);
                assert_eq!(re, consumed, "non-canonical accept of {bytes:02x?}");
            }
        }
    }

    #[test]
    fn encode_as_roundtrips_adversarial_lists() {
        let dense = TimeList {
            entries: vec![TimeListEntry {
                date: 0,
                traj_ids: (0..512u32).collect(),
            }],
        };
        let lists = vec![
            TimeList::new(),
            TimeList {
                // A date with zero observations is unreachable through
                // `add`, but the wire format supports it (k = 0).
                entries: vec![TimeListEntry {
                    date: 7,
                    traj_ids: vec![],
                }],
            },
            TimeList {
                entries: vec![TimeListEntry {
                    date: u16::MAX,
                    traj_ids: vec![0],
                }],
            },
            TimeList {
                entries: vec![TimeListEntry {
                    date: 1,
                    traj_ids: vec![u32::MAX],
                }],
            },
            TimeList {
                entries: vec![TimeListEntry {
                    date: 2,
                    traj_ids: vec![0, u32::MAX],
                }],
            },
            dense,
            sample_list(),
        ];
        for list in &lists {
            for encoding in ALL_ENCODINGS {
                let bytes = list.encode_as(encoding);
                let back = TimeList::decode_as(encoding, &bytes)
                    .unwrap_or_else(|| panic!("{} failed on {list:?}", encoding.name()));
                assert_eq!(&back, list, "{} roundtrip", encoding.name());
                // visit_posting agrees with decode_as.
                let mut seen = TimeList::new();
                let mut visited_entries = Vec::new();
                assert!(visit_posting(&bytes, encoding, |date, ids| {
                    visited_entries.push(TimeListEntry {
                        date,
                        traj_ids: ids.collect(),
                    });
                }));
                seen.entries = visited_entries;
                assert_eq!(&seen, list, "{} visit", encoding.name());
                // Accounting pair: decoded is the fixed-width footprint.
                let (decoded, resident) = posting_sizes(&bytes, encoding).unwrap();
                assert_eq!(decoded, list.raw_encoded_size());
                assert_eq!(resident, bytes.len() as u64);
            }
        }
    }

    #[test]
    fn seeded_property_roundtrip_all_encodings() {
        let mut state = 0x5EED_0000_0000_0001u64;
        for _ in 0..300 {
            let list = random_list(&mut state);
            for encoding in ALL_ENCODINGS {
                let bytes = list.encode_as(encoding);
                assert_eq!(TimeList::decode_as(encoding, &bytes).as_ref(), Some(&list));
                // Strictness: every strict prefix and any appended byte is
                // rejected — a flip can never shorten or pad a list.
                if !bytes.is_empty() {
                    assert!(
                        TimeList::decode_as(encoding, &bytes[..bytes.len() - 1]).is_none(),
                        "{} accepted a truncated blob",
                        encoding.name()
                    );
                }
                let mut padded = bytes.clone();
                padded.push(0);
                assert!(
                    TimeList::decode_as(encoding, &padded).is_none(),
                    "{} accepted a padded blob",
                    encoding.name()
                );
            }
        }
    }

    #[test]
    fn delta_decode_accepts_only_canonical_bytes() {
        // Injectivity end-to-end: any single-byte corruption of a delta blob
        // either fails to decode, or decodes to a list whose re-encoding is
        // exactly the corrupted bytes (i.e. the decoder never silently
        // reinterprets bytes as a different-length list). It never yields
        // the original list.
        let mut state = 0xDE17_A000_0000_0002u64;
        for _ in 0..40 {
            let list = random_list(&mut state);
            let bytes = list.encode_as(PostingEncoding::Delta);
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut flipped = bytes.clone();
                    flipped[i] ^= 1 << bit;
                    if let Some(back) = TimeList::decode_as(PostingEncoding::Delta, &flipped) {
                        assert_ne!(back, list, "flip at byte {i} bit {bit} was invisible");
                        assert_eq!(
                            back.encode_as(PostingEncoding::Delta),
                            flipped,
                            "non-canonical accept after flip at byte {i} bit {bit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn delta_decode_rejects_non_monotone_streams() {
        // Hand-built bodies exercising each strictness rule. Tag byte first.
        let reject = |body: &[u8]| {
            let mut blob = vec![TAG_DELTA];
            blob.extend_from_slice(body);
            assert!(
                TimeList::decode_as(PostingEncoding::Delta, &blob).is_none(),
                "accepted malformed body {body:02x?}"
            );
        };
        // Two entries, second date delta = 0 (duplicate date).
        reject(&[2, 5, 1, 9, 0, 1, 3]);
        // Second id gap = 0 (duplicate id).
        reject(&[1, 5, 2, 9, 0]);
        // Date overflows u16 (absolute 0xFFFF + delta 1).
        reject(&[2, 0xFF, 0xFF, 0x03, 1, 1, 1, 1, 1, 1]);
        // Id accumulator overflows u32 (first = MAX, gap = 1).
        reject(&[1, 0, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 1]);
        // Truncated gap stream (k = 3 but only first id present).
        reject(&[1, 0, 3, 7]);
        // Zero-filled tail (torn page): entry count says 1 but all zeros
        // after the date means gap bytes are zero.
        reject(&[1, 4, 2, 9, 0, 0, 0]);
        // Unknown tag byte.
        assert!(TimeList::decode_as(PostingEncoding::Delta, &[0x7F, 0, 0, 0, 0]).is_none());
        // Empty blob (no tag).
        assert!(TimeList::decode_as(PostingEncoding::Delta, &[]).is_none());
    }

    #[test]
    fn delta_encoding_compresses_dense_lists() {
        let mut list = TimeList::new();
        for date in 0..30u16 {
            for id in 0..64u32 {
                list.add(date, 1000 + id * 3);
            }
        }
        let raw = list.encode_as(PostingEncoding::Raw);
        let delta = list.encode_as(PostingEncoding::Delta);
        assert!(
            (delta.len() as f64) * 1.5 < raw.len() as f64,
            "delta {} bytes vs raw {} bytes",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn blob_handle_page_span() {
        assert_eq!(BlobHandle { offset: 0, len: 0 }.pages_spanned(), 0);
        assert_eq!(BlobHandle { offset: 0, len: 1 }.pages_spanned(), 1);
        assert_eq!(
            BlobHandle {
                offset: 0,
                len: PAGE_SIZE as u32
            }
            .pages_spanned(),
            1
        );
        assert_eq!(
            BlobHandle {
                offset: 0,
                len: PAGE_SIZE as u32 + 1
            }
            .pages_spanned(),
            2
        );
        assert_eq!(
            BlobHandle {
                offset: PAGE_SIZE as u64 - 1,
                len: 2
            }
            .pages_spanned(),
            2
        );
    }

    #[test]
    fn append_read_roundtrip_small() {
        let store = PostingStore::new(InMemoryPageStore::new(), 8);
        let h1 = store.append(b"hello").unwrap();
        let h2 = store.append(b"world!").unwrap();
        assert_eq!(store.read(h1).unwrap(), b"hello");
        assert_eq!(store.read(h2).unwrap(), b"world!");
        assert_eq!(store.size_bytes(), 11);
        assert_eq!(store.num_pages(), 1);
    }

    #[test]
    fn append_read_roundtrip_across_pages() {
        let store = PostingStore::new(InMemoryPageStore::new(), 8);
        let blob: Vec<u8> = (0..(PAGE_SIZE * 3 + 123))
            .map(|i| (i % 251) as u8)
            .collect();
        let before = store.append(b"prefix").unwrap();
        let handle = store.append(&blob).unwrap();
        assert_eq!(store.read(handle).unwrap(), blob);
        assert_eq!(store.read(before).unwrap(), b"prefix");
        assert!(store.num_pages() >= 4);
        assert_eq!(handle.pages_spanned(), 4);
    }

    #[test]
    fn time_list_storage_roundtrip() {
        for encoding in ALL_ENCODINGS {
            let store = PostingStore::with_options(InMemoryPageStore::new(), 4, 0, 0, encoding);
            assert_eq!(store.encoding(), encoding);
            let mut handles = Vec::new();
            for seg in 0..50u32 {
                let mut list = TimeList::new();
                for date in 0..10u16 {
                    list.add(date, seg * 1000 + date as u32);
                    list.add(date, seg * 1000 + 500);
                }
                handles.push((seg, list.clone(), store.append_time_list(&list).unwrap()));
            }
            for (_, list, handle) in &handles {
                assert_eq!(&store.read_time_list(*handle).unwrap(), list);
            }
        }
    }

    #[test]
    fn tagged_heap_reads_mixed_encodings() {
        // Compaction copies blob bytes verbatim, so a delta-configured heap
        // must read back raw-tagged blobs untouched (and vice versa).
        let store =
            PostingStore::with_options(InMemoryPageStore::new(), 4, 0, 0, PostingEncoding::Delta);
        let list = sample_list();
        let raw_handle = store.append(&list.encode_as(PostingEncoding::Raw)).unwrap();
        let delta_handle = store.append_time_list(&list).unwrap();
        assert_eq!(store.read_time_list(raw_handle).unwrap(), list);
        assert_eq!(store.read_time_list(delta_handle).unwrap(), list);
        assert!(delta_handle.len < raw_handle.len);
    }

    #[test]
    fn read_time_list_records_decode_accounting() {
        let store =
            PostingStore::with_options(InMemoryPageStore::new(), 4, 0, 0, PostingEncoding::Delta);
        let list = sample_list();
        let handle = store.append_time_list(&list).unwrap();
        store.io_stats().reset();
        store.read_time_list(handle).unwrap();
        let snap = store.io_stats().snapshot();
        assert_eq!(snap.bytes_decoded, list.raw_encoded_size());
        assert_eq!(snap.bytes_resident, handle.len as u64);
        assert!(snap.bytes_resident < snap.bytes_decoded);
    }

    #[test]
    fn corrupt_blob_is_reported_not_shortened() {
        let store =
            PostingStore::with_options(InMemoryPageStore::new(), 4, 0, 0, PostingEncoding::Delta);
        let list = sample_list();
        let mut bytes = list.encode_as(PostingEncoding::Delta);
        // Zero the tail, simulating a torn page under a range-valid handle.
        let n = bytes.len();
        for b in &mut bytes[n - 2..] {
            *b = 0;
        }
        let handle = store.append(&bytes).unwrap();
        let err = store.read_time_list(handle).unwrap_err();
        assert!(
            matches!(err, crate::StorageError::Corrupt { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn reads_are_counted_and_cached() {
        let store = PostingStore::new(InMemoryPageStore::new(), 4);
        let handle = store.append(&[7u8; 100]).unwrap();
        store.clear_cache();
        store.io_stats().reset();
        store.read(handle).unwrap();
        let after_first = store.io_stats().snapshot();
        assert_eq!(after_first.cache_misses, 1);
        store.read(handle).unwrap();
        let after_second = store.io_stats().snapshot();
        assert_eq!(
            after_second.cache_misses, 1,
            "second read should hit the pool"
        );
        assert_eq!(after_second.cache_hits, 1);
    }

    #[test]
    fn visit_encoded_matches_decode() {
        let list = sample_list();
        let bytes = list.encode();
        let mut seen: Vec<(u16, Vec<u32>)> = Vec::new();
        assert!(visit_encoded(&bytes, |date, ids| seen.push((date, ids.collect()))));
        let expected: Vec<(u16, Vec<u32>)> = list
            .entries
            .iter()
            .map(|e| (e.date, e.traj_ids.clone()))
            .collect();
        assert_eq!(seen, expected);
        // Truncated buffers are reported as malformed.
        assert!(!visit_encoded(&bytes[..bytes.len() - 1], |_, _| {}));
        assert!(!visit_encoded(&[], |_, _| {}));
        // An empty list is valid and visits nothing.
        assert!(visit_encoded(&TimeList::new().encode(), |_, _| panic!(
            "no entries"
        )));
    }

    #[test]
    fn id_iter_is_exact_size_in_both_modes() {
        let list = sample_list();
        for encoding in ALL_ENCODINGS {
            let bytes = list.encode_as(encoding);
            let mut index = 0;
            assert!(visit_posting(&bytes, encoding, |_, ids| {
                assert_eq!(ids.len(), list.entries[index].traj_ids.len());
                index += 1;
            }));
        }
    }

    #[test]
    fn read_into_reuses_buffer() {
        let store = PostingStore::new(InMemoryPageStore::new(), 8);
        let h1 = store.append(b"first blob").unwrap();
        let h2 = store.append(&[9u8; 6000]).unwrap();
        let mut buf = Vec::new();
        store.read_into(h1, &mut buf).unwrap();
        assert_eq!(buf, b"first blob");
        store.read_into(h2, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 6000]);
        let cap = buf.capacity();
        store.read_into(h1, &mut buf).unwrap();
        assert_eq!(buf, b"first blob");
        assert_eq!(buf.capacity(), cap, "re-read must not reallocate");
    }

    #[test]
    fn empty_blob() {
        let store = PostingStore::new(InMemoryPageStore::new(), 4);
        let h = store.append(b"").unwrap();
        assert_eq!(h.len, 0);
        assert_eq!(store.read(h).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn encoding_config_byte_roundtrip() {
        for encoding in ALL_ENCODINGS {
            assert_eq!(
                PostingEncoding::from_config_byte(encoding.config_byte()),
                Some(encoding)
            );
            assert_eq!(encoding.name().parse::<PostingEncoding>(), Ok(encoding));
        }
        assert_eq!(PostingEncoding::from_config_byte(99), None);
        assert!("zstd".parse::<PostingEncoding>().is_err());
    }
}
