//! Page store backends.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::iostats::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};

/// Errors produced by page stores and the snapshot format.
#[derive(Debug)]
pub enum StorageError {
    /// The requested page does not exist.
    PageOutOfBounds {
        /// Requested page id.
        requested: PageId,
        /// Number of pages currently allocated.
        allocated: u64,
    },
    /// An underlying I/O error (file backend only).
    Io(std::io::Error),
    /// Persisted data failed validation (bad magic, checksum mismatch,
    /// truncation, malformed section).
    Corrupt {
        /// Human-readable description of what failed to validate.
        context: String,
    },
    /// A persisted file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A write was rejected because the log's fence epoch is stale: a
    /// replica has been promoted at a higher epoch, so this handle belongs
    /// to a **deposed leader**. The write was refused *before* any byte
    /// landed — nothing to ack, nothing to replay — which is what keeps a
    /// partitioned-but-alive old leader from silently diverging from the
    /// promoted fleet. Not transient: no retry makes a deposed leader
    /// current again.
    Fenced {
        /// Fence epoch stamped in this log's header.
        epoch: u64,
        /// Minimum epoch the fence admits (the promoted leader's).
        required: u64,
    },
    /// A physical page read failed. The buffer pool annotates every failed
    /// fetch with the page id, the backend it was reading from and the
    /// number of attempts it made (transient faults are retried with a
    /// bounded deterministic backoff), so a query-level error can name the
    /// exact page that faulted instead of a bare `EIO`.
    PageRead {
        /// Page id of the failed read.
        page: PageId,
        /// Short name of the backend the read was issued against (see
        /// [`PageStore::backend_name`]).
        backend: &'static str,
        /// Number of physical read attempts made before giving up (1 =
        /// no retry was possible or budgeted).
        attempts: u32,
        /// The underlying failure.
        source: Box<StorageError>,
    },
}

impl StorageError {
    /// Shorthand for a [`StorageError::Corrupt`] with the given context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        StorageError::Corrupt {
            context: context.into(),
        }
    }

    /// Annotates `source` as a failed read of `page` against `backend`
    /// after `attempts` physical attempts. Already-annotated errors are
    /// passed through unchanged (the page that faulted first is the one
    /// worth reporting).
    pub fn page_read(
        page: PageId,
        backend: &'static str,
        attempts: u32,
        source: StorageError,
    ) -> Self {
        match source {
            already @ StorageError::PageRead { .. } => already,
            source => StorageError::PageRead {
                page,
                backend,
                attempts,
                source: Box::new(source),
            },
        }
    }

    /// Whether this failure is plausibly transient — worth retrying with a
    /// backoff. Only raw I/O errors qualify: a page that is out of bounds,
    /// corrupt, or written by an incompatible version will not get better
    /// by asking again.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(_) => true,
            StorageError::PageRead { source, .. } => source.is_transient(),
            _ => false,
        }
    }

    /// The page id this error is attributed to, when the failing layer
    /// recorded one.
    pub fn page_id(&self) -> Option<PageId> {
        match self {
            StorageError::PageRead { page, .. } => Some(*page),
            StorageError::PageOutOfBounds { requested, .. } => Some(*requested),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageOutOfBounds {
                requested,
                allocated,
            } => {
                write!(f, "page {requested} out of bounds ({allocated} allocated)")
            }
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt { context } => write!(f, "corrupt data: {context}"),
            StorageError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported format version {found} (expected {expected})"
                )
            }
            StorageError::Fenced { epoch, required } => {
                write!(
                    f,
                    "WAL fenced: epoch {epoch} is stale (a leader at epoch \
                     {required} has been promoted); this leader is deposed"
                )
            }
            StorageError::PageRead {
                page,
                backend,
                attempts,
                source,
            } => {
                if *attempts > 1 {
                    write!(
                        f,
                        "reading page {page} from {backend} store \
                         (after {attempts} attempts): {source}"
                    )
                } else {
                    write!(f, "reading page {page} from {backend} store: {source}")
                }
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::PageRead { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// A store of fixed-size pages addressed by [`PageId`].
///
/// All implementations record physical reads and writes into the shared
/// [`IoStats`] handle returned by [`PageStore::io_stats`].
pub trait PageStore: Send + Sync {
    /// Allocates a new zeroed page and returns its id.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Reads a whole page.
    fn read_page(&self, id: PageId) -> StorageResult<Page>;

    /// Overwrites a whole page.
    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()>;

    /// Number of pages currently allocated.
    fn num_pages(&self) -> u64;

    /// Forces buffered writes down to durable storage (fsync for file
    /// backends; a no-op for memory backends).
    fn flush(&self) -> StorageResult<()>;

    /// The shared I/O statistics handle.
    fn io_stats(&self) -> Arc<IoStats>;

    /// Short human-readable name of the backend, used to annotate read
    /// failures (see [`StorageError::PageRead`]). Wrappers report their own
    /// name; the page id pins the failure regardless of nesting.
    fn backend_name(&self) -> &'static str {
        "page"
    }
}

impl PageStore for Box<dyn PageStore> {
    fn allocate(&self) -> StorageResult<PageId> {
        (**self).allocate()
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        (**self).read_page(id)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        (**self).write_page(id, page)
    }

    fn num_pages(&self) -> u64 {
        (**self).num_pages()
    }

    fn flush(&self) -> StorageResult<()> {
        (**self).flush()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        (**self).io_stats()
    }

    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
}

/// A purely in-memory page store.
///
/// This is the default backend for tests and benchmarks: it is deterministic
/// and its I/O counters stand in for the disk accesses of the original
/// system. Wrap it in [`SimulatedDiskStore`] to also model per-page latency.
pub struct InMemoryPageStore {
    pages: Mutex<Vec<Page>>,
    stats: Arc<IoStats>,
}

impl InMemoryPageStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self {
            pages: Mutex::new(Vec::new()),
            stats: IoStats::new_shared(),
        }
    }

    /// Creates an empty store that shares the given statistics handle.
    pub fn with_stats(stats: Arc<IoStats>) -> Self {
        Self {
            pages: Mutex::new(Vec::new()),
            stats,
        }
    }
}

impl Default for InMemoryPageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for InMemoryPageStore {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.lock();
        pages.push(Page::zeroed());
        Ok((pages.len() - 1) as PageId)
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or(StorageError::PageOutOfBounds {
                requested: id,
                allocated: pages.len() as u64,
            })?;
        self.stats.record_reads(1);
        Ok(page.clone())
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let len = pages.len() as u64;
        let slot = pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageOutOfBounds {
                requested: id,
                allocated: len,
            })?;
        *slot = page.clone();
        self.stats.record_writes(1);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn flush(&self) -> StorageResult<()> {
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn backend_name(&self) -> &'static str {
        "in-memory"
    }
}

/// A file-backed page store: the real-disk backend behind engine snapshots.
///
/// Pages are stored contiguously in a single file at page-aligned offsets
/// (`page_id * PAGE_SIZE`), so every `read_page`/`write_page` is one aligned
/// `pread`/`pwrite`-shaped access. [`PageStore::flush`] calls `fsync`, and
/// physical reads/writes are counted through the same [`IoStats`] handle the
/// in-memory backend uses — query I/O accounting is backend-independent.
pub struct FilePageStore {
    file: Mutex<File>,
    num_pages: Mutex<u64>,
    stats: Arc<IoStats>,
}

impl FilePageStore {
    /// Creates (or truncates) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        Self::create_with_stats(path, IoStats::new_shared())
    }

    /// Creates (or truncates) a page file sharing the given statistics
    /// handle.
    pub fn create_with_stats<P: AsRef<Path>>(path: P, stats: Arc<IoStats>) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file: Mutex::new(file),
            num_pages: Mutex::new(0),
            stats,
        })
    }

    /// Opens an existing page file at `path` for reading and writing.
    /// Rejects files whose length is not page-aligned (a truncated or
    /// foreign file).
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        Self::open_with_stats(path, IoStats::new_shared())
    }

    /// Opens an existing page file sharing the given statistics handle.
    pub fn open_with_stats<P: AsRef<Path>>(path: P, stats: Arc<IoStats>) -> StorageResult<Self> {
        Self::open_impl(path.as_ref(), stats, true)
    }

    /// Opens an existing page file **read-only** — the mode snapshot cold
    /// opens use, so a snapshot deployed as a read-only artifact (chmod 444,
    /// read-only volume mount) still serves queries. `write_page` and
    /// `allocate` on a read-only store fail with [`StorageError::Io`].
    pub fn open_read_only<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        Self::open_impl(path.as_ref(), IoStats::new_shared(), false)
    }

    fn open_impl(path: &Path, stats: Arc<IoStats>, writable: bool) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(writable).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::corrupt(format!(
                "page file {} has length {len}, not a multiple of the page size",
                path.display()
            )));
        }
        Ok(Self {
            file: Mutex::new(file),
            num_pages: Mutex::new(len / PAGE_SIZE as u64),
            stats,
        })
    }
}

impl PageStore for FilePageStore {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut n = self.num_pages.lock();
        let id = *n;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(&[0u8; PAGE_SIZE])?;
        *n += 1;
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let n = *self.num_pages.lock();
        if id >= n {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                allocated: n,
            });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        let mut page = Page::zeroed();
        file.read_exact(page.bytes_mut())?;
        self.stats.record_reads(1);
        Ok(page)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let n = *self.num_pages.lock();
        if id >= n {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                allocated: n,
            });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(page.bytes())?;
        self.stats.record_writes(1);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        *self.num_pages.lock()
    }

    fn flush(&self) -> StorageResult<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn backend_name(&self) -> &'static str {
        "file"
    }
}

/// Wraps another page store and adds a fixed latency to every physical page
/// read, emulating a spinning disk or remote object store.
///
/// The paper's 194 GB dataset lives on disk; on a laptop-scale reproduction
/// the working set fits in RAM, which would hide the I/O cost the indexes are
/// designed to avoid. A small simulated latency (default 50 µs/page — a cheap
/// SSD random read) restores the relative cost structure without requiring
/// massive data volumes.
pub struct SimulatedDiskStore<S: PageStore> {
    inner: S,
    read_latency: Duration,
    write_latency: Duration,
}

impl<S: PageStore> SimulatedDiskStore<S> {
    /// Wraps `inner` with the default latency model (50 µs reads, 50 µs
    /// writes).
    pub fn new(inner: S) -> Self {
        Self::with_latency(inner, Duration::from_micros(50), Duration::from_micros(50))
    }

    /// Wraps `inner` with explicit read/write latencies.
    pub fn with_latency(inner: S, read_latency: Duration, write_latency: Duration) -> Self {
        Self {
            inner,
            read_latency,
            write_latency,
        }
    }

    /// Read latency applied per page.
    pub fn read_latency(&self) -> Duration {
        self.read_latency
    }

    /// The wrapped store, bypassing the latency model (bulk page export
    /// during snapshots).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn spin(duration: Duration) {
        if duration.is_zero() {
            return;
        }
        // Busy-wait: sleep() has millisecond-scale granularity on many
        // platforms which would distort microsecond-scale latencies.
        let start = std::time::Instant::now();
        while start.elapsed() < duration {
            std::hint::spin_loop();
        }
    }
}

impl<S: PageStore> PageStore for SimulatedDiskStore<S> {
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        Self::spin(self.read_latency);
        self.inner.read_page(id)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        Self::spin(self.write_latency);
        self.inner.write_page(id, page)
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn flush(&self) -> StorageResult<()> {
        self.inner.flush()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &dyn PageStore) {
        let id = store.allocate().unwrap();
        let mut page = Page::zeroed();
        page.bytes_mut()[0] = 0xAB;
        page.bytes_mut()[PAGE_SIZE - 1] = 0xCD;
        store.write_page(id, &page).unwrap();
        let back = store.read_page(id).unwrap();
        assert_eq!(back.bytes()[0], 0xAB);
        assert_eq!(back.bytes()[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn in_memory_roundtrip_and_stats() {
        let store = InMemoryPageStore::new();
        roundtrip(&store);
        let snap = store.io_stats().snapshot();
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.page_writes, 1);
        assert_eq!(store.num_pages(), 1);
    }

    #[test]
    fn in_memory_out_of_bounds() {
        let store = InMemoryPageStore::new();
        assert!(matches!(
            store.read_page(3),
            Err(StorageError::PageOutOfBounds {
                requested: 3,
                allocated: 0
            })
        ));
        assert!(store.write_page(0, &Page::zeroed()).is_err());
    }

    #[test]
    fn allocation_ids_are_sequential() {
        let store = InMemoryPageStore::new();
        for expected in 0..10u64 {
            assert_eq!(store.allocate().unwrap(), expected);
        }
        assert_eq!(store.num_pages(), 10);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("streach-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            roundtrip(&store);
            assert_eq!(store.num_pages(), 1);
        }
        // Re-open and check persistence.
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 1);
        let page = store.read_page(0).unwrap();
        assert_eq!(page.bytes()[0], 0xAB);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulated_disk_preserves_semantics_and_adds_latency() {
        let store = SimulatedDiskStore::with_latency(
            InMemoryPageStore::new(),
            Duration::from_micros(200),
            Duration::ZERO,
        );
        roundtrip(&store);
        let id = store.allocate().unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            store.read_page(id).unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_micros(20 * 200),
            "latency not applied: {elapsed:?}"
        );
    }

    #[test]
    fn error_display() {
        let e = StorageError::PageOutOfBounds {
            requested: 9,
            allocated: 2,
        };
        assert!(e.to_string().contains("page 9"));
        assert!(StorageError::corrupt("bad crc")
            .to_string()
            .contains("bad crc"));
        let v = StorageError::UnsupportedVersion {
            found: 9,
            expected: 1,
        };
        assert!(v.to_string().contains("version 9"));
    }

    #[test]
    fn file_store_flush_persists_and_rejects_misaligned_files() {
        let dir = std::env::temp_dir().join(format!("streach-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            let id = store.allocate().unwrap();
            store.write_page(id, &Page::from_slice(b"durable")).unwrap();
            store.flush().unwrap();
        }
        // Append garbage so the length is no longer page-aligned.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF; 17]).unwrap();
        }
        assert!(matches!(
            FilePageStore::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn boxed_store_forwards_everything() {
        let boxed: Box<dyn PageStore> = Box::new(InMemoryPageStore::new());
        roundtrip(&boxed);
        assert_eq!(boxed.num_pages(), 1);
        assert!(boxed.flush().is_ok());
        assert_eq!(boxed.io_stats().snapshot().page_reads, 1);
    }
}
