//! An LRU buffer pool in front of a page store.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

use crate::iostats::IoStats;
use crate::page::{Page, PageId};
use crate::pagestore::{PageStore, StorageError, StorageResult};

/// A fixed-capacity LRU cache of pages.
///
/// Read requests first consult the cache; hits avoid touching the underlying
/// [`PageStore`] (and therefore avoid its latency and read counters), misses
/// fetch the page and possibly evict the least-recently-used cached page.
/// This mirrors the original system, where repeated accesses to the same
/// ST-Index posting pages (e.g. the start segment's time list) are served
/// from memory while the bulk of the trace-back search still pays disk I/O.
///
/// Pages are cached in their **on-disk encoding**: with delta/varint
/// posting compression (see [`crate::postings`]) a pool slot holds the
/// compressed bytes, so the same `pool_pages` budget keeps roughly
/// `decode_ratio` times more postings resident. [`IoStats`] splits the two
/// views as `bytes_resident` (stored bytes fetched) vs `bytes_decoded`
/// (fixed-width-equivalent bytes produced by decoding them).
///
/// # Concurrency
///
/// * **In-flight fetch coalescing.** When several threads miss on the same
///   page simultaneously (common during parallel annulus verification, where
///   neighbouring segments share posting pages), exactly one thread — the
///   *leader* — issues the physical store read; the others block on the
///   in-flight entry and are handed the fetched page. One miss and one
///   physical `page_reads` increment are recorded for the leader; followers
///   record cache hits, since their request is served from memory. If the
///   leader's read fails, followers fall back to their own store read.
/// * **O(1) eviction.** Recency order lives in an intrusive doubly-linked
///   list threaded through a slab of nodes, so refreshing a page on a cache
///   hit and selecting the LRU victim on a miss are both constant time —
///   the previous implementation scanned the whole pool per eviction.
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    /// Number of *extra* physical read attempts made when a fetch fails
    /// with a transient error (see [`StorageError::is_transient`]).
    read_retries: u32,
    inner: Mutex<LruInner>,
    stats: Arc<IoStats>,
}

/// Default number of transient-read retries per fetch (so a fetch makes at
/// most `1 + DEFAULT_READ_RETRIES` physical attempts).
pub const DEFAULT_READ_RETRIES: u32 = 2;

/// Base backoff before the first retry; each further retry doubles it. The
/// wait is spin-based (like [`crate::SimulatedDiskStore`]) so the schedule
/// is deterministic at microsecond scale.
const RETRY_BACKOFF_BASE_US: u64 = 50;

/// Slab index standing in for "no node".
const NIL: u32 = u32::MAX;

struct Node {
    /// Pages are `Arc`d so a read can take a reference out of the critical
    /// section with one atomic bump — parallel verification workers must not
    /// serialize on the pool lock for the duration of their posting-byte
    /// copies.
    page: Arc<Page>,
    id: PageId,
    prev: u32,
    next: u32,
}

struct LruInner {
    /// page id -> slab index of its node.
    map: HashMap<PageId, u32>,
    /// Node slab; the recency list is threaded through `prev`/`next`. The
    /// slab never shrinks below the pool capacity: eviction reuses the
    /// victim's slot in place and [`BufferPool::clear`] empties it wholesale.
    nodes: Vec<Node>,
    /// Most recently used node, or [`NIL`].
    head: u32,
    /// Least recently used node (the eviction victim), or [`NIL`].
    tail: u32,
    /// Fetches currently being performed by a leader thread.
    in_flight: HashMap<PageId, Arc<InFlight>>,
}

/// Rendezvous point for threads waiting on a page another thread is
/// currently fetching. `std::sync` primitives are used directly because the
/// `parking_lot` shim has no condition variables.
struct InFlight {
    /// `None` while the fetch is in progress; `Some(Some(page))` on success,
    /// `Some(None)` when the leader's read failed (followers then retry on
    /// their own).
    slot: StdMutex<Option<Option<Arc<Page>>>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Self {
        Self {
            slot: StdMutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, page: Option<Arc<Page>>) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(page);
        self.ready.notify_all();
    }

    fn wait(&self) -> Option<Arc<Page>> {
        let mut guard = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl LruInner {
    /// Detaches a node from the recency list (it stays in the slab).
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let node = &self.nodes[idx as usize];
            (node.prev, node.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Prepends a detached node at the most-recently-used position.
    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let node = &mut self.nodes[idx as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Refreshes a resident page's recency and returns it. O(1).
    fn touch(&mut self, id: PageId) -> Option<Arc<Page>> {
        let idx = *self.map.get(&id)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(Arc::clone(&self.nodes[idx as usize].page))
    }

    /// Inserts (or refreshes) a page, evicting the LRU victim when full.
    /// O(1): the victim is the list tail, its slab slot is reused in place.
    fn insert(&mut self, id: PageId, page: Arc<Page>, capacity: usize) {
        if let Some(&idx) = self.map.get(&id) {
            self.nodes[idx as usize].page = page;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.map.len() >= capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let node = &mut self.nodes[victim as usize];
            self.map.remove(&node.id);
            node.page = page;
            node.id = id;
            victim
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                page,
                id,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.map.insert(id, idx);
        self.push_front(idx);
    }
}

impl<S: PageStore> BufferPool<S> {
    /// Creates a buffer pool caching up to `capacity` pages, with the
    /// default transient-read retry budget ([`DEFAULT_READ_RETRIES`]).
    pub fn new(store: S, capacity: usize) -> Self {
        Self::with_retries(store, capacity, DEFAULT_READ_RETRIES)
    }

    /// Creates a buffer pool with an explicit retry budget: a fetch whose
    /// physical read fails with a *transient* error (`EIO`-class, see
    /// [`StorageError::is_transient`]) is retried up to `read_retries`
    /// times with a deterministic doubling backoff before the failure is
    /// surfaced. `0` disables retries entirely.
    pub fn with_retries(store: S, capacity: usize, read_retries: u32) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        let stats = store.io_stats();
        Self {
            store,
            capacity,
            read_retries,
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                nodes: Vec::with_capacity(capacity),
                head: NIL,
                tail: NIL,
                in_flight: HashMap::new(),
            }),
            stats,
        }
    }

    /// The configured transient-read retry budget.
    pub fn read_retries(&self) -> u32 {
        self.read_retries
    }

    /// One physical read with the bounded transient-error retry loop. The
    /// backoff schedule is deterministic (50 µs, 100 µs, ... spin-waited),
    /// so a test scripting an ordinal-addressed fault observes the same
    /// attempt sequence on every run. Returns the page together with the
    /// number of attempts actually made.
    fn read_with_retries(&self, id: PageId) -> (Result<Page, StorageError>, u32) {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.store.read_page(id) {
                Ok(page) => return (Ok(page), attempt),
                Err(e) if e.is_transient() && attempt <= self.read_retries => {
                    Self::backoff(attempt);
                }
                Err(e) => return (Err(e), attempt),
            }
        }
    }

    /// Deterministic doubling backoff before retry number `attempt`.
    fn backoff(attempt: u32) {
        let wait = std::time::Duration::from_micros(RETRY_BACKOFF_BASE_US << (attempt - 1).min(10));
        let start = std::time::Instant::now();
        while start.elapsed() < wait {
            std::hint::spin_loop();
        }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// The shared I/O statistics handle (same as the underlying store's).
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Access to the wrapped store (e.g. for allocation during bulk loads).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Allocates a new page in the underlying store.
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.store.allocate()
    }

    /// Fetches a page through the cache, coalescing concurrent misses.
    /// The leader's physical read runs the bounded transient-retry loop
    /// ([`BufferPool::with_retries`]), so a one-shot `EIO` is absorbed
    /// without any waiter observing it.
    ///
    /// Failure contract: a failed physical read is **never** inserted into
    /// the cache and its in-flight entry is removed before the error is
    /// published, so every waiter observes the failure (directly or through
    /// its own retried read) and a later fetch goes back to the store
    /// instead of being served a phantom page. Errors are annotated with
    /// the page id, backend and attempt count ([`StorageError::PageRead`]).
    fn fetch(&self, id: PageId) -> StorageResult<Arc<Page>> {
        enum Role {
            Hit(Arc<Page>),
            Follower(Arc<InFlight>),
            Leader(Arc<InFlight>),
        }
        // A follower whose leader failed retries from the top (rare path);
        // iterative so a persistently failing page cannot grow the stack.
        loop {
            let role = {
                let mut inner = self.inner.lock();
                if let Some(page) = inner.touch(id) {
                    Role::Hit(page)
                } else if let Some(pending) = inner.in_flight.get(&id) {
                    Role::Follower(Arc::clone(pending))
                } else {
                    let pending = Arc::new(InFlight::new());
                    inner.in_flight.insert(id, Arc::clone(&pending));
                    Role::Leader(pending)
                }
            };
            match role {
                Role::Hit(page) => {
                    self.stats.record_hit();
                    return Ok(page);
                }
                Role::Follower(pending) => match pending.wait() {
                    Some(page) => {
                        // Served from memory without touching the store: a hit.
                        self.stats.record_hit();
                        return Ok(page);
                    }
                    // Leader failed; retry independently.
                    None => continue,
                },
                Role::Leader(pending) => {
                    self.stats.record_miss();
                    let (result, attempts) = self.read_with_retries(id);
                    let mut inner = self.inner.lock();
                    inner.in_flight.remove(&id);
                    match result {
                        Ok(page) => {
                            let page = Arc::new(page);
                            inner.insert(id, Arc::clone(&page), self.capacity);
                            drop(inner);
                            pending.publish(Some(page.clone()));
                            return Ok(page);
                        }
                        Err(e) => {
                            drop(inner);
                            pending.publish(None);
                            return Err(StorageError::page_read(
                                id,
                                self.store.backend_name(),
                                attempts,
                                e,
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Runs `f` against a page without handing out an owned copy: on a cache
    /// hit the pooled page is retained with one `Arc` bump (no allocation,
    /// no byte copy) and the closure runs *outside* the pool lock, so
    /// parallel verification workers never serialize on each other's reads.
    /// This is the backbone of the query hot path — posting reads copy the
    /// bytes they need straight into a caller-owned scratch buffer.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let page = self.fetch(id)?;
        Ok(f(&page))
    }

    /// Reads a page through the cache.
    pub fn read_page(&self, id: PageId) -> StorageResult<Page> {
        self.with_page(id, |page| page.clone())
    }

    /// Writes a page through the cache (write-through: the underlying store
    /// is updated immediately and the cached copy refreshed).
    pub fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.store.write_page(id, page)?;
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&id) {
            inner.insert(id, Arc::new(page.clone()), self.capacity);
        }
        Ok(())
    }

    /// Drops every cached page (counters are unaffected).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.nodes.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::{InMemoryPageStore, SimulatedDiskStore};
    use std::time::Duration;

    fn store_with_pages(n: u64) -> InMemoryPageStore {
        let store = InMemoryPageStore::new();
        for i in 0..n {
            let id = store.allocate().unwrap();
            let mut page = Page::zeroed();
            page.bytes_mut()[0] = i as u8;
            store.write_page(id, &page).unwrap();
        }
        store.io_stats().reset();
        store
    }

    #[test]
    fn hit_after_first_read() {
        let pool = BufferPool::new(store_with_pages(4), 4);
        pool.read_page(0).unwrap();
        pool.read_page(0).unwrap();
        pool.read_page(0).unwrap();
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.page_reads, 1);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let pool = BufferPool::new(store_with_pages(3), 2);
        pool.read_page(0).unwrap();
        pool.read_page(1).unwrap();
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.read_page(0).unwrap();
        pool.read_page(2).unwrap(); // evicts 1
        pool.io_stats().reset();
        pool.read_page(0).unwrap(); // hit
        pool.read_page(1).unwrap(); // miss (was evicted)
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn cache_never_exceeds_capacity() {
        let pool = BufferPool::new(store_with_pages(10), 3);
        for i in 0..10 {
            pool.read_page(i).unwrap();
            assert!(pool.cached_pages() <= 3);
        }
    }

    #[test]
    fn write_through_updates_cache_and_store() {
        let pool = BufferPool::new(store_with_pages(1), 2);
        pool.read_page(0).unwrap();
        let mut page = Page::zeroed();
        page.bytes_mut()[0] = 99;
        pool.write_page(0, &page).unwrap();
        // Cached copy must reflect the write.
        let cached = pool.read_page(0).unwrap();
        assert_eq!(cached.bytes()[0], 99);
        // And the underlying store as well.
        let direct = pool.store().read_page(0).unwrap();
        assert_eq!(direct.bytes()[0], 99);
    }

    #[test]
    fn clear_forces_misses() {
        let pool = BufferPool::new(store_with_pages(2), 2);
        pool.read_page(0).unwrap();
        pool.read_page(1).unwrap();
        pool.clear();
        assert_eq!(pool.cached_pages(), 0);
        pool.io_stats().reset();
        pool.read_page(0).unwrap();
        assert_eq!(pool.io_stats().snapshot().cache_misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BufferPool::new(InMemoryPageStore::new(), 0);
    }

    #[test]
    fn read_values_are_correct_after_eviction_churn() {
        let pool = BufferPool::new(store_with_pages(20), 4);
        for round in 0..3 {
            for i in 0..20u64 {
                let page = pool.read_page(i).unwrap();
                assert_eq!(page.bytes()[0], i as u8, "round {round}");
            }
        }
    }

    /// The heart of the coalescing fix: many threads missing the same page
    /// at once must issue exactly one physical read — the previous pool let
    /// every thread fetch and double-count `page_reads`.
    #[test]
    fn concurrent_misses_coalesce_to_one_read() {
        // A slow store keeps the fetch in flight long enough for every
        // thread to pile up on the same page.
        let slow = SimulatedDiskStore::with_latency(
            store_with_pages(1),
            Duration::from_millis(20),
            Duration::ZERO,
        );
        let pool = BufferPool::new(slow, 4);
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(move || {
                        let page = pool.read_page(0).unwrap();
                        assert_eq!(page.bytes()[0], 0);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.page_reads, 1, "exactly one physical read");
        assert_eq!(snap.cache_misses, 1, "exactly one miss (the leader)");
        assert_eq!(snap.cache_hits, 7, "followers are served from memory");
    }

    /// Coalescing across different pages must not serialize: concurrent
    /// fetches of distinct pages still each read once.
    #[test]
    fn distinct_pages_fetch_independently() {
        let pool = BufferPool::new(store_with_pages(8), 8);
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..8u64)
                .map(|i| {
                    scope.spawn(move || {
                        let page = pool.read_page(i).unwrap();
                        assert_eq!(page.bytes()[0], i as u8);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.page_reads, 8);
        assert_eq!(snap.cache_misses, 8);
    }

    /// A failed leader read must not poison followers: they fall back to
    /// their own fetch (which fails the same way for a truly missing page).
    #[test]
    fn leader_failure_propagates_as_error() {
        let pool = BufferPool::new(store_with_pages(1), 4);
        assert!(pool.read_page(5).is_err());
        // The in-flight entry is cleaned up: a later valid read still works.
        assert_eq!(pool.read_page(0).unwrap().bytes()[0], 0);
    }

    /// The intrusive-list LRU agrees with a naive reference model over a
    /// long pseudo-random access sequence (unlink/push_front/evict paths all
    /// exercised).
    #[test]
    fn intrusive_lru_matches_reference_model() {
        let pool = BufferPool::new(store_with_pages(32), 5);
        let mut model: Vec<u64> = Vec::new(); // most recent at the back
        let mut state = 0x1234_5678_u64;
        for round in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (state >> 33) % 32;
            assert_eq!(pool.read_page(id).unwrap().bytes()[0], id as u8);
            model.retain(|x| *x != id);
            model.push(id);
            if model.len() > 5 {
                model.remove(0);
            }
            assert_eq!(pool.cached_pages(), model.len(), "round {round}");
        }
        // Every page the model says is resident must be served as a hit.
        pool.io_stats().reset();
        for &id in &model {
            pool.read_page(id).unwrap();
        }
        assert_eq!(
            pool.io_stats().snapshot().cache_misses,
            0,
            "model and pool disagree on residency"
        );
    }

    /// Regression (fault-injection): when a coalesced fetch fails, the page
    /// must NOT be cached, every concurrent waiter must observe the error
    /// (directly or through its own retried read against the dead disk),
    /// and — once the disk recovers — a later retry must go back to the
    /// store instead of being served a phantom cached page.
    #[test]
    fn failed_coalesced_fetch_is_not_cached_and_waiters_all_error() {
        use crate::fault::FaultInjectingPageStore;

        let inner = store_with_pages(1);
        let faulty = FaultInjectingPageStore::with_seed(Box::new(inner), 7);
        let ctl = faulty.controller();
        // A dead disk with enough per-read latency that all threads pile up
        // on the same in-flight fetch before the leader's read fails.
        ctl.fail_reads_from(0);
        ctl.set_read_latency(Duration::from_millis(20));
        let pool = BufferPool::new(faulty, 4);

        let results: Vec<StorageResult<Arc<Page>>> = std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(move || pool.fetch(0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, r) in results.iter().enumerate() {
            let err = r.as_ref().expect_err("waiter must observe the failure");
            assert!(
                matches!(err, StorageError::PageRead { page: 0, .. }),
                "waiter {i}: failed fetch must be annotated with the page id, got {err}"
            );
            assert!(
                err.to_string().contains("injected EIO"),
                "waiter {i}: {err}"
            );
        }
        assert_eq!(pool.cached_pages(), 0, "a failed fetch must not be cached");

        // Disk recovers: the retry must hit the store again (a physical
        // read, not a cache hit on a phantom page).
        ctl.clear();
        let physical_before = pool.io_stats().snapshot().page_reads;
        let page = pool.read_page(0).expect("retry after recovery");
        assert_eq!(page.bytes()[0], 0);
        assert!(
            pool.io_stats().snapshot().page_reads > physical_before,
            "retry after a failed fetch must re-read from disk"
        );
    }

    /// With retries disabled, a one-shot fault on the leader's read leaves
    /// followers able to recover on their own retried read — and exactly
    /// one of the retries repopulates the cache.
    #[test]
    fn followers_recover_when_only_the_leader_read_faults() {
        use crate::fault::{FaultInjectingPageStore, ReadFault};

        let inner = store_with_pages(1);
        let faulty = FaultInjectingPageStore::with_seed(Box::new(inner), 3);
        let ctl = faulty.controller();
        ctl.fail_read_at(0, ReadFault::Eio); // only the first physical read
        ctl.set_read_latency(Duration::from_millis(20));
        let pool = BufferPool::with_retries(faulty, 4, 0);

        let results: Vec<StorageResult<Arc<Page>>> = std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..6).map(|_| scope.spawn(move || pool.fetch(0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The leader fails; every follower retries and succeeds on read #1+.
        let failures = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(failures, 1, "exactly the leader observes the one-shot EIO");
        for r in results.iter().filter(|r| r.is_ok()) {
            assert_eq!(r.as_ref().unwrap().bytes()[0], 0);
        }
        assert_eq!(pool.cached_pages(), 1, "the successful retry is cached");
    }

    /// The automatic retry absorbs a transient one-shot `EIO`: the fetch
    /// succeeds, the caller never sees the fault, and the extra physical
    /// attempt is observable through the fault controller.
    #[test]
    fn transient_eio_is_absorbed_by_the_retry_budget() {
        use crate::fault::{FaultInjectingPageStore, ReadFault};

        let inner = store_with_pages(1);
        let faulty = FaultInjectingPageStore::with_seed(Box::new(inner), 9);
        let ctl = faulty.controller();
        ctl.fail_read_at(0, ReadFault::Eio);
        let pool = BufferPool::new(faulty, 4); // default retry budget
        let page = pool.read_page(0).expect("retry must absorb the EIO");
        assert_eq!(page.bytes()[0], 0);
        assert_eq!(ctl.reads_observed(), 2, "one failed + one retried read");
        assert_eq!(pool.cached_pages(), 1, "the retried read is cached");
        // Two consecutive one-shot faults still fit the default budget.
        pool.clear();
        ctl.fail_read_at(2, ReadFault::Eio);
        ctl.fail_read_at(3, ReadFault::Eio);
        assert!(pool.read_page(0).is_ok());
        assert_eq!(ctl.reads_observed(), 5);
    }

    /// A persistent fault exhausts the budget and surfaces annotated with
    /// the attempt count; non-transient errors are not retried at all.
    #[test]
    fn persistent_eio_exhausts_budget_and_corrupt_is_not_retried() {
        use crate::fault::FaultInjectingPageStore;

        let inner = store_with_pages(1);
        let faulty = FaultInjectingPageStore::with_seed(Box::new(inner), 13);
        let ctl = faulty.controller();
        ctl.fail_reads_from(0); // dead disk
        let pool = BufferPool::with_retries(faulty, 4, 2);
        let err = pool.read_page(0).unwrap_err();
        match &err {
            StorageError::PageRead { page, attempts, .. } => {
                assert_eq!(*page, 0);
                assert_eq!(*attempts, 3, "budget of 2 retries = 3 attempts");
            }
            other => panic!("expected PageRead annotation, got {other}"),
        }
        assert!(err.to_string().contains("after 3 attempts"), "{err}");
        assert_eq!(ctl.reads_observed(), 3);
        // Out-of-bounds is permanent: exactly one attempt.
        ctl.clear();
        let before = ctl.reads_observed();
        assert!(pool.read_page(9).is_err());
        assert_eq!(
            ctl.reads_observed(),
            before + 1,
            "non-transient failures must not burn the retry budget"
        );
    }

    /// Recency order survives the intrusive list: heavy touch traffic keeps the
    /// hottest pages resident.
    #[test]
    fn frequently_touched_pages_survive_churn() {
        let pool = BufferPool::new(store_with_pages(10), 3);
        pool.read_page(0).unwrap();
        for i in 1..10u64 {
            pool.read_page(i).unwrap();
            pool.read_page(0).unwrap(); // keep page 0 hot
        }
        pool.io_stats().reset();
        pool.read_page(0).unwrap();
        assert_eq!(
            pool.io_stats().snapshot().cache_hits,
            1,
            "hot page must still be resident"
        );
    }
}
