//! An LRU buffer pool in front of a page store.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::iostats::IoStats;
use crate::page::{Page, PageId};
use crate::pagestore::{PageStore, StorageResult};

/// A fixed-capacity LRU cache of pages.
///
/// Read requests first consult the cache; hits avoid touching the underlying
/// [`PageStore`] (and therefore avoid its latency and read counters), misses
/// fetch the page and possibly evict the least-recently-used cached page.
/// This mirrors the original system, where repeated accesses to the same
/// ST-Index posting pages (e.g. the start segment's time list) are served
/// from memory while the bulk of the trace-back search still pays disk I/O.
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    inner: Mutex<LruInner>,
    stats: Arc<IoStats>,
}

struct LruInner {
    /// page id -> (page, clock of last use). Pages are `Arc`d so a read can
    /// take a reference out of the critical section with one atomic bump —
    /// parallel verification workers must not serialize on the pool lock for
    /// the duration of their posting-byte copies.
    map: HashMap<PageId, (Arc<Page>, u64)>,
    clock: u64,
}

impl<S: PageStore> BufferPool<S> {
    /// Creates a buffer pool caching up to `capacity` pages.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        let stats = store.io_stats();
        Self {
            store,
            capacity,
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                clock: 0,
            }),
            stats,
        }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// The shared I/O statistics handle (same as the underlying store's).
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Access to the wrapped store (e.g. for allocation during bulk loads).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Allocates a new page in the underlying store.
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.store.allocate()
    }

    /// Runs `f` against a page without handing out an owned copy: on a cache
    /// hit the pooled page is retained with one `Arc` bump (no allocation,
    /// no byte copy) and the closure runs *outside* the pool lock, so
    /// parallel verification workers never serialize on each other's reads.
    /// This is the backbone of the query hot path — posting reads copy the
    /// bytes they need straight into a caller-owned scratch buffer.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        if let Some(page) = self.lookup(id) {
            self.stats.record_hit();
            return Ok(f(&page));
        }
        self.stats.record_miss();
        let page = Arc::new(self.store.read_page(id)?);
        let result = f(&page);
        self.insert(id, page);
        Ok(result)
    }

    /// Reads a page through the cache.
    pub fn read_page(&self, id: PageId) -> StorageResult<Page> {
        self.with_page(id, |page| page.clone())
    }

    /// Cache lookup: refreshes the LRU stamp and hands the page out with one
    /// reference-count bump.
    fn lookup(&self, id: PageId) -> Option<Arc<Page>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let (page, last_used) = inner.map.get_mut(&id)?;
        *last_used = clock;
        Some(Arc::clone(page))
    }

    /// Inserts a freshly fetched page, evicting the least recently used
    /// entry if the pool is full.
    fn insert(&self, id: PageId, page: Arc<Page>) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&id) {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, (_, used))| *used) {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(id, (page, clock));
    }

    /// Writes a page through the cache (write-through: the underlying store
    /// is updated immediately and the cached copy refreshed).
    pub fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.store.write_page(id, page)?;
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.map.get_mut(&id) {
            *entry = (Arc::new(page.clone()), clock);
        }
        Ok(())
    }

    /// Drops every cached page (counters are unaffected).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::InMemoryPageStore;

    fn store_with_pages(n: u64) -> InMemoryPageStore {
        let store = InMemoryPageStore::new();
        for i in 0..n {
            let id = store.allocate().unwrap();
            let mut page = Page::zeroed();
            page.bytes_mut()[0] = i as u8;
            store.write_page(id, &page).unwrap();
        }
        store.io_stats().reset();
        store
    }

    #[test]
    fn hit_after_first_read() {
        let pool = BufferPool::new(store_with_pages(4), 4);
        pool.read_page(0).unwrap();
        pool.read_page(0).unwrap();
        pool.read_page(0).unwrap();
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.page_reads, 1);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let pool = BufferPool::new(store_with_pages(3), 2);
        pool.read_page(0).unwrap();
        pool.read_page(1).unwrap();
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.read_page(0).unwrap();
        pool.read_page(2).unwrap(); // evicts 1
        pool.io_stats().reset();
        pool.read_page(0).unwrap(); // hit
        pool.read_page(1).unwrap(); // miss (was evicted)
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn cache_never_exceeds_capacity() {
        let pool = BufferPool::new(store_with_pages(10), 3);
        for i in 0..10 {
            pool.read_page(i).unwrap();
            assert!(pool.cached_pages() <= 3);
        }
    }

    #[test]
    fn write_through_updates_cache_and_store() {
        let pool = BufferPool::new(store_with_pages(1), 2);
        pool.read_page(0).unwrap();
        let mut page = Page::zeroed();
        page.bytes_mut()[0] = 99;
        pool.write_page(0, &page).unwrap();
        // Cached copy must reflect the write.
        let cached = pool.read_page(0).unwrap();
        assert_eq!(cached.bytes()[0], 99);
        // And the underlying store as well.
        let direct = pool.store().read_page(0).unwrap();
        assert_eq!(direct.bytes()[0], 99);
    }

    #[test]
    fn clear_forces_misses() {
        let pool = BufferPool::new(store_with_pages(2), 2);
        pool.read_page(0).unwrap();
        pool.read_page(1).unwrap();
        pool.clear();
        assert_eq!(pool.cached_pages(), 0);
        pool.io_stats().reset();
        pool.read_page(0).unwrap();
        assert_eq!(pool.io_stats().snapshot().cache_misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BufferPool::new(InMemoryPageStore::new(), 0);
    }

    #[test]
    fn read_values_are_correct_after_eviction_churn() {
        let pool = BufferPool::new(store_with_pages(20), 4);
        for round in 0..3 {
            for i in 0..20u64 {
                let page = pool.read_page(i).unwrap();
                assert_eq!(page.bytes()[0], i as u8, "round {round}");
            }
        }
    }
}
