//! Deterministic fault injection for page stores.
//!
//! Error paths are only trustworthy if they are exercised, and real disks
//! fail in ways a test cannot provoke on demand: `EIO` halfway through a
//! query, a torn page after a power cut, a sector silently reading back as
//! zeroes. [`FaultInjectingPageStore`] wraps any [`PageStore`] and injects
//! exactly those failures under a script, so the fault-tolerance of the
//! whole query pipeline can be driven through every read it performs.
//!
//! Two scripting styles compose:
//!
//! * **Ordinal scripts** — fail the *n*-th physical read (0-based, counted
//!   across the store's lifetime) with a chosen [`ReadFault`], or fail every
//!   read from an ordinal onward. Ordinals are counted with one atomic, so a
//!   script is exact even when reads race across verification workers.
//! * **Seeded probabilistic faults** — fail each read with probability `p`,
//!   decided by hashing `(seed, ordinal)`. The decision depends only on the
//!   seed and the read's ordinal, never on thread timing, so a failing run
//!   reproduces bit-exactly from its seed.
//!
//! The wrapper is controlled through a [`FaultController`] handle that
//! remains usable after the store has been boxed into an engine, which is
//! how the fault-injection test campaign scripts faults mid-life against a
//! reopened snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::iostats::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pagestore::{PageStore, StorageError, StorageResult};

/// What an injected read failure looks like to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read fails with an I/O error (`EIO`).
    Eio,
    /// The read "succeeds" but only the first half of the page made it to
    /// disk; the rest reads back as zeroes (a torn write).
    TornPage,
    /// The read "succeeds" but the whole page reads back as zeroes (a
    /// trimmed or never-written sector).
    ZeroedPage,
}

#[derive(Default)]
struct FaultPlan {
    /// Ordinal-addressed one-shot read faults.
    read_faults: std::collections::HashMap<u64, ReadFault>,
    /// Every read with ordinal >= this fails with `EIO` (a dead disk).
    fail_reads_from: Option<u64>,
    /// Per-read `EIO` probability, decided by `mix(seed, ordinal)`.
    read_fault_probability: f64,
    /// Number of upcoming `flush` calls to fail with `EIO`.
    failing_flushes: u64,
    /// Extra latency per physical read.
    read_latency: Duration,
}

struct FaultState {
    seed: u64,
    reads: AtomicU64,
    flushes: AtomicU64,
    plan: Mutex<FaultPlan>,
}

/// Control handle for a [`FaultInjectingPageStore`]; clones share the same
/// script, and the handle outlives boxing the store into an engine.
#[derive(Clone)]
pub struct FaultController {
    state: Arc<FaultState>,
}

impl FaultController {
    /// The seed probabilistic faults are derived from.
    pub fn seed(&self) -> u64 {
        self.state.seed
    }

    /// Number of physical reads the store has been asked for so far (every
    /// attempt counts, including ones that were failed by the script).
    pub fn reads_observed(&self) -> u64 {
        self.state.reads.load(Ordering::SeqCst)
    }

    /// Scripts a one-shot fault for the read with the given lifetime
    /// ordinal (0-based).
    pub fn fail_read_at(&self, ordinal: u64, fault: ReadFault) {
        self.state.plan.lock().read_faults.insert(ordinal, fault);
    }

    /// Fails every read from `ordinal` onward with `EIO` — a disk that died
    /// and stays dead.
    pub fn fail_reads_from(&self, ordinal: u64) {
        self.state.plan.lock().fail_reads_from = Some(ordinal);
    }

    /// Fails each read with probability `p`, decided deterministically from
    /// `(seed, ordinal)`.
    pub fn set_read_fault_probability(&self, p: f64) {
        self.state.plan.lock().read_fault_probability = p.clamp(0.0, 1.0);
    }

    /// Fails the next `n` `flush` calls with `EIO`.
    pub fn fail_next_flushes(&self, n: u64) {
        self.state.plan.lock().failing_flushes = n;
    }

    /// Adds a fixed latency to every physical read (spin-waited, like
    /// [`crate::SimulatedDiskStore`], so microsecond scripts stay accurate).
    pub fn set_read_latency(&self, latency: Duration) {
        self.state.plan.lock().read_latency = latency;
    }

    /// Clears the whole script (faults and latency): subsequent operations
    /// pass through untouched. The read counter keeps running — ordinals
    /// are lifetime ordinals.
    pub fn clear(&self) {
        *self.state.plan.lock() = FaultPlan::default();
    }
}

/// SplitMix64: one multiply-xor-shift chain, enough to decorrelate
/// consecutive ordinals under one seed.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scriptable, seeded fault-injection wrapper over any [`PageStore`].
///
/// See the [module docs](crate::fault) for the scripting model. All
/// pass-through operations (allocation, writes, statistics) behave exactly
/// like the wrapped store's.
pub struct FaultInjectingPageStore {
    inner: Box<dyn PageStore>,
    state: Arc<FaultState>,
}

impl FaultInjectingPageStore {
    /// Wraps `inner` with an empty script and seed 0.
    pub fn new(inner: Box<dyn PageStore>) -> Self {
        Self::with_seed(inner, 0)
    }

    /// Wraps `inner` with an empty script; `seed` drives the probabilistic
    /// fault decisions.
    pub fn with_seed(inner: Box<dyn PageStore>, seed: u64) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState {
                seed,
                reads: AtomicU64::new(0),
                flushes: AtomicU64::new(0),
                plan: Mutex::new(FaultPlan::default()),
            }),
        }
    }

    /// A control handle for scripting faults; stays valid after the store
    /// is boxed away into an engine.
    pub fn controller(&self) -> FaultController {
        FaultController {
            state: Arc::clone(&self.state),
        }
    }

    fn injected_eio(ordinal: u64, seed: u64, what: &str) -> StorageError {
        StorageError::Io(std::io::Error::other(format!(
            "injected EIO on {what} #{ordinal} (fault seed {seed})"
        )))
    }

    fn spin(duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let start = std::time::Instant::now();
        while start.elapsed() < duration {
            std::hint::spin_loop();
        }
    }
}

impl PageStore for FaultInjectingPageStore {
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let ordinal = self.state.reads.fetch_add(1, Ordering::SeqCst);
        let (latency, fault) = {
            let plan = self.state.plan.lock();
            let fault = if let Some(&f) = plan.read_faults.get(&ordinal) {
                Some(f)
            } else if plan.fail_reads_from.is_some_and(|from| ordinal >= from) {
                Some(ReadFault::Eio)
            } else if plan.read_fault_probability > 0.0 {
                // 53 uniform bits → [0, 1): the decision depends only on
                // (seed, ordinal), never on thread timing.
                let u = (mix(self.state.seed, ordinal) >> 11) as f64 / ((1u64 << 53) as f64);
                (u < plan.read_fault_probability).then_some(ReadFault::Eio)
            } else {
                None
            };
            (plan.read_latency, fault)
        };
        // Spin outside the plan lock: concurrent reads must overlap their
        // latency (and controller calls must not block behind it), exactly
        // like [`crate::SimulatedDiskStore`].
        Self::spin(latency);
        match fault {
            None => self.inner.read_page(id),
            Some(ReadFault::Eio) => Err(Self::injected_eio(ordinal, self.state.seed, "read")),
            Some(ReadFault::ZeroedPage) => {
                // Still pay the physical read (and its accounting); the data
                // simply never comes back.
                let _ = self.inner.read_page(id)?;
                Ok(Page::zeroed())
            }
            Some(ReadFault::TornPage) => {
                let mut page = self.inner.read_page(id)?;
                page.bytes_mut()[PAGE_SIZE / 2..].fill(0);
                Ok(page)
            }
        }
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.inner.write_page(id, page)
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn flush(&self) -> StorageResult<()> {
        let ordinal = self.state.flushes.fetch_add(1, Ordering::SeqCst);
        {
            let mut plan = self.state.plan.lock();
            if plan.failing_flushes > 0 {
                plan.failing_flushes -= 1;
                return Err(Self::injected_eio(ordinal, self.state.seed, "flush"));
            }
        }
        self.inner.flush()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }

    fn backend_name(&self) -> &'static str {
        "fault-injecting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::InMemoryPageStore;

    fn store_with_pages(n: u64) -> FaultInjectingPageStore {
        let inner = InMemoryPageStore::new();
        for i in 0..n {
            let id = inner.allocate().unwrap();
            let mut page = Page::zeroed();
            page.bytes_mut()[0] = i as u8;
            page.bytes_mut()[PAGE_SIZE - 1] = 0xEE;
            inner.write_page(id, &page).unwrap();
        }
        FaultInjectingPageStore::with_seed(Box::new(inner), 42)
    }

    #[test]
    fn passthrough_without_script() {
        let store = store_with_pages(3);
        for i in 0..3u64 {
            assert_eq!(store.read_page(i).unwrap().bytes()[0], i as u8);
        }
        assert_eq!(store.controller().reads_observed(), 3);
        assert!(store.flush().is_ok());
        assert_eq!(store.num_pages(), 3);
    }

    #[test]
    fn scripted_ordinal_fails_exactly_once() {
        let store = store_with_pages(2);
        let ctl = store.controller();
        ctl.fail_read_at(1, ReadFault::Eio);
        assert!(store.read_page(0).is_ok()); // ordinal 0
        let err = store.read_page(0).unwrap_err(); // ordinal 1
        assert!(err.to_string().contains("injected EIO"), "{err}");
        assert!(err.to_string().contains("seed 42"), "{err}");
        assert!(store.read_page(0).is_ok()); // ordinal 2: one-shot
    }

    #[test]
    fn dead_disk_fails_everything_until_cleared() {
        let store = store_with_pages(1);
        let ctl = store.controller();
        ctl.fail_reads_from(0);
        for _ in 0..4 {
            assert!(store.read_page(0).is_err());
        }
        ctl.clear();
        assert!(store.read_page(0).is_ok());
    }

    #[test]
    fn torn_and_zeroed_pages_lose_data_without_erroring() {
        let store = store_with_pages(1);
        let ctl = store.controller();
        ctl.fail_read_at(0, ReadFault::TornPage);
        ctl.fail_read_at(1, ReadFault::ZeroedPage);
        let torn = store.read_page(0).unwrap();
        assert_eq!(torn.bytes()[0], 0, "first half survives");
        assert_eq!(torn.bytes()[PAGE_SIZE - 1], 0, "second half zeroed");
        let zeroed = store.read_page(0).unwrap();
        assert!(zeroed.bytes().iter().all(|&b| b == 0));
        let clean = store.read_page(0).unwrap();
        assert_eq!(clean.bytes()[PAGE_SIZE - 1], 0xEE);
    }

    #[test]
    fn probabilistic_faults_reproduce_bit_exactly_per_seed() {
        let decisions = |seed: u64| -> Vec<bool> {
            let store = {
                let inner = InMemoryPageStore::new();
                inner.allocate().unwrap();
                FaultInjectingPageStore::with_seed(Box::new(inner), seed)
            };
            store.controller().set_read_fault_probability(0.3);
            (0..200).map(|_| store.read_page(0).is_err()).collect()
        };
        let a = decisions(7);
        let b = decisions(7);
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        let failures = a.iter().filter(|&&f| f).count();
        assert!(
            (20..=100).contains(&failures),
            "p=0.3 over 200 reads gave {failures} failures"
        );
        let c = decisions(8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn flush_faults_are_counted_down() {
        let store = store_with_pages(1);
        let ctl = store.controller();
        ctl.fail_next_flushes(2);
        assert!(store.flush().is_err());
        assert!(store.flush().is_err());
        assert!(store.flush().is_ok());
    }

    #[test]
    fn read_latency_is_applied() {
        let store = store_with_pages(1);
        store
            .controller()
            .set_read_latency(Duration::from_micros(200));
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            store.read_page(0).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_micros(10 * 200));
    }
}
