//! Deterministic fault injection for page stores.
//!
//! Error paths are only trustworthy if they are exercised, and real disks
//! fail in ways a test cannot provoke on demand: `EIO` halfway through a
//! query, a torn page after a power cut, a sector silently reading back as
//! zeroes. [`FaultInjectingPageStore`] wraps any [`PageStore`] and injects
//! exactly those failures under a script, so the fault-tolerance of the
//! whole query pipeline can be driven through every read it performs.
//!
//! Two scripting styles compose:
//!
//! * **Ordinal scripts** — fail the *n*-th physical read (0-based, counted
//!   across the store's lifetime) with a chosen [`ReadFault`], or fail every
//!   read from an ordinal onward. Ordinals are counted with one atomic, so a
//!   script is exact even when reads race across verification workers.
//! * **Seeded probabilistic faults** — fail each read with probability `p`,
//!   decided by hashing `(seed, ordinal)`. The decision depends only on the
//!   seed and the read's ordinal, never on thread timing, so a failing run
//!   reproduces bit-exactly from its seed.
//!
//! The wrapper is controlled through a [`FaultController`] handle that
//! remains usable after the store has been boxed into an engine, which is
//! how the fault-injection test campaign scripts faults mid-life against a
//! reopened snapshot.
//!
//! The controller also scripts the **write path** of the streaming-ingest
//! subsystem: ordinal-addressed page-write `EIO`s (the delta posting heap
//! appends through `write_page`) and WAL append faults (`EIO` before any
//! byte lands, or a torn append simulating a crash mid-write — see
//! [`AppendFault`] and [`crate::Wal::open_with_controller`]). A detached
//! controller ([`FaultController::detached`]) can drive a WAL alone or be
//! shared between a WAL and a store via
//! [`FaultInjectingPageStore::with_controller`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::iostats::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pagestore::{PageStore, StorageError, StorageResult};

/// What an injected read failure looks like to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read fails with an I/O error (`EIO`).
    Eio,
    /// The read "succeeds" but only the first half of the page made it to
    /// disk; the rest reads back as zeroes (a torn write).
    TornPage,
    /// The read "succeeds" but the whole page reads back as zeroes (a
    /// trimmed or never-written sector).
    ZeroedPage,
}

/// What an injected [`crate::Wal`] append failure looks like. Scripted by
/// **record ordinal** (not attempt ordinal) and consumed one-shot, so a
/// failed-and-retried append is not re-failed by the same script entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// The append fails with an I/O error before any byte reaches the file;
    /// a retry of the same record can succeed.
    Eio,
    /// A simulated crash mid-append: half the frame is persisted, then the
    /// "process dies" — the WAL handle is poisoned and only a re-open (which
    /// truncates the torn tail) recovers.
    TornAppend,
}

#[derive(Default)]
struct FaultPlan {
    /// Ordinal-addressed one-shot read faults.
    read_faults: std::collections::HashMap<u64, ReadFault>,
    /// Every read with ordinal >= this fails with `EIO` (a dead disk).
    fail_reads_from: Option<u64>,
    /// Per-read `EIO` probability, decided by `mix(seed, ordinal)`.
    read_fault_probability: f64,
    /// Ordinal-addressed one-shot page-write `EIO`s.
    write_faults: std::collections::HashSet<u64>,
    /// Every page write with ordinal >= this fails with `EIO`.
    fail_writes_from: Option<u64>,
    /// Record-ordinal-addressed one-shot WAL append faults (consumed on
    /// use).
    append_faults: std::collections::HashMap<u64, AppendFault>,
    /// Attempt-ordinal-addressed one-shot WAL append faults: stable under
    /// WAL rotation, which resets record ordinals per generation.
    append_attempt_faults: std::collections::HashMap<u64, AppendFault>,
    /// Attempt-ordinal-addressed one-shot WAL fsync `EIO`s.
    sync_faults: std::collections::HashSet<u64>,
    /// Number of upcoming WAL fsync attempts to fail with `EIO`.
    failing_syncs: u64,
    /// Number of upcoming `flush` calls to fail with `EIO`.
    failing_flushes: u64,
    /// Extra latency per physical read.
    read_latency: Duration,
}

struct FaultState {
    seed: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    appends: AtomicU64,
    syncs: AtomicU64,
    flushes: AtomicU64,
    plan: Mutex<FaultPlan>,
}

/// Control handle for a [`FaultInjectingPageStore`]; clones share the same
/// script, and the handle outlives boxing the store into an engine.
#[derive(Clone)]
pub struct FaultController {
    state: Arc<FaultState>,
}

impl FaultController {
    /// Creates a controller that is not (yet) attached to any store: the
    /// handle for scripting [`crate::Wal`] append faults
    /// ([`crate::Wal::open_with_controller`]), or for sharing one script
    /// between a store ([`FaultInjectingPageStore::with_controller`]) and a
    /// WAL.
    pub fn detached(seed: u64) -> Self {
        Self {
            state: Arc::new(FaultState {
                seed,
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                appends: AtomicU64::new(0),
                syncs: AtomicU64::new(0),
                flushes: AtomicU64::new(0),
                plan: Mutex::new(FaultPlan::default()),
            }),
        }
    }

    /// The seed probabilistic faults are derived from.
    pub fn seed(&self) -> u64 {
        self.state.seed
    }

    /// Number of physical reads the store has been asked for so far (every
    /// attempt counts, including ones that were failed by the script).
    pub fn reads_observed(&self) -> u64 {
        self.state.reads.load(Ordering::SeqCst)
    }

    /// Number of page writes the store has been asked for so far (every
    /// attempt counts, including scripted failures).
    pub fn writes_observed(&self) -> u64 {
        self.state.writes.load(Ordering::SeqCst)
    }

    /// Number of WAL append attempts consulted against this script.
    pub fn appends_observed(&self) -> u64 {
        self.state.appends.load(Ordering::SeqCst)
    }

    /// Scripts a one-shot fault for the read with the given lifetime
    /// ordinal (0-based).
    pub fn fail_read_at(&self, ordinal: u64, fault: ReadFault) {
        self.state.plan.lock().read_faults.insert(ordinal, fault);
    }

    /// Fails every read from `ordinal` onward with `EIO` — a disk that died
    /// and stays dead.
    pub fn fail_reads_from(&self, ordinal: u64) {
        self.state.plan.lock().fail_reads_from = Some(ordinal);
    }

    /// Fails each read with probability `p`, decided deterministically from
    /// `(seed, ordinal)`.
    pub fn set_read_fault_probability(&self, p: f64) {
        self.state.plan.lock().read_fault_probability = p.clamp(0.0, 1.0);
    }

    /// Scripts a one-shot `EIO` for the page write with the given lifetime
    /// ordinal (0-based). Page writes are the delta-heap append path of the
    /// streaming-ingest subsystem.
    pub fn fail_write_at(&self, ordinal: u64) {
        self.state.plan.lock().write_faults.insert(ordinal);
    }

    /// Fails every page write from `ordinal` onward with `EIO`.
    pub fn fail_writes_from(&self, ordinal: u64) {
        self.state.plan.lock().fail_writes_from = Some(ordinal);
    }

    /// Scripts a one-shot fault for the WAL append of the given **record
    /// ordinal** (0-based within the log's current generation). The script
    /// entry is consumed when it fires, so a retried append succeeds.
    pub fn fail_append_at(&self, ordinal: u64, fault: AppendFault) {
        self.state.plan.lock().append_faults.insert(ordinal, fault);
    }

    /// Scripts a one-shot fault for the WAL append with the given lifetime
    /// **attempt ordinal** (0-based, counted across generations) — the
    /// addressing a campaign needs when checkpoints may rotate the log
    /// (and reset record ordinals) at nondeterministic points.
    pub fn fail_append_attempt_at(&self, attempt: u64, fault: AppendFault) {
        self.state
            .plan
            .lock()
            .append_attempt_faults
            .insert(attempt, fault);
    }

    /// Consults (and consumes) the append script for `record_ordinal`.
    /// Called by [`crate::Wal::append`] when the log carries a controller.
    pub(crate) fn next_append_fault(&self, record_ordinal: u64) -> Option<AppendFault> {
        let attempt = self.state.appends.fetch_add(1, Ordering::SeqCst);
        let mut plan = self.state.plan.lock();
        plan.append_faults
            .remove(&record_ordinal)
            .or_else(|| plan.append_attempt_faults.remove(&attempt))
    }

    /// Number of WAL fsync attempts consulted against this script. With
    /// group commit, one attempt can cover many concurrently appended
    /// records.
    pub fn syncs_observed(&self) -> u64 {
        self.state.syncs.load(Ordering::SeqCst)
    }

    /// Scripts a one-shot `EIO` for the WAL fsync with the given lifetime
    /// **attempt ordinal** (0-based, counted per physical `sync_all`).
    pub fn fail_sync_at(&self, ordinal: u64) {
        self.state.plan.lock().sync_faults.insert(ordinal);
    }

    /// Fails the next `n` WAL fsync attempts with `EIO` — the scripting
    /// shape for multi-writer group-commit campaigns, where the number of
    /// physical fsyncs under a concurrent batch depends on timing.
    pub fn fail_next_syncs(&self, n: u64) {
        self.state.plan.lock().failing_syncs = n;
    }

    /// Consults (and consumes) the fsync script. Called by
    /// [`crate::Wal::sync`]'s group-commit leader when the log carries a
    /// controller; returns the faulted attempt ordinal.
    pub(crate) fn next_sync_fault(&self) -> Option<u64> {
        let ordinal = self.state.syncs.fetch_add(1, Ordering::SeqCst);
        let mut plan = self.state.plan.lock();
        if plan.sync_faults.remove(&ordinal) {
            return Some(ordinal);
        }
        if plan.failing_syncs > 0 {
            plan.failing_syncs -= 1;
            return Some(ordinal);
        }
        None
    }

    /// Fails the next `n` `flush` calls with `EIO`.
    pub fn fail_next_flushes(&self, n: u64) {
        self.state.plan.lock().failing_flushes = n;
    }

    /// Adds a fixed latency to every physical read (spin-waited, like
    /// [`crate::SimulatedDiskStore`], so microsecond scripts stay accurate).
    pub fn set_read_latency(&self, latency: Duration) {
        self.state.plan.lock().read_latency = latency;
    }

    /// Clears the whole script (faults and latency): subsequent operations
    /// pass through untouched. The read counter keeps running — ordinals
    /// are lifetime ordinals.
    pub fn clear(&self) {
        *self.state.plan.lock() = FaultPlan::default();
    }
}

/// SplitMix64: one multiply-xor-shift chain, enough to decorrelate
/// consecutive ordinals under one seed.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scriptable, seeded fault-injection wrapper over any [`PageStore`].
///
/// See the [module docs](crate::fault) for the scripting model. All
/// pass-through operations (allocation, writes, statistics) behave exactly
/// like the wrapped store's.
pub struct FaultInjectingPageStore {
    inner: Box<dyn PageStore>,
    state: Arc<FaultState>,
}

impl FaultInjectingPageStore {
    /// Wraps `inner` with an empty script and seed 0.
    pub fn new(inner: Box<dyn PageStore>) -> Self {
        Self::with_seed(inner, 0)
    }

    /// Wraps `inner` with an empty script; `seed` drives the probabilistic
    /// fault decisions.
    pub fn with_seed(inner: Box<dyn PageStore>, seed: u64) -> Self {
        Self::with_controller(inner, &FaultController::detached(seed))
    }

    /// Wraps `inner` under an existing controller, sharing its script and
    /// counters — e.g. one script driving both a page store and a WAL.
    pub fn with_controller(inner: Box<dyn PageStore>, controller: &FaultController) -> Self {
        Self {
            inner,
            state: Arc::clone(&controller.state),
        }
    }

    /// A control handle for scripting faults; stays valid after the store
    /// is boxed away into an engine.
    pub fn controller(&self) -> FaultController {
        FaultController {
            state: Arc::clone(&self.state),
        }
    }

    fn injected_eio(ordinal: u64, seed: u64, what: &str) -> StorageError {
        StorageError::Io(std::io::Error::other(format!(
            "injected EIO on {what} #{ordinal} (fault seed {seed})"
        )))
    }

    fn spin(duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let start = std::time::Instant::now();
        while start.elapsed() < duration {
            std::hint::spin_loop();
        }
    }
}

impl PageStore for FaultInjectingPageStore {
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let ordinal = self.state.reads.fetch_add(1, Ordering::SeqCst);
        let (latency, fault) = {
            let plan = self.state.plan.lock();
            let fault = if let Some(&f) = plan.read_faults.get(&ordinal) {
                Some(f)
            } else if plan.fail_reads_from.is_some_and(|from| ordinal >= from) {
                Some(ReadFault::Eio)
            } else if plan.read_fault_probability > 0.0 {
                // 53 uniform bits → [0, 1): the decision depends only on
                // (seed, ordinal), never on thread timing.
                let u = (mix(self.state.seed, ordinal) >> 11) as f64 / ((1u64 << 53) as f64);
                (u < plan.read_fault_probability).then_some(ReadFault::Eio)
            } else {
                None
            };
            (plan.read_latency, fault)
        };
        // Spin outside the plan lock: concurrent reads must overlap their
        // latency (and controller calls must not block behind it), exactly
        // like [`crate::SimulatedDiskStore`].
        Self::spin(latency);
        match fault {
            None => self.inner.read_page(id),
            Some(ReadFault::Eio) => Err(Self::injected_eio(ordinal, self.state.seed, "read")),
            Some(ReadFault::ZeroedPage) => {
                // Still pay the physical read (and its accounting); the data
                // simply never comes back.
                let _ = self.inner.read_page(id)?;
                Ok(Page::zeroed())
            }
            Some(ReadFault::TornPage) => {
                let mut page = self.inner.read_page(id)?;
                page.bytes_mut()[PAGE_SIZE / 2..].fill(0);
                Ok(page)
            }
        }
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let ordinal = self.state.writes.fetch_add(1, Ordering::SeqCst);
        let faulted = {
            let mut plan = self.state.plan.lock();
            plan.write_faults.remove(&ordinal)
                || plan.fail_writes_from.is_some_and(|from| ordinal >= from)
        };
        if faulted {
            return Err(Self::injected_eio(ordinal, self.state.seed, "write"));
        }
        self.inner.write_page(id, page)
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn flush(&self) -> StorageResult<()> {
        let ordinal = self.state.flushes.fetch_add(1, Ordering::SeqCst);
        {
            let mut plan = self.state.plan.lock();
            if plan.failing_flushes > 0 {
                plan.failing_flushes -= 1;
                return Err(Self::injected_eio(ordinal, self.state.seed, "flush"));
            }
        }
        self.inner.flush()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }

    fn backend_name(&self) -> &'static str {
        "fault-injecting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::InMemoryPageStore;

    fn store_with_pages(n: u64) -> FaultInjectingPageStore {
        let inner = InMemoryPageStore::new();
        for i in 0..n {
            let id = inner.allocate().unwrap();
            let mut page = Page::zeroed();
            page.bytes_mut()[0] = i as u8;
            page.bytes_mut()[PAGE_SIZE - 1] = 0xEE;
            inner.write_page(id, &page).unwrap();
        }
        FaultInjectingPageStore::with_seed(Box::new(inner), 42)
    }

    #[test]
    fn passthrough_without_script() {
        let store = store_with_pages(3);
        for i in 0..3u64 {
            assert_eq!(store.read_page(i).unwrap().bytes()[0], i as u8);
        }
        assert_eq!(store.controller().reads_observed(), 3);
        assert!(store.flush().is_ok());
        assert_eq!(store.num_pages(), 3);
    }

    #[test]
    fn scripted_ordinal_fails_exactly_once() {
        let store = store_with_pages(2);
        let ctl = store.controller();
        ctl.fail_read_at(1, ReadFault::Eio);
        assert!(store.read_page(0).is_ok()); // ordinal 0
        let err = store.read_page(0).unwrap_err(); // ordinal 1
        assert!(err.to_string().contains("injected EIO"), "{err}");
        assert!(err.to_string().contains("seed 42"), "{err}");
        assert!(store.read_page(0).is_ok()); // ordinal 2: one-shot
    }

    #[test]
    fn dead_disk_fails_everything_until_cleared() {
        let store = store_with_pages(1);
        let ctl = store.controller();
        ctl.fail_reads_from(0);
        for _ in 0..4 {
            assert!(store.read_page(0).is_err());
        }
        ctl.clear();
        assert!(store.read_page(0).is_ok());
    }

    #[test]
    fn torn_and_zeroed_pages_lose_data_without_erroring() {
        let store = store_with_pages(1);
        let ctl = store.controller();
        ctl.fail_read_at(0, ReadFault::TornPage);
        ctl.fail_read_at(1, ReadFault::ZeroedPage);
        let torn = store.read_page(0).unwrap();
        assert_eq!(torn.bytes()[0], 0, "first half survives");
        assert_eq!(torn.bytes()[PAGE_SIZE - 1], 0, "second half zeroed");
        let zeroed = store.read_page(0).unwrap();
        assert!(zeroed.bytes().iter().all(|&b| b == 0));
        let clean = store.read_page(0).unwrap();
        assert_eq!(clean.bytes()[PAGE_SIZE - 1], 0xEE);
    }

    #[test]
    fn probabilistic_faults_reproduce_bit_exactly_per_seed() {
        let decisions = |seed: u64| -> Vec<bool> {
            let store = {
                let inner = InMemoryPageStore::new();
                inner.allocate().unwrap();
                FaultInjectingPageStore::with_seed(Box::new(inner), seed)
            };
            store.controller().set_read_fault_probability(0.3);
            (0..200).map(|_| store.read_page(0).is_err()).collect()
        };
        let a = decisions(7);
        let b = decisions(7);
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        let failures = a.iter().filter(|&&f| f).count();
        assert!(
            (20..=100).contains(&failures),
            "p=0.3 over 200 reads gave {failures} failures"
        );
        let c = decisions(8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn scripted_write_faults_hit_exact_ordinals() {
        let store = store_with_pages(2);
        let ctl = store.controller();
        ctl.fail_write_at(1);
        let page = Page::zeroed();
        assert!(store.write_page(0, &page).is_ok()); // write ordinal 0
        let err = store.write_page(0, &page).unwrap_err(); // ordinal 1
        assert!(err.to_string().contains("injected EIO on write"), "{err}");
        assert!(store.write_page(0, &page).is_ok()); // one-shot
        assert_eq!(ctl.writes_observed(), 3);
        // A dead write path stays dead until cleared.
        ctl.fail_writes_from(3);
        assert!(store.write_page(1, &page).is_err());
        assert!(store.write_page(1, &page).is_err());
        ctl.clear();
        assert!(store.write_page(1, &page).is_ok());
    }

    #[test]
    fn shared_controller_drives_store_and_counts_independently() {
        let inner = InMemoryPageStore::new();
        inner.allocate().unwrap();
        let ctl = FaultController::detached(11);
        let store = FaultInjectingPageStore::with_controller(Box::new(inner), &ctl);
        assert_eq!(ctl.seed(), 11);
        ctl.fail_read_at(0, ReadFault::Eio);
        assert!(store.read_page(0).is_err());
        assert!(store.read_page(0).is_ok());
        assert_eq!(ctl.reads_observed(), 2);
        assert_eq!(ctl.writes_observed(), 0);
        assert_eq!(ctl.appends_observed(), 0);
    }

    #[test]
    fn flush_faults_are_counted_down() {
        let store = store_with_pages(1);
        let ctl = store.controller();
        ctl.fail_next_flushes(2);
        assert!(store.flush().is_err());
        assert!(store.flush().is_err());
        assert!(store.flush().is_ok());
    }

    #[test]
    fn read_latency_is_applied() {
        let store = store_with_pages(1);
        store
            .controller()
            .set_read_latency(Duration::from_micros(200));
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            store.read_page(0).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_micros(10 * 200));
    }
}
