//! Page-based storage substrate for the `streach` workspace.
//!
//! The paper's central engineering challenge is that "the trajectory data
//! usually cannot fit in the memory, and analyzing them involves heavy I/O to
//! disks". The original system keeps the ST-Index time lists (per road
//! segment, per time slot: date → trajectory IDs) on disk, and the whole point
//! of the Con-Index + SQMB/TBS machinery is to touch as few of those disk
//! pages as possible.
//!
//! This crate reproduces that cost model with an explicit storage engine:
//!
//! * [`page`] — fixed-size pages and page identifiers,
//! * [`pagestore`] — the [`PageStore`](pagestore::PageStore) trait with an
//!   in-memory backend, a file backend, and a simulated-latency wrapper that
//!   emulates the cost of a spinning disk / remote store,
//! * [`buffer_pool`] — an LRU buffer pool in front of any page store,
//! * [`fault`] — a deterministic, scriptable fault-injection wrapper
//!   ([`FaultInjectingPageStore`](fault::FaultInjectingPageStore)) used to
//!   drive the query pipelines through EIO, torn pages and zeroed pages,
//! * [`mmap`] — a read-only memory-mapped backend for sealed snapshot page
//!   files, serving `read_page` straight out of the mapping,
//! * [`iostats`] — shared atomic I/O counters, so query processing code can
//!   report page reads/hits exactly like the paper reports running time,
//! * [`btree`] — a from-scratch B+-tree used for the ST-Index *temporal
//!   index* over Δt time slots,
//! * [`postings`] — an append-only blob heap storing the serialized time
//!   lists (trajectory-ID posting lists) across pages,
//! * [`snapshot`] — the versioned, checksummed snapshot container format
//!   used by engine snapshots (named sections + CRC-32 seals),
//! * [`wal`] — the CRC-framed, generation-stamped write-ahead log behind
//!   streaming ingest (deterministic torn-tail recovery, scriptable append
//!   faults).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btree;
pub mod buffer_pool;
pub mod fault;
pub mod iostats;
pub mod mmap;
pub mod page;
pub mod pagestore;
pub mod postings;
pub mod snapshot;
pub mod wal;

pub use btree::BPlusTree;
pub use buffer_pool::{BufferPool, DEFAULT_READ_RETRIES};
pub use fault::{AppendFault, FaultController, FaultInjectingPageStore, ReadFault};
pub use iostats::{IoStats, IoStatsSnapshot};
pub use mmap::{MmapPageStore, StorageBackend};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pagestore::{
    FilePageStore, InMemoryPageStore, PageStore, SimulatedDiskStore, StorageError, StorageResult,
};
pub use postings::{
    get_varint_u32, posting_sizes, put_varint_u32, visit_encoded, visit_posting, BlobHandle,
    IdIter, PostingEncoding, PostingStore, TimeList, TimeListEntry,
};
pub use snapshot::{
    Crc32, SnapshotReader, SnapshotWriter, MIN_SNAPSHOT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use wal::{FollowerLog, ShippedBatch, Wal, WalRecovery, WalTail, WAL_MAGIC, WAL_VERSION};
