//! Shared I/O statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic I/O counters shared between a page store, its buffer pool and the
/// query processing code.
///
/// The paper evaluates algorithms by running time, which on the original
/// system is dominated by trajectory-posting disk reads. Tracking page reads
/// and buffer-pool hits lets the benchmark harness report both wall time and
/// the underlying I/O volume, making the ES vs SQMB+TBS comparison
/// reproducible even on machines where everything fits in RAM.
#[derive(Debug, Default)]
pub struct IoStats {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    bytes_decoded: AtomicU64,
    bytes_resident: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Number of pages read from the underlying store (cache misses included).
    pub page_reads: u64,
    /// Number of pages written to the underlying store.
    pub page_writes: u64,
    /// Number of page requests served from the buffer pool.
    pub cache_hits: u64,
    /// Number of page requests that had to go to the underlying store.
    pub cache_misses: u64,
    /// Logical (fixed-width-equivalent) bytes produced by posting decodes:
    /// the size each decoded time list *would* occupy uncompressed.
    pub bytes_decoded: u64,
    /// Encoded bytes actually resident on disk / in the buffer pool for
    /// those same posting decodes. `bytes_decoded / bytes_resident` is the
    /// per-query compression win.
    pub bytes_resident: u64,
}

impl IoStats {
    /// Creates a fresh, zeroed counter set behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records `n` physical page reads.
    #[inline]
    pub fn record_reads(&self, n: u64) {
        self.page_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` physical page writes.
    #[inline]
    pub fn record_writes(&self, n: u64) {
        self.page_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a buffer-pool hit.
    #[inline]
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool miss.
    #[inline]
    pub fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one posting decode: `decoded` logical fixed-width bytes
    /// reconstructed from `resident` encoded bytes (the compression win is
    /// `decoded / resident`). The paper's PAPERS.md survey notes that page
    /// counts alone hide this — a compressed heap reads fewer pages *and*
    /// fewer bytes per page touched.
    #[inline]
    pub fn record_posting_decode(&self, decoded: u64, resident: u64) {
        self.bytes_decoded.fetch_add(decoded, Ordering::Relaxed);
        self.bytes_resident.fetch_add(resident, Ordering::Relaxed);
    }

    /// Takes a snapshot of the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            bytes_decoded: self.bytes_decoded.load(Ordering::Relaxed),
            bytes_resident: self.bytes_resident.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.bytes_decoded.store(0, Ordering::Relaxed);
        self.bytes_resident.store(0, Ordering::Relaxed);
    }
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            bytes_decoded: self.bytes_decoded.saturating_sub(earlier.bytes_decoded),
            bytes_resident: self.bytes_resident.saturating_sub(earlier.bytes_resident),
        }
    }

    /// Compression win of the postings touched: logical decoded bytes per
    /// encoded resident byte. Returns 1.0 when nothing was decoded.
    pub fn decode_ratio(&self) -> f64 {
        if self.bytes_resident == 0 {
            1.0
        } else {
            self.bytes_decoded as f64 / self.bytes_resident as f64
        }
    }

    /// Fraction of page requests served from the cache, in `[0, 1]`.
    /// Returns 1.0 when there were no requests at all.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_reads(3);
        s.record_writes(2);
        s.record_hit();
        s.record_hit();
        s.record_miss();
        let snap = s.snapshot();
        assert_eq!(snap.page_reads, 3);
        assert_eq!(snap.page_writes, 2);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::default();
        s.record_reads(5);
        s.record_miss();
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn delta_since_subtracts() {
        let s = IoStats::default();
        s.record_reads(5);
        let t0 = s.snapshot();
        s.record_reads(7);
        s.record_hit();
        let t1 = s.snapshot();
        let d = t1.delta_since(&t0);
        assert_eq!(d.page_reads, 7);
        assert_eq!(d.cache_hits, 1);
    }

    #[test]
    fn posting_decode_bytes_accumulate_and_reset() {
        let s = IoStats::default();
        s.record_posting_decode(100, 40);
        s.record_posting_decode(50, 10);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_decoded, 150);
        assert_eq!(snap.bytes_resident, 50);
        assert!((snap.decode_ratio() - 3.0).abs() < 1e-12);
        let d = snap.delta_since(&IoStatsSnapshot {
            bytes_decoded: 100,
            bytes_resident: 40,
            ..Default::default()
        });
        assert_eq!(d.bytes_decoded, 50);
        assert_eq!(d.bytes_resident, 10);
        s.reset();
        let zero = s.snapshot();
        assert_eq!(zero, IoStatsSnapshot::default());
        assert_eq!(zero.decode_ratio(), 1.0);
    }

    #[test]
    fn hit_ratio_edge_cases() {
        let empty = IoStatsSnapshot::default();
        assert_eq!(empty.hit_ratio(), 1.0);
        let half = IoStatsSnapshot {
            cache_hits: 5,
            cache_misses: 5,
            ..Default::default()
        };
        assert!((half.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_handle_is_cloneable_across_threads() {
        let s = IoStats::new_shared();
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                s2.record_reads(1);
            }
        });
        for _ in 0..100 {
            s.record_writes(1);
        }
        h.join().unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.page_reads, 100);
        assert_eq!(snap.page_writes, 100);
    }
}
