//! A from-scratch in-memory B+-tree.
//!
//! The ST-Index (Section 3.2.1 of the paper) "build[s] a B-tree upon all the
//! small temporal intervals to speed up the temporal range selection". This
//! module provides that temporal index: an order-configurable B+-tree with
//! point lookups, ordered iteration and range queries.
//!
//! The tree is deliberately simple (keys and values live in `Vec`s inside the
//! nodes) because the temporal index is small — one entry per Δt time slot —
//! but it is a real B+-tree with node splits, so the index behaves correctly
//! for arbitrarily fine granularities (Δt = 1 min ⇒ 1440 slots per day) and
//! is reused by the Con-Index for its per-slot connection tables.

/// Default maximum number of children of an internal node.
pub const DEFAULT_ORDER: usize = 16;

/// A B+-tree mapping ordered keys to values.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    order: usize,
    root: Node<K, V>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
    },
    Internal {
        /// `keys[i]` is the smallest key stored under `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Copy, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy, V> BPlusTree<K, V> {
    /// Creates an empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with the given order (maximum number of children
    /// per internal node). Panics if `order < 3`.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+-tree order must be at least 3");
        Self {
            order,
            root: Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a key/value pair, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (replaced, split) = Self::insert_rec(&mut self.root, key, value, self.order);
        if replaced.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
        replaced
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys.binary_search(key).ok().map(|i| &mut values[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// All entries whose key lies in the inclusive range `[lo, hi]`, in key
    /// order.
    pub fn range_inclusive(&self, lo: K, hi: K) -> Vec<(K, &V)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        Self::collect_range(&self.root, &lo, &hi, &mut out);
        out
    }

    /// All entries in key order.
    pub fn iter(&self) -> Vec<(K, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect_all(&self.root, &mut out);
        out
    }

    /// Smallest key stored, if any.
    pub fn min_key(&self) -> Option<K> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, .. } => return keys.first().copied(),
                Node::Internal { children, .. } => node = &children[0],
            }
        }
    }

    /// Largest key stored, if any.
    pub fn max_key(&self) -> Option<K> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, .. } => return keys.last().copied(),
                Node::Internal { children, .. } => {
                    node = children.last().expect("internal node has children")
                }
            }
        }
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    fn collect_all<'a>(node: &'a Node<K, V>, out: &mut Vec<(K, &'a V)>) {
        match node {
            Node::Leaf { keys, values } => {
                out.extend(keys.iter().copied().zip(values.iter()));
            }
            Node::Internal { children, .. } => {
                for child in children {
                    Self::collect_all(child, out);
                }
            }
        }
    }

    fn collect_range<'a>(node: &'a Node<K, V>, lo: &K, hi: &K, out: &mut Vec<(K, &'a V)>) {
        match node {
            Node::Leaf { keys, values } => {
                let start = keys.partition_point(|k| k < lo);
                for i in start..keys.len() {
                    if keys[i] > *hi {
                        break;
                    }
                    out.push((keys[i], &values[i]));
                }
            }
            Node::Internal { keys, children } => {
                for (i, child) in children.iter().enumerate() {
                    // Child i holds keys in [keys[i-1], keys[i]).
                    let child_min_ok = i == 0 || keys[i - 1] <= *hi;
                    let child_max_ok = i == keys.len() || keys[i] > *lo;
                    if child_min_ok && child_max_ok {
                        Self::collect_range(child, lo, hi, out);
                    }
                }
            }
        }
    }

    /// Inserts into the subtree rooted at `node`. Returns the replaced value
    /// (if any) and, when the node had to split, the separator key plus the
    /// new right sibling.
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        node: &mut Node<K, V>,
        key: K,
        value: V,
        order: usize,
    ) -> (Option<V>, Option<(K, Node<K, V>)>) {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = std::mem::replace(&mut values[i], value);
                    (Some(old), None)
                }
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    if keys.len() >= order {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let sep = right_keys[0];
                        (
                            None,
                            Some((
                                sep,
                                Node::Leaf {
                                    keys: right_keys,
                                    values: right_values,
                                },
                            )),
                        )
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let (replaced, split) = Self::insert_rec(&mut children[idx], key, value, order);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if children.len() > order {
                        let mid = keys.len() / 2;
                        let up = keys[mid];
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the separator that moves up
                        let right_children = children.split_off(mid + 1);
                        let right = Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        };
                        return (replaced, Some((up, right)));
                    }
                }
                (replaced, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_small() {
        let mut t = BPlusTree::new();
        assert!(t.is_empty());
        t.insert(5u64, "five");
        t.insert(1, "one");
        t.insert(9, "nine");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.get(&1), Some(&"one"));
        assert_eq!(t.get(&9), Some(&"nine"));
        assert_eq!(t.get(&2), None);
        assert!(t.contains_key(&9));
        assert!(!t.contains_key(&10));
    }

    #[test]
    fn insert_replaces_existing() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(3u32, 30), None);
        assert_eq!(t.insert(3, 31), Some(30));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&3), Some(&31));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        t.insert(7u64, vec![1]);
        t.get_mut(&7).unwrap().push(2);
        assert_eq!(t.get(&7), Some(&vec![1, 2]));
        assert!(t.get_mut(&8).is_none());
    }

    #[test]
    fn many_inserts_stay_sorted_and_height_grows() {
        let mut t = BPlusTree::with_order(4);
        let n = 1000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let key = (i * 7919) % n;
            t.insert(key, key * 10);
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.height() > 2, "height {}", t.height());
        let all = t.iter();
        assert_eq!(all.len(), n as usize);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(**v, (i as u64) * 10);
        }
        for i in 0..n {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.min_key(), Some(0));
        assert_eq!(t.max_key(), Some(n - 1));
    }

    #[test]
    fn range_inclusive_basic() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100u64 {
            t.insert(i, i);
        }
        let r = t.range_inclusive(10, 20);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (10..=20).collect::<Vec<_>>());
        assert!(t.range_inclusive(50, 40).is_empty());
        let all = t.range_inclusive(0, 99);
        assert_eq!(all.len(), 100);
        let edge = t.range_inclusive(99, 200);
        assert_eq!(edge.len(), 1);
        assert_eq!(edge[0].0, 99);
    }

    #[test]
    fn range_on_sparse_keys() {
        let mut t = BPlusTree::with_order(5);
        for i in (0..1000u64).step_by(10) {
            t.insert(i, i / 10);
        }
        let r = t.range_inclusive(15, 55);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![20, 30, 40, 50]);
    }

    #[test]
    fn empty_tree_queries() {
        let t: BPlusTree<u64, u64> = BPlusTree::new();
        assert_eq!(t.get(&1), None);
        assert!(t.iter().is_empty());
        assert!(t.range_inclusive(0, 100).is_empty());
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_order_rejected() {
        let _: BPlusTree<u64, u64> = BPlusTree::with_order(2);
    }

    #[test]
    fn descending_and_duplicate_heavy_workload() {
        let mut t = BPlusTree::with_order(3);
        for i in (0..500u64).rev() {
            t.insert(i, i);
        }
        for i in 0..500u64 {
            t.insert(i, i + 1); // overwrite everything
        }
        assert_eq!(t.len(), 500);
        for i in 0..500u64 {
            assert_eq!(t.get(&i), Some(&(i + 1)));
        }
        let keys: Vec<u64> = t.iter().iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
