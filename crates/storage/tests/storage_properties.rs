//! Property-based tests for the storage engine.

use std::collections::BTreeMap;

use proptest::prelude::*;
use streach_storage::{BPlusTree, BufferPool, InMemoryPageStore, PageStore, PostingStore, TimeList};

proptest! {
    /// The B+-tree must behave exactly like `BTreeMap` for any sequence of
    /// insertions (including duplicate keys).
    #[test]
    fn btree_matches_btreemap(
        ops in proptest::collection::vec((0u64..500, 0u64..10_000), 1..400),
        order in 3usize..32,
    ) {
        let mut tree = BPlusTree::with_order(order);
        let mut model = BTreeMap::new();
        for (k, v) in ops {
            let expected = model.insert(k, v);
            let got = tree.insert(k, v);
            prop_assert_eq!(got, expected);
        }
        prop_assert_eq!(tree.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(tree.get(k), Some(v));
        }
        let tree_items: Vec<(u64, u64)> = tree.iter().into_iter().map(|(k, v)| (k, *v)).collect();
        let model_items: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree_items, model_items);
        prop_assert_eq!(tree.min_key(), model.keys().next().copied());
        prop_assert_eq!(tree.max_key(), model.keys().last().copied());
    }

    /// Range queries must match the model's range.
    #[test]
    fn btree_range_matches_btreemap(
        entries in proptest::collection::btree_map(0u64..1000, 0u64..100, 0..300),
        lo in 0u64..1000,
        span in 0u64..500,
        order in 3usize..16,
    ) {
        let hi = lo.saturating_add(span);
        let mut tree = BPlusTree::with_order(order);
        for (k, v) in &entries {
            tree.insert(*k, *v);
        }
        let got: Vec<(u64, u64)> = tree.range_inclusive(lo, hi).into_iter().map(|(k, v)| (k, *v)).collect();
        let expected: Vec<(u64, u64)> = entries.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Any set of blobs written to the posting store reads back bit-exact,
    /// regardless of interleaving and page-boundary crossings.
    #[test]
    fn posting_store_blob_roundtrip(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..9000), 1..20),
        pool_pages in 1usize..8,
    ) {
        let store = PostingStore::new(InMemoryPageStore::new(), pool_pages);
        let handles: Vec<_> = blobs.iter().map(|b| store.append(b).unwrap()).collect();
        for (blob, handle) in blobs.iter().zip(&handles) {
            prop_assert_eq!(&store.read(*handle).unwrap(), blob);
        }
        // Reading in reverse order must give the same results (cache churn).
        for (blob, handle) in blobs.iter().zip(&handles).rev() {
            prop_assert_eq!(&store.read(*handle).unwrap(), blob);
        }
    }

    /// Time lists round-trip through encode/decode and through the store.
    #[test]
    fn time_list_roundtrip(
        observations in proptest::collection::vec((0u16..30, 0u32..50_000), 0..200)
    ) {
        let mut list = TimeList::new();
        for (date, id) in &observations {
            list.add(*date, *id);
        }
        // Dates sorted, ids sorted and unique.
        for w in list.entries.windows(2) {
            prop_assert!(w[0].date < w[1].date);
        }
        for e in &list.entries {
            for w in e.traj_ids.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
        let decoded = TimeList::decode(&list.encode()).unwrap();
        prop_assert_eq!(&decoded, &list);

        let store = PostingStore::new(InMemoryPageStore::new(), 2);
        let handle = store.append_time_list(&list).unwrap();
        prop_assert_eq!(store.read_time_list(handle).unwrap(), list);
    }

    /// The buffer pool never changes what a page read returns, whatever the
    /// capacity and access pattern.
    #[test]
    fn buffer_pool_is_transparent(
        accesses in proptest::collection::vec(0u64..32, 1..200),
        capacity in 1usize..16,
    ) {
        let store = InMemoryPageStore::new();
        for i in 0..32u64 {
            let id = store.allocate().unwrap();
            let mut page = streach_storage::page::Page::zeroed();
            page.bytes_mut()[0] = i as u8;
            page.bytes_mut()[1] = (i * 3) as u8;
            store.write_page(id, &page).unwrap();
        }
        let pool = BufferPool::new(store, capacity);
        for id in accesses {
            let page = pool.read_page(id).unwrap();
            prop_assert_eq!(page.bytes()[0], id as u8);
            prop_assert_eq!(page.bytes()[1], (id * 3) as u8);
            prop_assert!(pool.cached_pages() <= capacity);
        }
        let snap = pool.io_stats().snapshot();
        prop_assert_eq!(snap.cache_misses, snap.page_reads);
    }
}
