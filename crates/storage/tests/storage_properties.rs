//! Randomized invariant tests for the storage engine, compared against
//! model structures (`BTreeMap`, plain byte buffers).
//!
//! Formerly written with proptest; the build environment is offline, so the
//! same properties are now exercised with a seeded deterministic RNG.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streach_storage::{
    BPlusTree, BufferPool, InMemoryPageStore, PageStore, PostingStore, TimeList,
};

/// The B+-tree must behave exactly like `BTreeMap` for any sequence of
/// insertions (including duplicate keys).
#[test]
fn btree_matches_btreemap() {
    let mut rng = StdRng::seed_from_u64(201);
    for case in 0..64 {
        let order = rng.gen_range(3..32usize);
        let num_ops = rng.gen_range(1..400usize);
        let mut tree = BPlusTree::with_order(order);
        let mut model = BTreeMap::new();
        for _ in 0..num_ops {
            let k = rng.gen_range(0..500u64);
            let v = rng.gen_range(0..10_000u64);
            let expected = model.insert(k, v);
            let got = tree.insert(k, v);
            assert_eq!(got, expected, "case {case}");
        }
        assert_eq!(tree.len(), model.len(), "case {case}");
        for (k, v) in &model {
            assert_eq!(tree.get(k), Some(v), "case {case}");
        }
        let tree_items: Vec<(u64, u64)> = tree.iter().into_iter().map(|(k, v)| (k, *v)).collect();
        let model_items: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(tree_items, model_items, "case {case}");
        assert_eq!(tree.min_key(), model.keys().next().copied(), "case {case}");
        assert_eq!(tree.max_key(), model.keys().last().copied(), "case {case}");
    }
}

/// Range queries must match the model's range.
#[test]
fn btree_range_matches_btreemap() {
    let mut rng = StdRng::seed_from_u64(202);
    for case in 0..64 {
        let order = rng.gen_range(3..16usize);
        let mut entries: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..rng.gen_range(0..300usize) {
            entries.insert(rng.gen_range(0..1000u64), rng.gen_range(0..100u64));
        }
        let lo = rng.gen_range(0..1000u64);
        let hi = lo.saturating_add(rng.gen_range(0..500u64));
        let mut tree = BPlusTree::with_order(order);
        for (k, v) in &entries {
            tree.insert(*k, *v);
        }
        let got: Vec<(u64, u64)> = tree
            .range_inclusive(lo, hi)
            .into_iter()
            .map(|(k, v)| (k, *v))
            .collect();
        let expected: Vec<(u64, u64)> = entries.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, expected, "case {case}");
    }
}

/// Any set of blobs written to the posting store reads back bit-exact,
/// regardless of interleaving and page-boundary crossings.
#[test]
fn posting_store_blob_roundtrip() {
    let mut rng = StdRng::seed_from_u64(203);
    for case in 0..32 {
        let pool_pages = rng.gen_range(1..8usize);
        let num_blobs = rng.gen_range(1..20usize);
        let blobs: Vec<Vec<u8>> = (0..num_blobs)
            .map(|_| {
                let len = rng.gen_range(0..9000usize);
                (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect()
            })
            .collect();
        let store = PostingStore::new(InMemoryPageStore::new(), pool_pages);
        let handles: Vec<_> = blobs.iter().map(|b| store.append(b).unwrap()).collect();
        for (blob, handle) in blobs.iter().zip(&handles) {
            assert_eq!(&store.read(*handle).unwrap(), blob, "case {case}");
        }
        // Reading in reverse order must give the same results (cache churn).
        for (blob, handle) in blobs.iter().zip(&handles).rev() {
            assert_eq!(&store.read(*handle).unwrap(), blob, "case {case}");
        }
    }
}

/// Time lists round-trip through encode/decode and through the store.
#[test]
fn time_list_roundtrip() {
    let mut rng = StdRng::seed_from_u64(204);
    for case in 0..64 {
        let mut list = TimeList::new();
        for _ in 0..rng.gen_range(0..200usize) {
            list.add(rng.gen_range(0..30u32) as u16, rng.gen_range(0..50_000u32));
        }
        // Dates sorted, ids sorted and unique.
        for w in list.entries.windows(2) {
            assert!(w[0].date < w[1].date, "case {case}");
        }
        for e in &list.entries {
            for w in e.traj_ids.windows(2) {
                assert!(w[0] < w[1], "case {case}");
            }
        }
        let decoded = TimeList::decode(&list.encode()).unwrap();
        assert_eq!(&decoded, &list, "case {case}");

        let store = PostingStore::new(InMemoryPageStore::new(), 2);
        let handle = store.append_time_list(&list).unwrap();
        assert_eq!(store.read_time_list(handle).unwrap(), list, "case {case}");
    }
}

/// The buffer pool never changes what a page read returns, whatever the
/// capacity and access pattern.
#[test]
fn buffer_pool_is_transparent() {
    let mut rng = StdRng::seed_from_u64(205);
    for case in 0..64 {
        let capacity = rng.gen_range(1..16usize);
        let store = InMemoryPageStore::new();
        for i in 0..32u64 {
            let id = store.allocate().unwrap();
            let mut page = streach_storage::page::Page::zeroed();
            page.bytes_mut()[0] = i as u8;
            page.bytes_mut()[1] = (i * 3) as u8;
            store.write_page(id, &page).unwrap();
        }
        let pool = BufferPool::new(store, capacity);
        for _ in 0..rng.gen_range(1..200usize) {
            let id = rng.gen_range(0..32u64);
            let page = pool.read_page(id).unwrap();
            assert_eq!(page.bytes()[0], id as u8, "case {case}");
            assert_eq!(page.bytes()[1], (id * 3) as u8, "case {case}");
            assert!(pool.cached_pages() <= capacity, "case {case}");
        }
        let snap = pool.io_stats().snapshot();
        assert_eq!(snap.cache_misses, snap.page_reads, "case {case}");
    }
}
