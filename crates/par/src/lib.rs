//! Scoped-thread data parallelism for the query hot path.
//!
//! The build environment has no network access, so instead of rayon this
//! crate provides the two primitives the engine needs, built directly on
//! `std::thread::scope`:
//!
//! * [`par_map`] — map a slice to a `Vec` in parallel, preserving order,
//! * [`par_map_with`] — like [`par_map`] but hands every worker thread its
//!   own mutable state (e.g. a verifier scratch buffer), created once per
//!   thread rather than once per item.
//!
//! Work is split into contiguous chunks, one per worker, which keeps the
//! scheduling overhead at "spawn N threads" — appropriate for the coarse,
//! uniform batches the engine runs (hundreds of posting-list verifications
//! of similar cost). Small batches run inline on the calling thread so that
//! micro-queries never pay thread-spawn latency.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::num::NonZeroUsize;

/// Batches smaller than this run sequentially on the caller thread: the work
/// per item must dwarf the ~10 µs thread-spawn cost for parallelism to pay.
pub const MIN_PARALLEL_ITEMS: usize = 16;

/// Number of worker threads to use for a batch of `len` items: the available
/// hardware parallelism, capped so every worker gets a meaningful chunk.
pub fn num_workers(len: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(len / (MIN_PARALLEL_ITEMS / 2)).max(1)
}

/// Maps `items` through `f` in parallel, returning outputs in input order.
///
/// `f` runs concurrently on chunks of `items` across scoped threads; panics
/// in `f` propagate to the caller. Falls back to a sequential loop for small
/// batches.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, || (), move |(), item| f(item))
}

/// Maps `items` through `f` in parallel, giving each worker thread its own
/// state created by `init` (outputs are returned in input order).
///
/// This is the shape verification batches need: the per-thread state holds
/// scratch buffers that are reused across all items of the worker's chunk,
/// so steady-state processing performs no allocation at all.
pub fn par_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if items.len() < MIN_PARALLEL_ITEMS {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = num_workers(items.len());
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        // Pair each input chunk with the matching slice of the output buffer;
        // the zip hands every worker a disjoint &mut region.
        for (in_chunk, out_chunk) in items.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Sorts a vector in parallel: chunks are sorted on scoped threads, then
/// merged bottom-up on the caller thread. Used by the ST-Index build to group
/// observation tuples by (slot, segment) without hash maps.
///
/// `T: Copy` keeps the merge a plain element copy; every user in this
/// workspace sorts small plain-data tuples.
pub fn par_sort_unstable<T: Ord + Send + Copy>(items: &mut Vec<T>) {
    let n = items.len();
    let workers = num_workers(n);
    if n < 4 * MIN_PARALLEL_ITEMS || workers == 1 {
        items.sort_unstable();
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for piece in items.chunks_mut(chunk) {
            scope.spawn(move || piece.sort_unstable());
        }
    });
    // Bottom-up merge of the sorted runs.
    let mut src = std::mem::take(items);
    let mut dst: Vec<T> = Vec::with_capacity(n);
    let mut run = chunk;
    while run < src.len() {
        dst.clear();
        let mut i = 0;
        while i < src.len() {
            let mid = (i + run).min(src.len());
            let end = (i + 2 * run).min(src.len());
            merge_into(&src[i..mid], &src[mid..end], &mut dst);
            i = end;
        }
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }
    *items = src;
}

fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order_small_and_large() {
        for n in [0usize, 1, 7, MIN_PARALLEL_ITEMS, 1000] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn visits_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u64> = (0..513).collect();
        let out = par_map(&items, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out[512], 513);
    }

    #[test]
    fn per_thread_state_is_reused_within_a_chunk() {
        let items: Vec<usize> = (0..200).collect();
        // Each worker's state counts how many items it processed; the total
        // across outputs must equal the item count, and states must be > 1
        // for at least one worker (i.e. genuinely reused, not per-item).
        let out = par_map_with(
            &items,
            || 0usize,
            |seen, _item| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out.len(), items.len());
        assert!(
            out.iter().any(|&c| c > 1),
            "state must be reused across items"
        );
    }

    #[test]
    fn num_workers_is_sane() {
        assert_eq!(num_workers(0), 1);
        assert!(num_workers(1_000_000) >= 1);
        assert!(num_workers(MIN_PARALLEL_ITEMS) <= MIN_PARALLEL_ITEMS);
    }

    #[test]
    fn par_sort_matches_std_sort() {
        // Deterministic pseudo-random input (LCG), various sizes around the
        // parallel threshold.
        for n in [0usize, 1, 5, 63, 64, 65, 1000, 10_000] {
            let mut x = 0x2545F4914F6CDD1Du64;
            let mut v: Vec<u64> = (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x >> 16
                })
                .collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            par_sort_unstable(&mut v);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..100).collect();
        let _ = par_map(&items, |x| {
            if *x == 63 {
                panic!("boom");
            }
            *x
        });
    }
}
