//! Scoped-thread data parallelism for the query hot path.
//!
//! The build environment has no network access, so instead of rayon this
//! crate provides the two primitives the engine needs, built directly on
//! `std::thread::scope`:
//!
//! * [`par_map`] — map a slice to a `Vec` in parallel, preserving order,
//! * [`par_map_with`] — like [`par_map`] but hands every worker thread its
//!   own mutable state (e.g. a verifier scratch buffer), created once per
//!   thread rather than once per item,
//! * [`try_par_map_with`] — the fallible variant: workers return
//!   `Result`s, the first error (by input order) wins and cancels the
//!   remaining work.
//!
//! Work is split into contiguous chunks, one per worker, which keeps the
//! scheduling overhead at "spawn N threads" — appropriate for the coarse,
//! uniform batches the engine runs (hundreds of posting-list verifications
//! of similar cost). Small batches run inline on the calling thread so that
//! micro-queries never pay thread-spawn latency.
//!
//! [`with_worker_override`] pins the worker count for the duration of a
//! closure (thread-local), so tests can force both the sequential and the
//! genuinely multi-threaded code paths regardless of the host's core count.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Batches smaller than this run sequentially on the caller thread: the work
/// per item must dwarf the ~10 µs thread-spawn cost for parallelism to pay.
pub const MIN_PARALLEL_ITEMS: usize = 16;

/// Number of worker threads to use for a batch of `len` items: the available
/// hardware parallelism, capped so every worker gets a meaningful chunk.
/// An active [`with_worker_override`] takes precedence (capped at `len`).
pub fn num_workers(len: usize) -> usize {
    if let Some(forced) = WORKER_OVERRIDE.get() {
        return forced.get().min(len.max(1));
    }
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(len / (MIN_PARALLEL_ITEMS / 2)).max(1)
}

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<NonZeroUsize>> = const { Cell::new(None) };
}

/// Runs `f` with the worker count pinned to `workers` for every `par_*`
/// call issued from the current thread.
///
/// Intended for tests and benchmarks: `1` forces the strictly sequential
/// path, larger values force real scoped threads even on a single-core host
/// and even for batches below [`MIN_PARALLEL_ITEMS`]. The override is
/// thread-local and restored on exit (panic-safe), so concurrent test
/// threads cannot observe each other's setting.
pub fn with_worker_override<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<NonZeroUsize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(WORKER_OVERRIDE.replace(NonZeroUsize::new(workers.max(1))));
    f()
}

/// Worker count for one batch, honouring the override (via
/// [`num_workers`]): without one, batches below [`MIN_PARALLEL_ITEMS`] stay
/// on the calling thread.
fn effective_workers(len: usize) -> usize {
    if WORKER_OVERRIDE.get().is_none() && len < MIN_PARALLEL_ITEMS {
        return 1;
    }
    num_workers(len)
}

/// Maps `items` through `f` in parallel, returning outputs in input order.
///
/// `f` runs concurrently on chunks of `items` across scoped threads; panics
/// in `f` propagate to the caller. Falls back to a sequential loop for small
/// batches.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, || (), move |(), item| f(item))
}

/// Maps `items` through `f` in parallel, giving each worker thread its own
/// state created by `init` (outputs are returned in input order).
///
/// This is the shape verification batches need: the per-thread state holds
/// scratch buffers that are reused across all items of the worker's chunk,
/// so steady-state processing performs no allocation at all.
pub fn par_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = effective_workers(items.len());
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        // Pair each input chunk with the matching slice of the output buffer;
        // the zip hands every worker a disjoint &mut region.
        for (in_chunk, out_chunk) in items.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Fallible [`par_map_with`]: maps `items` through `f` in parallel and
/// returns either every output (in input order) or the error of the
/// lowest-indexed item **among the failures observed** — on the sequential
/// path that is exactly the first failure in input order; with real workers
/// cancellation may skip earlier items a slower worker never reached.
///
/// This is the error-propagation backbone of the query verification
/// pipelines: a disk fault in one worker must surface as a typed error for
/// the whole batch, not a panic. On the first failure a shared cancellation
/// flag is raised; other workers finish the item they are on, observe the
/// flag, and stop without starting further items — so a mid-query fault
/// costs at most one in-flight item per worker. When several items fail
/// concurrently the winner is the smallest input index among the failures
/// observed, which makes single-fault scripts fully deterministic.
pub fn try_par_map_with<T, S, R, E, I, F>(items: &[T], init: I, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<R, E> + Sync,
{
    let workers = effective_workers(items.len());
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let cancelled = AtomicBool::new(false);
    let first_error: Mutex<Option<(usize, E)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for (chunk_index, (in_chunk, out_chunk)) in items
            .chunks(chunk_len)
            .zip(out.chunks_mut(chunk_len))
            .enumerate()
        {
            let init = &init;
            let f = &f;
            let cancelled = &cancelled;
            let first_error = &first_error;
            let base = chunk_index * chunk_len;
            scope.spawn(move || {
                let mut state = init();
                for (offset, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                {
                    if cancelled.load(Ordering::Relaxed) {
                        return;
                    }
                    match f(&mut state, item) {
                        Ok(value) => *slot = Some(value),
                        Err(e) => {
                            cancelled.store(true, Ordering::Relaxed);
                            let mut guard = first_error.lock().unwrap_or_else(|p| p.into_inner());
                            let index = base + offset;
                            if guard.as_ref().is_none_or(|(winner, _)| index < *winner) {
                                *guard = Some((index, e));
                            }
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some((_, e)) = first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    Ok(out
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect())
}

/// Sorts a vector in parallel: chunks are sorted on scoped threads, then
/// merged bottom-up on the caller thread. Used by the ST-Index build to group
/// observation tuples by (slot, segment) without hash maps.
///
/// `T: Copy` keeps the merge a plain element copy; every user in this
/// workspace sorts small plain-data tuples.
pub fn par_sort_unstable<T: Ord + Send + Copy>(items: &mut Vec<T>) {
    let n = items.len();
    let workers = num_workers(n);
    if n < 4 * MIN_PARALLEL_ITEMS || workers == 1 {
        items.sort_unstable();
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for piece in items.chunks_mut(chunk) {
            scope.spawn(move || piece.sort_unstable());
        }
    });
    // Bottom-up merge of the sorted runs.
    let mut src = std::mem::take(items);
    let mut dst: Vec<T> = Vec::with_capacity(n);
    let mut run = chunk;
    while run < src.len() {
        dst.clear();
        let mut i = 0;
        while i < src.len() {
            let mid = (i + run).min(src.len());
            let end = (i + 2 * run).min(src.len());
            merge_into(&src[i..mid], &src[mid..end], &mut dst);
            i = end;
        }
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }
    *items = src;
}

fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order_small_and_large() {
        for n in [0usize, 1, 7, MIN_PARALLEL_ITEMS, 1000] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn visits_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u64> = (0..513).collect();
        let out = par_map(&items, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out[512], 513);
    }

    #[test]
    fn per_thread_state_is_reused_within_a_chunk() {
        let items: Vec<usize> = (0..200).collect();
        // Each worker's state counts how many items it processed; the total
        // across outputs must equal the item count, and states must be > 1
        // for at least one worker (i.e. genuinely reused, not per-item).
        let out = par_map_with(
            &items,
            || 0usize,
            |seen, _item| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out.len(), items.len());
        assert!(
            out.iter().any(|&c| c > 1),
            "state must be reused across items"
        );
    }

    #[test]
    fn num_workers_is_sane() {
        assert_eq!(num_workers(0), 1);
        assert!(num_workers(1_000_000) >= 1);
        assert!(num_workers(MIN_PARALLEL_ITEMS) <= MIN_PARALLEL_ITEMS);
    }

    #[test]
    fn par_sort_matches_std_sort() {
        // Deterministic pseudo-random input (LCG), various sizes around the
        // parallel threshold.
        for n in [0usize, 1, 5, 63, 64, 65, 1000, 10_000] {
            let mut x = 0x2545F4914F6CDD1Du64;
            let mut v: Vec<u64> = (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x >> 16
                })
                .collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            par_sort_unstable(&mut v);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    #[test]
    fn worker_override_forces_parallel_and_sequential_paths() {
        // Below MIN_PARALLEL_ITEMS, but the override still spawns real
        // workers — observable through distinct per-thread states.
        let items: Vec<usize> = (0..8).collect();
        let out = with_worker_override(4, || {
            par_map_with(
                &items,
                || std::thread::current().id(),
                |tid, _| (*tid, std::thread::current().id()),
            )
        });
        assert!(
            out.iter().all(|(init_tid, run_tid)| init_tid == run_tid),
            "state stays on its worker"
        );
        let distinct: std::collections::HashSet<_> = out.iter().map(|(t, _)| *t).collect();
        assert!(distinct.len() > 1, "override must spawn real threads");
        // Override 1 pins everything to the calling thread.
        let caller = std::thread::current().id();
        let out = with_worker_override(1, || {
            par_map((0..100).collect::<Vec<_>>().as_slice(), |_| {
                std::thread::current().id()
            })
        });
        assert!(out.iter().all(|tid| *tid == caller));
        // The override is restored after the closure.
        assert_eq!(num_workers(0), 1);
    }

    #[test]
    fn try_par_map_matches_infallible_on_success() {
        let items: Vec<u64> = (0..500).collect();
        for workers in [1usize, 3, 8] {
            let got = with_worker_override(workers, || {
                try_par_map_with(&items, || (), |(), x| Ok::<u64, String>(x * 3))
            })
            .unwrap();
            assert_eq!(got, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_first_error_by_input_order_wins() {
        let items: Vec<usize> = (0..200).collect();
        let run = |workers: usize| {
            with_worker_override(workers, || {
                try_par_map_with(
                    &items,
                    || (),
                    |(), &x| {
                        if x == 13 || x == 77 || x == 150 {
                            Err(format!("fault at {x}"))
                        } else {
                            Ok(x)
                        }
                    },
                )
            })
            .unwrap_err()
        };
        // Sequential path: exactly the first failure in input order.
        assert_eq!(run(1), "fault at 13");
        // Parallel path: cancellation may let a faster worker's fault win
        // before item 13 is even attempted, but the winner is always one of
        // the scripted faults (lowest index among those observed).
        let err = run(4);
        assert!(
            ["fault at 13", "fault at 77", "fault at 150"].contains(&err.as_str()),
            "unexpected winner: {err}"
        );
        // A single scripted fault is fully deterministic on both paths.
        for workers in [1usize, 4] {
            let err = with_worker_override(workers, || {
                try_par_map_with(
                    &items,
                    || (),
                    |(), &x| {
                        if x == 150 {
                            Err(format!("fault at {x}"))
                        } else {
                            Ok(x)
                        }
                    },
                )
            })
            .unwrap_err();
            assert_eq!(err, "fault at 150", "workers = {workers}");
        }
    }

    #[test]
    fn try_par_map_cancels_remaining_work() {
        let items: Vec<usize> = (0..10_000).collect();
        let started = AtomicUsize::new(0);
        let result = with_worker_override(4, || {
            try_par_map_with(
                &items,
                || (),
                |(), &x| {
                    started.fetch_add(1, Ordering::Relaxed);
                    if x == 0 {
                        Err("early fault")
                    } else {
                        // Give the canceller time to raise the flag.
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        Ok(x)
                    }
                },
            )
        });
        assert_eq!(result.unwrap_err(), "early fault");
        let started = started.load(Ordering::Relaxed);
        assert!(
            started < items.len() / 2,
            "cancellation must stop most of the remaining work (started {started} of {})",
            items.len()
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..100).collect();
        let _ = par_map(&items, |x| {
            if *x == 63 {
                panic!("boom");
            }
            *x
        });
    }
}
