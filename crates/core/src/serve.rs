//! Serving front end: cross-user query coalescing and an ingest-invalidated
//! result cache over a [`ReachabilityEngine`] or a [`ShardedEngine`].
//!
//! The paper's MQMB algorithm is multi-query batching, but as a library API
//! every caller batches only its own queries. A [`QueryServer`] promotes
//! batching to a *server policy*: callers submit s-queries into a bounded
//! queue, worker threads drain the queue in batches, and a **coalescer**
//! folds concurrent queries that share (origin segment, slot window) into
//! one MQMB bounding pass before fanning verification out per caller —
//! concurrent users sharing an origin and time window pay the bounding
//! phase once instead of once each.
//!
//! # Bit-identity
//!
//! Coalescing must not change answers. Two SQMB/MQMB facts make that easy:
//!
//! * the bounding expansion depends only on the start segment and the
//!   **hop-slot sequence** `slot_of(T + k·Δt)` for `k < num_hops(L)`, so
//!   queries grouped by (start segment, exact hop-slot sequence) share one
//!   bounding region that equals each member's serial `sqmb` result, and
//! * with a single start, `mqmb` reduces to `sqmb` exactly (pinned by
//!   `single_location_mqmb_equals_sqmb`), so the group's one bounding pass
//!   is the paper's MQMB with one location.
//!
//! Verification then runs per caller with its exact `(T, L, Prob)` — a
//! [`VerifierCore`] per distinct `(T, L)`, shared across probability
//! thresholds — so every answer is bit-identical to serial
//! [`ReachabilityEngine::try_s_query`], and per-caller failures surface as
//! that caller's typed [`QueryError`]. `tests/serving_equivalence.rs` and
//! the `--serving` bench gate pin this.
//!
//! # Result cache and why it is never stale
//!
//! The cache key is the exact query: (origin segment, `start_time_s`,
//! `duration_s`, probability bits, algorithm). Anything coarser is unsound:
//! the verifier's T0 window `slots_overlapping(T, T+Δt)` spans *two* slots
//! when `T` is not slot-aligned, so two queries in the same start slot can
//! legitimately differ.
//!
//! Invalidation is driven by [`IngestTouch`], delivered under the engine's
//! ingest lock after every applied batch (live, replayed or replicated):
//!
//! * **Posting pairs** — a touched (slot, segment) kills every entry whose
//!   slot set contains the slot *and* whose maximum bounding region
//!   contains the segment: postings only affect verification, and
//!   verification only reads segments inside the max region. ES entries
//!   keep an empty region sentinel and match any segment.
//! * **Speed slots** — a slot whose Con-Index statistics moved kills every
//!   entry whose slot set contains it, regardless of segment: speed stats
//!   feed the bounding expansion, which may reach any segment on re-run.
//! * **Day-count raise** — flushes the whole cache: the day count is every
//!   probability's denominator.
//!
//! An entry's slot set is the union of its bounding hop slots, the
//! verifier's T0 window and its probability window — every slot the answer
//! reads. Inserts are **epoch-guarded**: a worker snapshots the cache epoch
//! before computing and the insert is dropped if any invalidation ran in
//! between, so an answer computed from pre-ingest state can never be cached
//! over a newer invalidation. Compaction needs no hook — it is
//! answer-preserving by construction.
//!
//! # Threads
//!
//! The server runs `workers` long-lived threads; each drained batch's
//! verification stage fans out on `streach_par` inside
//! [`trace_back_search`] exactly like a serial query, so a single large
//! query still uses all cores while independent groups proceed on separate
//! workers.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use streach_geo::GeoPoint;
use streach_roadnet::{RoadNetwork, SegmentId};

use crate::con_index::ConIndex;
use crate::engine::ReachabilityEngine;
use crate::ingest::{IngestObserver, IngestTouch};
use crate::query::mqmb::mqmb;
use crate::query::sqmb::{num_hops, BoundingRegions};
use crate::query::tbs::trace_back_search;
use crate::query::verifier::{PostingSource, VerifierCore};
use crate::query::{Algorithm, QueryError, QueryOutcome, SQuery};
use crate::sharded::ShardedEngine;
use crate::stats::QueryStats;
use crate::time::{slot_of, slots_overlapping};

/// Tuning knobs of a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the submission queue. Each worker's
    /// verification stage additionally fans out on `streach_par`.
    pub workers: usize,
    /// Bound of the submission queue; [`QueryServer::submit`] blocks while
    /// the queue is full (backpressure, counted into open-loop latency).
    pub queue_depth: usize,
    /// Maximum requests one worker drains per pass — the coalescing window.
    pub max_batch: usize,
    /// Fold concurrent s-queries sharing (origin segment, slot window)
    /// into one bounding pass. Off, every request runs the serial path.
    pub coalesce: bool,
    /// Result-cache capacity in entries; `0` disables the cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 256,
            max_batch: 64,
            coalesce: true,
            cache_capacity: 4096,
        }
    }
}

/// Counters describing what a [`QueryServer`] did so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries accepted into the submission queue.
    pub submitted: u64,
    /// Queries answered (from cache or computed).
    pub completed: u64,
    /// Queries answered by a bounding pass shared with at least one other
    /// concurrent query.
    pub coalesced: u64,
    /// Cache lookups that returned a stored answer.
    pub cache_hits: u64,
    /// Cache lookups that missed (including with the cache disabled).
    pub cache_misses: u64,
    /// Entries removed by targeted (slot, segment) invalidation.
    pub cache_invalidated: u64,
    /// Whole-cache flushes caused by a day-count raise.
    pub cache_flushes: u64,
}

/// One per-query result of a coalesced batch: the caller's outcome plus the
/// bounding context a result cache needs for precise invalidation.
#[derive(Debug, Clone)]
pub struct CoalescedAnswer {
    /// The per-caller outcome; failures are this caller's typed error.
    pub outcome: Result<QueryOutcome, QueryError>,
    /// The group's maximum bounding region (empty on error). Verification
    /// never reads outside it, so posting invalidation can be scoped to it.
    pub max_region: Vec<SegmentId>,
    /// Whether the bounding pass was shared with another query of the batch.
    pub shared_bounding: bool,
}

impl CoalescedAnswer {
    fn failed(err: QueryError) -> Self {
        Self {
            outcome: Err(err),
            max_region: Vec::new(),
            shared_bounding: false,
        }
    }
}

/// Answers a batch of SQMB+TBS s-queries with one shared bounding pass per
/// (origin segment, hop-slot sequence) group; results are in input order
/// and bit-identical to the serial per-query path (see the module docs).
pub(crate) fn answer_coalesced<I: PostingSource + ?Sized>(
    network: &RoadNetwork,
    con_index: &ConIndex,
    postings: &I,
    locate: &dyn Fn(&GeoPoint) -> Result<SegmentId, QueryError>,
    queries: &[SQuery],
) -> Vec<CoalescedAnswer> {
    let slot_s = con_index.slot_s();
    let mut answers: Vec<Option<CoalescedAnswer>> = queries.iter().map(|_| None).collect();

    // Group by (origin segment, exact hop-slot sequence). The sequence —
    // not just the first slot — is what the bounding expansion reads, so
    // equality of the sequence is exactly the bit-identity condition.
    struct Group {
        segment: SegmentId,
        hop_slots: Vec<u32>,
        location: GeoPoint,
        members: Vec<usize>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let segment = match q.validate().and_then(|()| locate(&q.location)) {
            Ok(segment) => segment,
            Err(err) => {
                answers[i] = Some(CoalescedAnswer::failed(err));
                continue;
            }
        };
        let hop_slots: Vec<u32> = (0..num_hops(q.duration_s, slot_s))
            .map(|k| slot_of(q.start_time_s.saturating_add(k * slot_s), slot_s))
            .collect();
        match groups
            .iter_mut()
            .find(|g| g.segment == segment && g.hop_slots == hop_slots)
        {
            Some(g) => g.members.push(i),
            None => groups.push(Group {
                segment,
                hop_slots,
                location: q.location,
                members: vec![i],
            }),
        }
    }

    for group in &groups {
        // One MQMB bounding pass for the whole group: with a single start
        // mqmb equals sqmb, and every member shares the hop-slot sequence,
        // so these bounds equal each member's serial sqmb bounds.
        let leader = &queries[group.members[0]];
        let t_bound = Instant::now();
        let mb = mqmb(
            con_index,
            network,
            std::slice::from_ref(&group.segment),
            std::slice::from_ref(&group.location),
            leader.start_time_s,
            leader.duration_s,
        );
        let bounds = BoundingRegions {
            max_region: mb.max_region,
            min_region: mb.min_region,
        };
        let bounding_time = t_bound.elapsed();
        let shared = group.members.len() > 1;

        // Fan verification out per caller: one core per distinct (T, L),
        // shared across probability thresholds; errors stay per caller.
        let mut cores: Vec<((u32, u32), VerifierCore<'_, I>)> = Vec::new();
        for &i in &group.members {
            let q = &queries[i];
            let io_before = postings.io_stats().snapshot();
            let t_verify = Instant::now();
            let key = (q.start_time_s, q.duration_s);
            if !cores.iter().any(|(k, _)| *k == key) {
                match VerifierCore::new(postings, group.segment, q.start_time_s, q.duration_s) {
                    Ok(core) => cores.push((key, core)),
                    Err(err) => {
                        answers[i] = Some(CoalescedAnswer::failed(err.into()));
                        continue;
                    }
                }
            }
            let core = &cores.iter().find(|(k, _)| *k == key).expect("just built").1;
            answers[i] = Some(match trace_back_search(network, core, &bounds, q.prob) {
                Ok(out) => {
                    let verify_time = t_verify.elapsed();
                    let io_after = postings.io_stats().snapshot();
                    CoalescedAnswer {
                        outcome: Ok(QueryOutcome {
                            region: out.region,
                            stats: QueryStats {
                                wall_time: bounding_time + verify_time,
                                bounding_time,
                                verify_time,
                                io: io_after.delta_since(&io_before),
                                segments_verified: out.verifications,
                                max_bounding_size: bounds.max_region.len(),
                                min_bounding_size: bounds.min_region.len(),
                                segments_visited: out.visited,
                            },
                        }),
                        max_region: bounds.max_region.clone(),
                        shared_bounding: shared,
                    }
                }
                Err(err) => CoalescedAnswer::failed(err.into()),
            });
        }
    }

    answers
        .into_iter()
        .map(|a| a.expect("every query answered"))
        .collect()
}

/// A query target a [`QueryServer`] can front: the single engine or the
/// sharded scatter-gather router.
pub trait ServeBackend: Send + Sync + 'static {
    /// Δt slot length of the backing index.
    fn slot_s(&self) -> u32;
    /// Snaps a query location to its road segment (the cache-key origin).
    fn try_locate(&self, location: &GeoPoint) -> Result<SegmentId, QueryError>;
    /// The serial (uncoalesced) s-query path.
    fn try_s_query(&self, query: &SQuery, algorithm: Algorithm)
        -> Result<QueryOutcome, QueryError>;
    /// The batched SQMB path sharing one bounding pass per group.
    fn try_s_query_coalesced(&self, queries: &[SQuery]) -> Vec<CoalescedAnswer>;
    /// Registers an ingest observer on every underlying leader engine.
    fn observe_ingest(&self, observer: &Arc<IngestObserver>);
}

impl ServeBackend for ReachabilityEngine {
    fn slot_s(&self) -> u32 {
        self.st_index().slot_s()
    }

    fn try_locate(&self, location: &GeoPoint) -> Result<SegmentId, QueryError> {
        ReachabilityEngine::try_locate(self, location)
    }

    fn try_s_query(
        &self,
        query: &SQuery,
        algorithm: Algorithm,
    ) -> Result<QueryOutcome, QueryError> {
        ReachabilityEngine::try_s_query(self, query, algorithm)
    }

    fn try_s_query_coalesced(&self, queries: &[SQuery]) -> Vec<CoalescedAnswer> {
        ReachabilityEngine::try_s_query_coalesced(self, queries)
    }

    fn observe_ingest(&self, observer: &Arc<IngestObserver>) {
        ReachabilityEngine::observe_ingest(self, observer);
    }
}

impl ServeBackend for ShardedEngine {
    fn slot_s(&self) -> u32 {
        ShardedEngine::slot_s(self)
    }

    fn try_locate(&self, location: &GeoPoint) -> Result<SegmentId, QueryError> {
        ShardedEngine::try_locate(self, location)
    }

    fn try_s_query(
        &self,
        query: &SQuery,
        algorithm: Algorithm,
    ) -> Result<QueryOutcome, QueryError> {
        ShardedEngine::try_s_query(self, query, algorithm)
    }

    fn try_s_query_coalesced(&self, queries: &[SQuery]) -> Vec<CoalescedAnswer> {
        ShardedEngine::try_s_query_coalesced(self, queries)
    }

    fn observe_ingest(&self, observer: &Arc<IngestObserver>) {
        ShardedEngine::observe_ingest(self, observer);
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// The exact-parameter cache key; see the module docs for why nothing
/// coarser is sound.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    segment: u32,
    start_time_s: u32,
    duration_s: u32,
    prob_bits: u64,
    algorithm: Algorithm,
}

/// The recorded read footprint of one answered s-query — everything an
/// [`IngestTouch`] needs to be intersected against to decide whether the
/// answer may have changed. Shared by the result cache (invalidation) and
/// by standing subscriptions ([`crate::subscribe`], wakeup filtering).
#[derive(Debug, Clone, Default)]
pub(crate) struct ReadFootprint {
    /// Every wrapped day slot the answer read (bounding hops + T0 +
    /// probability window), sorted — the slot overlap test.
    pub slots: Vec<u32>,
    /// Maximum bounding region for segment-scoped posting invalidation,
    /// sorted; empty means "any segment" (ES reads wherever its expansion
    /// goes, so no sound segment scoping exists for it).
    pub max_region: Vec<SegmentId>,
}

impl ReadFootprint {
    /// The footprint of query `q` answered under bounding region
    /// `max_region` (already sorted, as `BoundingRegions` produces it).
    pub(crate) fn record(q: &SQuery, slot_s: u32, max_region: Vec<SegmentId>) -> Self {
        Self {
            slots: query_slots(q, slot_s),
            max_region,
        }
    }

    /// Whether `touch` may have changed an answer with this footprint:
    /// a day raise always does; a moved speed slot the answer read does
    /// (speed feeds bounding, which may reach any segment on re-run); a
    /// touched posting pair does when its slot was read *and* its segment
    /// lies inside the maximum bounding region (verification never reads
    /// outside it).
    pub(crate) fn touched_by(&self, touch: &IngestTouch) -> bool {
        if touch.num_days_raised {
            return true;
        }
        if touch
            .speed_slots
            .iter()
            .any(|slot| self.slots.binary_search(slot).is_ok())
        {
            return true;
        }
        touch.posting_pairs.iter().any(|&(slot, segment)| {
            self.slots.binary_search(&slot).is_ok()
                && (self.max_region.is_empty()
                    || self.max_region.binary_search(&SegmentId(segment)).is_ok())
        })
    }
}

struct CacheEntry {
    outcome: QueryOutcome,
    /// What the answer read; an [`IngestTouch`] intersecting it kills the
    /// entry.
    footprint: ReadFootprint,
    /// Lookups this entry served.
    hits: u64,
    /// Cache-clock stamp of the last hit (the insert stamp until then) —
    /// the eviction order: least-recently-hit goes first.
    last_hit: u64,
}

impl CacheEntry {
    fn new(outcome: QueryOutcome, footprint: ReadFootprint) -> Self {
        Self {
            outcome,
            footprint,
            hits: 0,
            last_hit: 0,
        }
    }
}

struct CacheState {
    map: HashMap<CacheKey, CacheEntry>,
    /// Bumped by every invalidation; guards inserts computed before it.
    epoch: u64,
    /// Bumped by every lookup hit and insert; stamps `CacheEntry::last_hit`.
    clock: u64,
}

struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    flushes: AtomicU64,
}

/// Every day slot query `q` reads: bounding hop slots, the verifier's T0
/// window and the probability window, wrapped into the day grid.
fn query_slots(q: &SQuery, slot_s: u32) -> Vec<u32> {
    let slots_per_day = streach_traj::SECONDS_PER_DAY.div_ceil(slot_s);
    let mut slots: Vec<u32> = (0..num_hops(q.duration_s, slot_s))
        .map(|k| slot_of(q.start_time_s.saturating_add(k * slot_s), slot_s) % slots_per_day)
        .collect();
    let t0_end = q.start_time_s.saturating_add(slot_s);
    slots.extend(slots_overlapping(q.start_time_s, t0_end, slot_s).map(|s| s % slots_per_day));
    slots.extend(
        slots_overlapping(q.start_time_s, q.end_time_s(), slot_s).map(|s| s % slots_per_day),
    );
    slots.sort_unstable();
    slots.dedup();
    slots
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                epoch: 0,
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn key_of(query: &SQuery, segment: SegmentId, algorithm: Algorithm) -> CacheKey {
        CacheKey {
            segment: segment.0,
            start_time_s: query.start_time_s,
            duration_s: query.duration_s,
            prob_bits: query.prob.to_bits(),
            algorithm,
        }
    }

    fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    fn get(&self, key: &CacheKey) -> Option<QueryOutcome> {
        let mut state = self.lock();
        state.clock += 1;
        let stamp = state.clock;
        match state.map.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                entry.last_hit = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.outcome.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an answer computed while the cache was at `epoch_at_read`;
    /// dropped when any invalidation ran since — an answer computed from
    /// pre-ingest state must never outlive the ingest's invalidation.
    ///
    /// A full cache evicts the **least-recently-hit** entry: a hot entry
    /// keeps refreshing its stamp on every lookup and survives a flood of
    /// one-shot cold entries, which FIFO would let push it out.
    fn insert(&self, key: CacheKey, mut entry: CacheEntry, epoch_at_read: u64) {
        let mut state = self.lock();
        if state.epoch != epoch_at_read || self.capacity == 0 {
            return;
        }
        state.clock += 1;
        entry.last_hit = state.clock;
        while state.map.len() >= self.capacity && !state.map.contains_key(&key) {
            let coldest = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_hit)
                .map(|(k, _)| *k);
            match coldest {
                Some(old) => {
                    state.map.remove(&old);
                }
                None => break,
            }
        }
        state.map.insert(key, entry);
    }

    fn invalidate(&self, touch: &IngestTouch) {
        let mut state = self.lock();
        state.epoch += 1;
        if touch.num_days_raised {
            let dropped = state.map.len() as u64;
            state.map.clear();
            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
            self.flushes.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let before = state.map.len();
        state
            .map
            .retain(|_, entry| !entry.footprint.touched_by(touch));
        self.invalidated
            .fetch_add((before - state.map.len()) as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Submission queue and tickets
// ---------------------------------------------------------------------------

struct Request {
    query: SQuery,
    algorithm: Algorithm,
    slot: Arc<ResponseSlot>,
}

struct ResponseSlot {
    state: Mutex<Option<(Result<QueryOutcome, QueryError>, Instant)>>,
    done: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<QueryOutcome, QueryError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.is_none() {
            *state = Some((result, Instant::now()));
            self.done.notify_all();
        }
    }
}

/// Handle to one submitted query; redeem it with [`Ticket::wait`].
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the server answered and returns the caller's outcome.
    pub fn wait(self) -> Result<QueryOutcome, QueryError> {
        self.wait_timed().0
    }

    /// Like [`Ticket::wait`], additionally returning the instant the answer
    /// was produced — open-loop latency harnesses subtract their scheduled
    /// send time from it without blocking a client thread per request.
    pub fn wait_timed(self) -> (Result<QueryOutcome, QueryError>, Instant) {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(answer) = state.take() {
                return answer;
            }
            state = self
                .slot
                .done
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct ServerInner<B: ServeBackend> {
    backend: Arc<B>,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cache: Option<Arc<ResultCache>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    coalesced: AtomicU64,
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// The serving front end; see the module docs for the design.
///
/// Dropping the server shuts it down: queued requests are drained and
/// answered first, then the workers exit and are joined.
pub struct QueryServer<B: ServeBackend> {
    inner: Arc<ServerInner<B>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Keeps the invalidation observer alive exactly as long as the server;
    /// the engine holds it weakly and drops it with us.
    _observer: Option<Arc<IngestObserver>>,
    /// Standing-query manager, spawned lazily on the first `subscribe` so
    /// servers without subscriptions pay no extra thread or observer.
    subscriptions: std::sync::OnceLock<crate::subscribe::SubscriptionManager<B>>,
}

impl<B: ServeBackend> QueryServer<B> {
    /// Starts a server over `backend` and registers its cache-invalidation
    /// observer on the backend's leader engines.
    pub fn start(backend: Arc<B>, config: ServeConfig) -> Self {
        let cache =
            (config.cache_capacity > 0).then(|| Arc::new(ResultCache::new(config.cache_capacity)));
        let workers = config.workers.max(1);
        let inner = Arc::new(ServerInner {
            backend: backend.clone(),
            config,
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cache: cache.clone(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        });
        let observer = cache.map(|cache| {
            let observer: Arc<IngestObserver> =
                Arc::new(move |touch: &IngestTouch| cache.invalidate(touch));
            backend.observe_ingest(&observer);
            observer
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("streach-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn query-server worker")
            })
            .collect();
        Self {
            inner,
            workers: handles,
            _observer: observer,
            subscriptions: std::sync::OnceLock::new(),
        }
    }

    /// Enqueues one s-query; blocks while the submission queue is full.
    /// After shutdown began the ticket resolves to a typed error.
    pub fn submit(&self, query: SQuery, algorithm: Algorithm) -> Ticket {
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket { slot: slot.clone() };
        let mut state = self.inner.lock_queue();
        while state.queue.len() >= self.inner.config.queue_depth && !state.shutdown {
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        if state.shutdown {
            drop(state);
            slot.fulfill(Err(QueryError::InvalidQuery(
                "query server is shutting down".into(),
            )));
            return ticket;
        }
        state.queue.push_back(Request {
            query,
            algorithm,
            slot,
        });
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.inner.not_empty.notify_one();
        ticket
    }

    /// Submits and waits: the synchronous convenience path.
    pub fn query(&self, query: SQuery, algorithm: Algorithm) -> Result<QueryOutcome, QueryError> {
        self.submit(query, algorithm).wait()
    }

    /// Counters of everything the server did so far.
    pub fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses, cache_invalidated, cache_flushes) = match &self.inner.cache {
            Some(c) => (
                c.hits.load(Ordering::Relaxed),
                c.misses.load(Ordering::Relaxed),
                c.invalidated.load(Ordering::Relaxed),
                c.flushes.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0, 0),
        };
        ServerStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_invalidated,
            cache_flushes,
        }
    }

    /// The server's standing-query manager, spawned (worker thread +
    /// ingest observer) on first use. See [`crate::subscribe`].
    pub fn subscriptions(&self) -> &crate::subscribe::SubscriptionManager<B> {
        self.subscriptions.get_or_init(|| {
            crate::subscribe::SubscriptionManager::spawn(
                self.inner.backend.clone(),
                crate::subscribe::SubscribeConfig::default(),
            )
        })
    }

    /// Registers a standing s-query, kept current incrementally against
    /// the ingest stream; events arrive via
    /// [`subscriptions`](Self::subscriptions).
    pub fn subscribe(
        &self,
        query: SQuery,
        algorithm: Algorithm,
        trigger: crate::subscribe::Trigger,
    ) -> Result<crate::subscribe::SubscriptionId, crate::subscribe::SubscribeError> {
        self.subscriptions().subscribe(query, algorithm, trigger)
    }

    /// Removes a standing s-query registered with [`subscribe`](Self::subscribe).
    pub fn unsubscribe(
        &self,
        id: crate::subscribe::SubscriptionId,
    ) -> Result<(), crate::subscribe::SubscribeError> {
        self.subscriptions().unsubscribe(id)
    }

    /// Stops accepting work, answers what is queued, joins the workers.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl<B: ServeBackend> Drop for QueryServer<B> {
    fn drop(&mut self) {
        {
            let mut state = self.inner.lock_queue();
            state.shutdown = true;
        }
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<B: ServeBackend> ServerInner<B> {
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn worker_loop(&self) {
        while let Some(batch) = self.pop_batch() {
            self.process(batch);
        }
    }

    /// Blocks for the next batch; `None` once shut down and drained.
    fn pop_batch(&self) -> Option<Vec<Request>> {
        let mut state = self.lock_queue();
        loop {
            if !state.queue.is_empty() {
                let take = state.queue.len().min(self.config.max_batch.max(1));
                let batch: Vec<Request> = state.queue.drain(..take).collect();
                drop(state);
                self.not_full.notify_all();
                return Some(batch);
            }
            if state.shutdown {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The key a request caches under, when its location resolves. Invalid
    /// or off-network queries are never cached (errors are cheap to recompute
    /// and carry no staleness risk). Locating twice (here and inside the
    /// query) is redundant work, but locate is an in-memory spatial probe —
    /// accepting it keeps the engine's query entry points untouched.
    fn lookup_key(&self, request: &Request) -> Option<CacheKey> {
        request.query.validate().ok()?;
        let segment = self.backend.try_locate(&request.query.location).ok()?;
        Some(ResultCache::key_of(
            &request.query,
            segment,
            request.algorithm,
        ))
    }

    fn process(&self, batch: Vec<Request>) {
        let cache = self.cache.as_ref();
        let mut to_compute: Vec<Request> = Vec::with_capacity(batch.len());
        for request in batch {
            if let (Some(cache), Some(key)) = (cache, self.lookup_key(&request)) {
                if let Some(outcome) = cache.get(&key) {
                    request.slot.fulfill(Ok(outcome));
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            to_compute.push(request);
        }
        if to_compute.is_empty() {
            return;
        }

        let (coalescable, serial): (Vec<Request>, Vec<Request>) = to_compute
            .into_iter()
            .partition(|r| self.config.coalesce && r.algorithm == Algorithm::SqmbTbs);

        // Serial path: ES queries (no bounding pass to share) and everything
        // when coalescing is off.
        for request in serial {
            let epoch = cache.map(|c| c.epoch());
            // SQMB runs as a singleton coalesced group — bit-identical to
            // the per-query path — so the bounding region is reported and
            // the cache entry's posting invalidation stays segment-precise
            // instead of falling back to the any-segment sentinel. ES has
            // no bounding region; its entries keep the sentinel (that one
            // is genuinely "any segment").
            let (result, max_region) = match request.algorithm {
                Algorithm::SqmbTbs => {
                    let answer = self
                        .backend
                        .try_s_query_coalesced(std::slice::from_ref(&request.query))
                        .pop()
                        .expect("one answer per query");
                    (answer.outcome, answer.max_region)
                }
                Algorithm::ExhaustiveSearch => (
                    self.backend.try_s_query(&request.query, request.algorithm),
                    Vec::new(),
                ),
            };
            if let (Some(cache), Some(epoch), Ok(outcome), Some(key)) =
                (cache, epoch, &result, self.lookup_key(&request))
            {
                cache.insert(
                    key,
                    CacheEntry::new(
                        outcome.clone(),
                        ReadFootprint::record(&request.query, self.backend.slot_s(), max_region),
                    ),
                    epoch,
                );
            }
            request.slot.fulfill(result);
            self.completed.fetch_add(1, Ordering::Relaxed);
        }

        if coalescable.is_empty() {
            return;
        }
        let epoch = cache.map(|c| c.epoch());
        let queries: Vec<SQuery> = coalescable.iter().map(|r| r.query).collect();
        let answers = self.backend.try_s_query_coalesced(&queries);
        debug_assert_eq!(answers.len(), coalescable.len());
        for (request, answer) in coalescable.into_iter().zip(answers) {
            if answer.shared_bounding {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            if let (Some(cache), Some(epoch), Ok(outcome), Some(key)) =
                (cache, epoch, &answer.outcome, self.lookup_key(&request))
            {
                cache.insert(
                    key,
                    CacheEntry::new(
                        outcome.clone(),
                        ReadFootprint::record(
                            &request.query,
                            self.backend.slot_s(),
                            answer.max_region,
                        ),
                    ),
                    epoch,
                );
            }
            request.slot.fulfill(answer.outcome);
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::ReachableRegion;

    fn key(i: u32) -> CacheKey {
        CacheKey {
            segment: i,
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob_bits: 0.2f64.to_bits(),
            algorithm: Algorithm::SqmbTbs,
        }
    }

    fn entry() -> CacheEntry {
        CacheEntry::new(
            QueryOutcome {
                region: ReachableRegion::empty(),
                stats: QueryStats::default(),
            },
            ReadFootprint::default(),
        )
    }

    #[test]
    fn hot_entry_survives_cold_entry_flood() {
        let cache = ResultCache::new(4);
        let epoch = cache.epoch();
        cache.insert(key(0), entry(), epoch);
        // Flood with cold entries, touching the hot key between inserts —
        // the flood exceeds capacity many times over, so FIFO would have
        // evicted the hot entry long before the end.
        for i in 1..64 {
            assert!(cache.get(&key(0)).is_some(), "hot entry evicted at {i}");
            cache.insert(key(i), entry(), epoch);
        }
        assert!(cache.get(&key(0)).is_some(), "hot entry must survive");
        let state = cache.lock();
        assert!(state.map.len() <= 4, "capacity respected");
        // The survivors besides the hot key are the most recent cold ones.
        assert!(state.map.contains_key(&key(63)));
    }

    #[test]
    fn least_recently_hit_goes_first() {
        let cache = ResultCache::new(2);
        let epoch = cache.epoch();
        cache.insert(key(1), entry(), epoch);
        cache.insert(key(2), entry(), epoch);
        // Hit key 1; key 2 is now the least-recently-hit.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), entry(), epoch);
        let state = cache.lock();
        assert!(state.map.contains_key(&key(1)));
        assert!(!state.map.contains_key(&key(2)));
        assert!(state.map.contains_key(&key(3)));
        assert_eq!(state.map[&key(1)].hits, 1);
    }

    #[test]
    fn footprint_touch_intersection() {
        let fp = ReadFootprint {
            slots: vec![3, 4, 5],
            max_region: vec![SegmentId(10), SegmentId(20)],
        };
        // Day raise always touches.
        assert!(fp.touched_by(&IngestTouch {
            posting_pairs: vec![],
            speed_slots: vec![],
            num_days_raised: true,
        }));
        // Speed slot inside the read window touches regardless of segment.
        assert!(fp.touched_by(&IngestTouch {
            posting_pairs: vec![],
            speed_slots: vec![4],
            num_days_raised: false,
        }));
        // Posting pair needs slot AND segment inside the max region.
        assert!(fp.touched_by(&IngestTouch {
            posting_pairs: vec![(4, 20)],
            speed_slots: vec![],
            num_days_raised: false,
        }));
        assert!(!fp.touched_by(&IngestTouch {
            posting_pairs: vec![(4, 30)],
            speed_slots: vec![],
            num_days_raised: false,
        }));
        assert!(!fp.touched_by(&IngestTouch {
            posting_pairs: vec![(7, 20)],
            speed_slots: vec![6],
            num_days_raised: false,
        }));
        // The empty max region is the any-segment sentinel (ES).
        let es = ReadFootprint {
            slots: vec![3],
            max_region: Vec::new(),
        };
        assert!(es.touched_by(&IngestTouch {
            posting_pairs: vec![(3, 999)],
            speed_slots: vec![],
            num_days_raised: false,
        }));
    }
}
