//! Per-query runtime and I/O statistics.

use std::time::Duration;

use streach_storage::IoStatsSnapshot;

/// Measurements collected while answering one query.
///
/// The paper's efficiency metric is the query-processing running time; this
/// struct additionally records the page I/O and the number of probability
/// verifications (each verification reads trajectory postings from disk),
/// which explains *why* one algorithm beats another.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Wall-clock time spent answering the query.
    pub wall_time: Duration,
    /// Time spent computing the bounding regions (SQMB/MQMB Con-Index hops,
    /// or the network expansion for the ES baseline).
    pub bounding_time: Duration,
    /// Time spent verifying candidate segments against the trajectory
    /// postings (the stage the indexes exist to shrink, and the stage that
    /// runs on all cores).
    pub verify_time: Duration,
    /// Page I/O performed while answering the query (delta over the query).
    pub io: IoStatsSnapshot,
    /// Number of road segments whose reachability probability was verified
    /// against the trajectory postings.
    pub segments_verified: usize,
    /// Size of the maximum bounding region (0 for the ES baseline, which
    /// does not compute one).
    pub max_bounding_size: usize,
    /// Size of the minimum bounding region (0 for the ES baseline).
    pub min_bounding_size: usize,
    /// Number of road segments visited by network expansion (ES) or by the
    /// trace back search (SQMB+TBS).
    pub segments_visited: usize,
}

impl QueryStats {
    /// Running time in milliseconds (convenience for reports).
    pub fn running_time_ms(&self) -> f64 {
        self.wall_time.as_secs_f64() * 1e3
    }

    /// Merges the statistics of several sub-queries (used when an m-query is
    /// answered as repeated s-queries): times and counters add up, while the
    /// bounding-region sizes keep the widest maximum and the tightest
    /// minimum seen by any sub-query. A `0` bounding size is the ES "no
    /// bounding region" sentinel, so it never wins the minimum: merging an
    /// ES sub-query with an SQMB one reports the SQMB bounds.
    pub fn merge(&self, other: &QueryStats) -> QueryStats {
        QueryStats {
            wall_time: self.wall_time + other.wall_time,
            bounding_time: self.bounding_time + other.bounding_time,
            verify_time: self.verify_time + other.verify_time,
            io: IoStatsSnapshot {
                page_reads: self.io.page_reads + other.io.page_reads,
                page_writes: self.io.page_writes + other.io.page_writes,
                cache_hits: self.io.cache_hits + other.io.cache_hits,
                cache_misses: self.io.cache_misses + other.io.cache_misses,
                bytes_decoded: self.io.bytes_decoded + other.io.bytes_decoded,
                bytes_resident: self.io.bytes_resident + other.io.bytes_resident,
            },
            segments_verified: self.segments_verified + other.segments_verified,
            max_bounding_size: self.max_bounding_size.max(other.max_bounding_size),
            min_bounding_size: match (self.min_bounding_size, other.min_bounding_size) {
                (0, b) => b,
                (a, 0) => a,
                (a, b) => a.min(b),
            },
            segments_visited: self.segments_visited + other.segments_visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_time_conversion() {
        let s = QueryStats {
            wall_time: Duration::from_millis(250),
            ..Default::default()
        };
        assert!((s.running_time_ms() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters() {
        let a = QueryStats {
            wall_time: Duration::from_millis(100),
            segments_verified: 5,
            segments_visited: 10,
            io: IoStatsSnapshot {
                page_reads: 3,
                cache_hits: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = QueryStats {
            wall_time: Duration::from_millis(50),
            segments_verified: 7,
            segments_visited: 20,
            io: IoStatsSnapshot {
                page_reads: 4,
                cache_misses: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.wall_time, Duration::from_millis(150));
        assert_eq!(m.segments_verified, 12);
        assert_eq!(m.segments_visited, 30);
        assert_eq!(m.io.page_reads, 7);
        assert_eq!(m.io.cache_hits, 1);
        assert_eq!(m.io.cache_misses, 2);
    }

    #[test]
    fn merge_keeps_extreme_bounding_sizes() {
        let a = QueryStats {
            max_bounding_size: 120,
            min_bounding_size: 8,
            ..Default::default()
        };
        let b = QueryStats {
            max_bounding_size: 90,
            min_bounding_size: 15,
            ..Default::default()
        };
        let m = a.merge(&b);
        // Widest max, tightest min — NOT the sums (210 / 23).
        assert_eq!(m.max_bounding_size, 120);
        assert_eq!(m.min_bounding_size, 8);
        // Merge order must not matter.
        let n = b.merge(&a);
        assert_eq!(n.max_bounding_size, 120);
        assert_eq!(n.min_bounding_size, 8);
    }

    #[test]
    fn merge_treats_es_zero_as_no_bounding_region() {
        let es = QueryStats::default(); // ES reports 0 / 0: no bounding pass.
        let sqmb = QueryStats {
            max_bounding_size: 64,
            min_bounding_size: 12,
            ..Default::default()
        };
        // The ES sentinel never clamps the merged minimum to 0.
        let m = es.merge(&sqmb);
        assert_eq!(m.max_bounding_size, 64);
        assert_eq!(m.min_bounding_size, 12);
        let n = sqmb.merge(&es);
        assert_eq!(n.min_bounding_size, 12);
        // Two ES sub-queries still merge to the sentinel.
        let z = es.merge(&es);
        assert_eq!(z.max_bounding_size, 0);
        assert_eq!(z.min_bounding_size, 0);
    }

    #[test]
    fn merge_adds_decode_accounting() {
        let a = QueryStats {
            io: IoStatsSnapshot {
                bytes_decoded: 100,
                bytes_resident: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = QueryStats {
            io: IoStatsSnapshot {
                bytes_decoded: 50,
                bytes_resident: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.io.bytes_decoded, 150);
        assert_eq!(m.io.bytes_resident, 60);
        assert!((m.io.decode_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_zeroed() {
        let s = QueryStats::default();
        assert_eq!(s.segments_verified, 0);
        assert_eq!(s.running_time_ms(), 0.0);
    }
}
